//! # midq — dynamic mid-query re-optimization
//!
//! A production-quality Rust reproduction of **Kabra & DeWitt,
//! "Efficient Mid-Query Re-Optimization of Sub-Optimal Query Execution
//! Plans" (SIGMOD 1998)**: a single-node relational engine whose
//! optimizer annotates plans with its estimates, whose executor
//! collects statistics at strategically chosen points, and whose
//! runtime controller re-allocates memory and re-optimizes the
//! remainder of a running query when the observations prove the plan
//! sub-optimal.
//!
//! ## Quick start
//!
//! ```
//! use midq::{Database, ReoptMode};
//! use midq::common::{DataType, EngineConfig, Row, Value};
//!
//! let db = Database::new(EngineConfig::default()).unwrap();
//! db.create_table("t", vec![("k", DataType::Int), ("v", DataType::Int)]).unwrap();
//! for i in 0..100 {
//!     db.insert("t", Row::new(vec![Value::Int(i), Value::Int(i % 10)])).unwrap();
//! }
//! db.analyze("t").unwrap();
//! let outcome = db
//!     .run_sql("SELECT v, count(*) AS n FROM t GROUP BY v ORDER BY v", ReoptMode::Full)
//!     .unwrap();
//! assert_eq!(outcome.rows.len(), 10);
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate |
//! |---|---|
//! | shared types, config, simulated clock | [`common`] (`mq-common`) |
//! | disk, buffer pool, heap files, B+-trees | [`storage`] (`mq-storage`) |
//! | histograms, sketches, sampling, Zipf | [`stats`] (`mq-stats`) |
//! | catalogs & ANALYZE | [`catalog`] (`mq-catalog`) |
//! | expressions & selectivity | [`expr`] (`mq-expr`) |
//! | logical & annotated physical plans | [`plan`] (`mq-plan`) |
//! | memory manager | [`memory`] (`mq-memory`) |
//! | System-R optimizer + calibration | [`optimizer`] (`mq-optimizer`) |
//! | operators, collectors, dispatcher | [`exec`] (`mq-exec`) |
//! | **dynamic re-optimization** | [`reopt`] (`mq-reopt`) |
//! | concurrent sessions, memory broker, worker pool | [`runtime`] (`mq-runtime`) |
//! | SQL frontend | [`sql`] (`mq-sql`) |
//! | TPC-D workload | [`tpcd`] (`mq-tpcd`) |

pub use mq_catalog as catalog;
pub use mq_common as common;
pub use mq_exec as exec;
pub use mq_expr as expr;
pub use mq_memory as memory;
pub use mq_obs as obs;
pub use mq_optimizer as optimizer;
pub use mq_plan as plan;
pub use mq_reopt as reopt;
pub use mq_runtime as runtime;
pub use mq_sql as sql;
pub use mq_stats as stats;
pub use mq_storage as storage;
pub use mq_tpcd as tpcd;

pub use mq_common::{EngineConfig, MqError, Result};
pub use mq_plan::LogicalPlan;
pub use mq_reopt::{
    explain_analyze, explain_plan, normalize, Engine, NormalizedQuery, PlanCacheStats,
    QueryOutcome, RecoveryReport, ReoptMode,
};
pub use mq_runtime::{JobResult, Runtime, Session, Workload, WorkloadQuery, WorkloadReport};
pub use mq_tpcd::TpcdConfig;

use std::sync::Arc;

use mq_common::{DataType, Row, Value};
use mq_memory::MemoryBroker;

/// Result of [`Database::execute_sql`].
#[derive(Debug)]
pub enum SqlOutcome {
    /// A SELECT's result set and execution report (boxed: a
    /// [`QueryOutcome`] carries the full annotated plan).
    Query(Box<QueryOutcome>),
    /// A DDL/DML acknowledgement.
    Command(String),
}

/// Coerce a literal to a column type where the conversion is lossless
/// and unambiguous (ints into float columns, strings into dates).
fn coerce(v: Value, ty: DataType) -> Result<Value> {
    match (&v, ty) {
        (Value::Null, _) => Ok(v),
        (Value::Int(n), DataType::Float) => Ok(Value::Float(*n as f64)),
        _ if v.data_type() == Some(ty) => Ok(v),
        _ => Err(MqError::TypeMismatch(format!(
            "cannot store {v} in a {ty:?} column"
        ))),
    }
}

/// Sessions opened from one [`Database`] share a global memory broker
/// sized for this many concurrent full-budget queries.
const DEFAULT_SESSION_CONCURRENCY: usize = 4;

/// The user-facing database handle: an [`Engine`] plus convenience
/// methods for DDL, loading, ANALYZE, SQL and EXPLAIN — and the entry
/// points into the concurrent runtime ([`Database::session`],
/// [`Database::run_concurrent`]).
pub struct Database {
    engine: Arc<Engine>,
    /// Global memory broker shared by every session of this database.
    broker: Arc<MemoryBroker>,
}

impl Database {
    /// Open an in-memory database with the given configuration.
    pub fn new(cfg: EngineConfig) -> Result<Database> {
        let broker = Arc::new(MemoryBroker::new(
            DEFAULT_SESSION_CONCURRENCY * cfg.query_memory_bytes,
        ));
        Ok(Database {
            engine: Arc::new(Engine::new(cfg)?),
            broker,
        })
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A shareable handle to the engine (for [`Runtime`]s and worker
    /// threads).
    pub fn engine_arc(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Mutable engine access (to change configuration between runs).
    ///
    /// # Panics
    /// If the engine is shared — i.e. a [`Session`] or [`Runtime`]
    /// created from this database is still alive. Reconfigure before
    /// opening sessions.
    pub fn engine_mut(&mut self) -> &mut Engine {
        Arc::get_mut(&mut self.engine)
            .expect("engine is shared by live sessions; reconfigure before opening them")
    }

    /// Open an interactive [`Session`]: per-query memory leases from
    /// the database's global broker, session-level cost attribution,
    /// cancellation and deadlines.
    pub fn session(&self) -> Session {
        Session::new(self.engine_arc(), Arc::clone(&self.broker))
    }

    /// Run a workload of queries concurrently on
    /// [`Workload::workers`] threads over this database's shared
    /// storage and catalog. The run's global memory budget is
    /// [`Workload::global_memory_bytes`], defaulting to
    /// `workers × query_memory_bytes`.
    pub fn run_concurrent(&self, workload: &Workload) -> WorkloadReport {
        let runtime = match workload.global_memory_bytes {
            Some(bytes) => Runtime::new(self.engine_arc(), bytes),
            None => Runtime::with_default_budget(self.engine_arc(), workload.workers),
        };
        runtime.run_workload(workload)
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, columns: Vec<(&str, DataType)>) -> Result<()> {
        self.engine
            .catalog()
            .create_table(self.engine.storage(), name, columns)?;
        Ok(())
    }

    /// Insert one row. Writes bump the table's data version, so any
    /// cache entry or cardinality feedback derived from it is
    /// invalidated here (eagerly reclaiming the space — probe-time
    /// validation would refuse the stale entry regardless).
    pub fn insert(&self, table: &str, row: Row) -> Result<()> {
        self.engine
            .catalog()
            .insert_row(self.engine.storage(), table, row)?;
        self.engine.invalidate_cache_for(table);
        Ok(())
    }

    /// Snapshot of the cross-query cache counters.
    pub fn cache_stats(&self) -> mq_reopt::CacheStats {
        self.engine.cache_stats()
    }

    /// Drop every cache entry and forget all cardinality feedback.
    pub fn clear_cache(&self) {
        self.engine.clear_cache();
    }

    /// Snapshot of the normalized-SQL plan-cache counters.
    pub fn plan_cache_stats(&self) -> mq_reopt::PlanCacheStats {
        self.engine.plan_cache_stats()
    }

    /// Drop every cached plan template (counters survive).
    pub fn clear_plan_cache(&self) {
        self.engine.clear_plan_cache();
    }

    /// Gather statistics for a table (MaxDiff histograms, catalog
    /// defaults from the engine config).
    pub fn analyze(&self, table: &str) -> Result<()> {
        let cfg = self.engine.config();
        self.engine.catalog().analyze(
            self.engine.storage(),
            table,
            mq_stats::HistogramKind::MaxDiff,
            cfg.histogram_buckets,
            cfg.reservoir_size,
            0xA11A,
        )
    }

    /// Build a B+-tree index on a column.
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        self.engine
            .catalog()
            .create_index(self.engine.storage(), table, column)
    }

    /// Parse SQL into a logical plan.
    pub fn plan_sql(&self, sql_text: &str) -> Result<LogicalPlan> {
        mq_sql::plan_sql(sql_text, self.engine.catalog())
    }

    /// Run a SQL query under the given re-optimization mode. With
    /// [`EngineConfig::plan_cache_enabled`], the normalized query text
    /// probes the plan cache first, so a warm family skips join
    /// enumeration entirely.
    pub fn run_sql(&self, sql_text: &str, mode: ReoptMode) -> Result<QueryOutcome> {
        let plan = self.plan_sql(sql_text)?;
        self.engine
            .run_with_sql(&plan, sql_text, mode, self.engine.default_env())
    }

    /// Execute any SQL statement: SELECT runs under `mode`; CREATE
    /// TABLE / CREATE INDEX / INSERT / ANALYZE act on the catalog.
    ///
    /// ```
    /// use midq::{Database, ReoptMode, SqlOutcome};
    /// use midq::common::EngineConfig;
    /// let db = Database::new(EngineConfig::default()).unwrap();
    /// db.execute_sql("CREATE TABLE t (k INT, v FLOAT)", ReoptMode::Off).unwrap();
    /// db.execute_sql("INSERT INTO t VALUES (1, 1.5), (2, 2.5)", ReoptMode::Off).unwrap();
    /// db.execute_sql("ANALYZE t", ReoptMode::Off).unwrap();
    /// match db.execute_sql("SELECT k FROM t WHERE v > 2", ReoptMode::Full).unwrap() {
    ///     SqlOutcome::Query(out) => assert_eq!(out.rows.len(), 1),
    ///     SqlOutcome::Command(_) => unreachable!(),
    /// }
    /// ```
    pub fn execute_sql(&self, sql_text: &str, mode: ReoptMode) -> Result<SqlOutcome> {
        match mq_sql::parse_statement(sql_text)? {
            mq_sql::Statement::Select(q) => {
                let plan = mq_sql::bind(&q, self.engine.catalog())?;
                Ok(SqlOutcome::Query(Box::new(self.engine.run_with_sql(
                    &plan,
                    sql_text,
                    mode,
                    self.engine.default_env(),
                )?)))
            }
            mq_sql::Statement::CreateTable { name, columns } => {
                let cols: Vec<(&str, DataType)> =
                    columns.iter().map(|(c, t)| (c.as_str(), *t)).collect();
                self.create_table(&name, cols)?;
                Ok(SqlOutcome::Command(format!(
                    "created table {name} ({} columns)",
                    columns.len()
                )))
            }
            mq_sql::Statement::CreateIndex { table, column } => {
                self.create_index(&table, &column)?;
                Ok(SqlOutcome::Command(format!(
                    "created index on {table}.{column}"
                )))
            }
            mq_sql::Statement::Insert { table, rows } => {
                let schema = self.engine.catalog().table(&table)?.schema;
                let n = rows.len();
                for row in rows {
                    if row.len() != schema.len() {
                        return Err(MqError::SchemaError(format!(
                            "INSERT arity {} vs {} columns of {table}",
                            row.len(),
                            schema.len()
                        )));
                    }
                    let coerced: Vec<Value> = row
                        .into_iter()
                        .enumerate()
                        .map(|(i, v)| coerce(v, schema.field(i).dtype))
                        .collect::<Result<_>>()?;
                    self.insert(&table, Row::new(coerced))?;
                }
                Ok(SqlOutcome::Command(format!(
                    "inserted {n} rows into {table}"
                )))
            }
            mq_sql::Statement::Analyze { table } => {
                self.analyze(&table)?;
                Ok(SqlOutcome::Command(format!("analyzed {table}")))
            }
        }
    }

    /// Run a logical plan under the given re-optimization mode.
    pub fn run(&self, plan: &LogicalPlan, mode: ReoptMode) -> Result<QueryOutcome> {
        self.engine.run(plan, mode)
    }

    /// Run a logical plan with an observability handle attached: every
    /// event of the execution (collector checkpoints, re-opt verdicts,
    /// lease traffic, spills) goes to the handle's sink and metrics
    /// registry, and the outcome carries per-operator actuals for
    /// [`QueryOutcome::explain_analyze`].
    pub fn run_observed(
        &self,
        plan: &LogicalPlan,
        mode: ReoptMode,
        obs: &mq_obs::Obs,
    ) -> Result<QueryOutcome> {
        let mut env = self.engine.default_env();
        env.obs = Some(obs.clone());
        self.engine.run_with(plan, mode, env)
    }

    /// Run a logical plan through the intra-query partitioned driver
    /// (`mq-par`) with `partitions` simulated workers: the optimized
    /// plan gets exchange operators, pipeline segments execute per
    /// routing bucket, and the outcome carries a
    /// [`mq_reopt::ParReport`] (exchange routing, skew verdicts,
    /// parallel time saved). Results are byte-identical across
    /// partition counts, and equal to serial execution up to
    /// floating-point summation order.
    pub fn run_partitioned(
        &self,
        plan: &LogicalPlan,
        mode: ReoptMode,
        partitions: usize,
    ) -> Result<QueryOutcome> {
        let mut env = self.engine.default_env();
        env.par = Some(mq_reopt::ParSpec::new(partitions));
        self.engine.run_with(plan, mode, env)
    }

    /// [`Database::run_partitioned`] with an observability handle
    /// attached (exchange and skew-verdict events go to its sink).
    pub fn run_partitioned_observed(
        &self,
        plan: &LogicalPlan,
        mode: ReoptMode,
        partitions: usize,
        obs: &mq_obs::Obs,
    ) -> Result<QueryOutcome> {
        let mut env = self.engine.default_env();
        env.par = Some(mq_reopt::ParSpec::new(partitions));
        env.obs = Some(obs.clone());
        self.engine.run_with(plan, mode, env)
    }

    /// Parse and run SQL with an observability handle attached (see
    /// [`Database::run_observed`]).
    pub fn run_sql_observed(
        &self,
        sql_text: &str,
        mode: ReoptMode,
        obs: &mq_obs::Obs,
    ) -> Result<QueryOutcome> {
        let plan = self.plan_sql(sql_text)?;
        let mut env = self.engine.default_env();
        env.obs = Some(obs.clone());
        self.engine.run_with_sql(&plan, sql_text, mode, env)
    }

    /// EXPLAIN: the annotated physical plan the optimizer would run.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String> {
        let optimizer = mq_optimizer::Optimizer::new(self.engine.config().clone());
        let optimized = optimizer.optimize(plan, self.engine.catalog(), self.engine.storage())?;
        Ok(optimized.plan.to_string())
    }

    /// Load the TPC-D workload.
    pub fn load_tpcd(&self, cfg: &TpcdConfig) -> Result<mq_tpcd::TpcdStats> {
        mq_tpcd::load(cfg, self.engine.catalog(), self.engine.storage())
    }
}
