//! # midq — dynamic mid-query re-optimization
//!
//! A production-quality Rust reproduction of **Kabra & DeWitt,
//! "Efficient Mid-Query Re-Optimization of Sub-Optimal Query Execution
//! Plans" (SIGMOD 1998)**: a single-node relational engine whose
//! optimizer annotates plans with its estimates, whose executor
//! collects statistics at strategically chosen points, and whose
//! runtime controller re-allocates memory and re-optimizes the
//! remainder of a running query when the observations prove the plan
//! sub-optimal.
//!
//! ## Quick start
//!
//! ```
//! use midq::Database;
//! use midq::common::{DataType, EngineConfig, Row, Value};
//!
//! let db = Database::new(EngineConfig::default()).unwrap();
//! db.create_table("t", vec![("k", DataType::Int), ("v", DataType::Int)]).unwrap();
//! for i in 0..100 {
//!     db.insert("t", Row::new(vec![Value::Int(i), Value::Int(i % 10)])).unwrap();
//! }
//! db.analyze("t").unwrap();
//! let outcome = db
//!     .query("SELECT v, count(*) AS n FROM t GROUP BY v ORDER BY v")
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.rows.len(), 10);
//! ```
//!
//! ## Durability
//!
//! [`Database::new`] is in-memory; [`Database::open`] restores a
//! database from a snapshot file (or creates a fresh one when the file
//! does not exist yet), and [`Database::save`] writes the catalog,
//! heap data, ANALYZE statistics, cardinality feedback and plan-cache
//! templates back to it atomically:
//!
//! ```
//! use midq::Database;
//! use midq::common::{DataType, Row, Value};
//!
//! let path = std::env::temp_dir().join("midq_doc_quickstart.mqsnap");
//! # let _ = std::fs::remove_file(&path);
//! let db = Database::open(&path).unwrap();
//! db.create_table("t", vec![("k", DataType::Int)]).unwrap();
//! db.insert("t", Row::new(vec![Value::Int(7)])).unwrap();
//! db.save().unwrap();
//!
//! let db2 = Database::open(&path).unwrap();
//! let out = db2.query("SELECT k FROM t").run().unwrap();
//! assert_eq!(out.rows.len(), 1);
//! # let _ = std::fs::remove_file(&path);
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate |
//! |---|---|
//! | shared types, config, simulated clock | [`common`] (`mq-common`) |
//! | disk, buffer pool, heap files, B+-trees | [`storage`] (`mq-storage`) |
//! | histograms, sketches, sampling, Zipf | [`stats`] (`mq-stats`) |
//! | catalogs & ANALYZE | [`catalog`] (`mq-catalog`) |
//! | expressions & selectivity | [`expr`] (`mq-expr`) |
//! | logical & annotated physical plans | [`plan`] (`mq-plan`) |
//! | memory manager | [`memory`] (`mq-memory`) |
//! | System-R optimizer + calibration | [`optimizer`] (`mq-optimizer`) |
//! | operators, collectors, dispatcher | [`exec`] (`mq-exec`) |
//! | **dynamic re-optimization** | [`reopt`] (`mq-reopt`) |
//! | concurrent sessions, memory broker, worker pool | [`runtime`] (`mq-runtime`) |
//! | SQL frontend | [`sql`] (`mq-sql`) |
//! | TPC-D workload | [`tpcd`] (`mq-tpcd`) |

pub use mq_catalog as catalog;
pub use mq_common as common;
pub use mq_exec as exec;
pub use mq_expr as expr;
pub use mq_memory as memory;
pub use mq_obs as obs;
pub use mq_optimizer as optimizer;
pub use mq_plan as plan;
pub use mq_reopt as reopt;
pub use mq_runtime as runtime;
pub use mq_sql as sql;
pub use mq_stats as stats;
pub use mq_storage as storage;
pub use mq_tpcd as tpcd;

pub use mq_common::{EngineConfig, MqError, Result};
pub use mq_plan::LogicalPlan;
pub use mq_reopt::SnapshotReport;
pub use mq_reopt::{
    explain_analyze, explain_plan, normalize, Engine, NormalizedQuery, PlanCacheStats,
    QueryOutcome, RecoveryReport, ReoptMode,
};
pub use mq_runtime::{JobResult, Runtime, Session, Workload, WorkloadQuery, WorkloadReport};
pub use mq_tpcd::TpcdConfig;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mq_common::{DataType, Row, Value};
use mq_memory::MemoryBroker;
use mq_plancache::PreparedSql;

/// Result of [`Database::execute_sql`].
#[derive(Debug)]
pub enum SqlOutcome {
    /// A SELECT's result set and execution report (boxed: a
    /// [`QueryOutcome`] carries the full annotated plan).
    Query(Box<QueryOutcome>),
    /// A DDL/DML acknowledgement.
    Command(String),
}

/// Coerce a literal to a column type where the conversion is lossless
/// and unambiguous (ints into float columns, strings into dates).
fn coerce(v: Value, ty: DataType) -> Result<Value> {
    match (&v, ty) {
        (Value::Null, _) => Ok(v),
        (Value::Int(n), DataType::Float) => Ok(Value::Float(*n as f64)),
        _ if v.data_type() == Some(ty) => Ok(v),
        _ => Err(MqError::TypeMismatch(format!(
            "cannot store {v} in a {ty:?} column"
        ))),
    }
}

/// Sessions opened from one [`Database`] share a global memory broker
/// sized for this many concurrent full-budget queries.
const DEFAULT_SESSION_CONCURRENCY: usize = 4;

/// The user-facing database handle: an [`Engine`] plus convenience
/// methods for DDL, loading, ANALYZE, SQL and EXPLAIN — and the entry
/// points into the concurrent runtime ([`Database::session`],
/// [`Database::run_concurrent`]).
pub struct Database {
    engine: Arc<Engine>,
    /// Global memory broker shared by every session of this database.
    broker: Arc<MemoryBroker>,
    /// Where [`Database::save`] writes; set by [`Database::open`].
    snapshot_path: Option<PathBuf>,
}

impl Database {
    /// Open an in-memory database with the given configuration.
    pub fn new(cfg: EngineConfig) -> Result<Database> {
        Ok(Database::from_engine(Engine::new(cfg)?, None))
    }

    /// Open a database backed by the snapshot file at `path` with the
    /// default configuration: restore it if the file exists, start
    /// empty otherwise. Either way, [`Database::save`] writes back to
    /// `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Database> {
        Database::open_with(EngineConfig::default(), path)
    }

    /// [`Database::open`] with explicit configuration. The config is
    /// not part of the snapshot — buffer pool size, fault injection and
    /// cache policy belong to the process, not the data — so the same
    /// snapshot can be reopened under different knobs.
    pub fn open_with(cfg: EngineConfig, path: impl AsRef<Path>) -> Result<Database> {
        let path = path.as_ref();
        let engine = if path.exists() {
            mq_reopt::persist::restore(cfg, path)?.0
        } else {
            Engine::new(cfg)?
        };
        Ok(Database::from_engine(engine, Some(path.to_path_buf())))
    }

    fn from_engine(engine: Engine, snapshot_path: Option<PathBuf>) -> Database {
        let broker = Arc::new(MemoryBroker::new(
            DEFAULT_SESSION_CONCURRENCY * engine.config().query_memory_bytes,
        ));
        Database {
            engine: Arc::new(engine),
            broker,
            snapshot_path,
        }
    }

    /// The snapshot path [`Database::save`] writes to, if any.
    pub fn snapshot_path(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }

    /// Snapshot the database to the path it was [`Database::open`]ed
    /// from. The write is atomic (staged to a temp file, renamed over
    /// the target), so a crash mid-save leaves the previous snapshot
    /// loadable. Refuses while queries are in flight.
    pub fn save(&self) -> Result<SnapshotReport> {
        match &self.snapshot_path {
            Some(path) => self.save_to(path.clone()),
            None => Err(MqError::InvalidConfig(
                "this database has no snapshot path; use Database::open or save_as".to_string(),
            )),
        }
    }

    /// Snapshot the database to an explicit path (the stored snapshot
    /// path, if any, is unchanged).
    pub fn save_as(&self, path: impl AsRef<Path>) -> Result<SnapshotReport> {
        self.save_to(path.as_ref().to_path_buf())
    }

    fn save_to(&self, path: PathBuf) -> Result<SnapshotReport> {
        if self.broker.in_use() != 0 {
            return Err(MqError::InvalidConfig(format!(
                "cannot snapshot while sessions hold {} bytes of query memory",
                self.broker.in_use()
            )));
        }
        mq_reopt::persist::save(&self.engine, &path)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A shareable handle to the engine (for [`Runtime`]s and worker
    /// threads).
    pub fn engine_arc(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Mutable engine access (to change configuration between runs).
    /// Errors if the engine is shared — i.e. a [`Session`] or
    /// [`Runtime`] created from this database is still alive.
    /// Reconfigure before opening them.
    pub fn engine_mut(&mut self) -> Result<&mut Engine> {
        Arc::get_mut(&mut self.engine).ok_or_else(|| {
            MqError::InvalidConfig(
                "engine is shared by live sessions; reconfigure before opening them".to_string(),
            )
        })
    }

    /// Open an interactive [`Session`]: per-query memory leases from
    /// the database's global broker, session-level cost attribution,
    /// cancellation and deadlines.
    pub fn session(&self) -> Session {
        Session::new(self.engine_arc(), Arc::clone(&self.broker))
    }

    /// Run a workload of queries concurrently on
    /// [`Workload::workers`] threads over this database's shared
    /// storage and catalog. The run's global memory budget is
    /// [`Workload::global_memory_bytes`], defaulting to
    /// `workers × query_memory_bytes`.
    pub fn run_concurrent(&self, workload: &Workload) -> WorkloadReport {
        let runtime = match workload.global_memory_bytes {
            Some(bytes) => Runtime::new(self.engine_arc(), bytes),
            None => Runtime::with_default_budget(self.engine_arc(), workload.workers),
        };
        runtime.run_workload(workload)
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, columns: Vec<(&str, DataType)>) -> Result<()> {
        self.engine
            .catalog()
            .create_table(self.engine.storage(), name, columns)?;
        Ok(())
    }

    /// Insert one row. Writes bump the table's data version, so any
    /// cache entry or cardinality feedback derived from it is
    /// invalidated here (eagerly reclaiming the space — probe-time
    /// validation would refuse the stale entry regardless).
    pub fn insert(&self, table: &str, row: Row) -> Result<()> {
        self.engine
            .catalog()
            .insert_row(self.engine.storage(), table, row)?;
        self.engine.invalidate_cache_for(table);
        Ok(())
    }

    /// Snapshot of the cross-query cache counters.
    pub fn cache_stats(&self) -> mq_reopt::CacheStats {
        self.engine.cache_stats()
    }

    /// Drop every cache entry and forget all cardinality feedback.
    pub fn clear_cache(&self) {
        self.engine.clear_cache();
    }

    /// Snapshot of the normalized-SQL plan-cache counters.
    pub fn plan_cache_stats(&self) -> mq_reopt::PlanCacheStats {
        self.engine.plan_cache_stats()
    }

    /// Drop every cached plan template (counters survive).
    pub fn clear_plan_cache(&self) {
        self.engine.clear_plan_cache();
    }

    /// Gather statistics for a table (MaxDiff histograms, catalog
    /// defaults from the engine config).
    pub fn analyze(&self, table: &str) -> Result<()> {
        let cfg = self.engine.config();
        self.engine.catalog().analyze(
            self.engine.storage(),
            table,
            mq_stats::HistogramKind::MaxDiff,
            cfg.histogram_buckets,
            cfg.reservoir_size,
            0xA11A,
        )
    }

    /// Build a B+-tree index on a column.
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        self.engine
            .catalog()
            .create_index(self.engine.storage(), table, column)
    }

    /// Parse SQL into a logical plan.
    pub fn plan_sql(&self, sql_text: &str) -> Result<LogicalPlan> {
        mq_sql::plan_sql(sql_text, self.engine.catalog())
    }

    /// Start building a SQL query. The builder defaults to
    /// [`ReoptMode::Full`]; chain [`Query::mode`], [`Query::observed`]
    /// and [`Query::partitions`] before [`Query::run`]:
    ///
    /// ```no_run
    /// # use midq::{Database, ReoptMode};
    /// # use midq::common::EngineConfig;
    /// # let db = Database::new(EngineConfig::default()).unwrap();
    /// let obs = midq::obs::Obs::default();
    /// let out = db
    ///     .query("SELECT * FROM t")
    ///     .mode(ReoptMode::PlanOnly)
    ///     .observed(&obs)
    ///     .partitions(4)
    ///     .run()
    ///     .unwrap();
    /// ```
    ///
    /// With [`EngineConfig::plan_cache_enabled`], the normalized query
    /// text probes the plan cache first, so a warm family skips join
    /// enumeration entirely.
    pub fn query<'a>(&'a self, sql_text: &'a str) -> Query<'a> {
        Query {
            db: self,
            target: Target::Sql(sql_text),
            mode: ReoptMode::Full,
            obs: None,
            partitions: None,
        }
    }

    /// Start building a query from an already-planned [`LogicalPlan`].
    /// Plan-built queries skip the plan cache (there is no SQL text to
    /// normalize into a family key).
    pub fn query_plan<'a>(&'a self, plan: &'a LogicalPlan) -> Query<'a> {
        Query {
            db: self,
            target: Target::Plan(plan),
            mode: ReoptMode::Full,
            obs: None,
            partitions: None,
        }
    }

    /// Prepare a SQL statement: the normalizer and the optimizer run
    /// once, here, pinning the statement's template in the plan cache;
    /// each [`Prepared::run`] then splices positional parameters
    /// (textual order) into the template and probes the cache directly,
    /// never re-running the normalizer.
    ///
    /// Only plan-cacheable SELECTs are preparable; parameter values
    /// must stay type-compatible with the exemplar literals in the
    /// template text.
    pub fn prepare(&self, sql_text: &str) -> Result<Prepared> {
        let prepared = PreparedSql::new(sql_text).ok_or_else(|| {
            MqError::Plan(format!(
                "statement is not preparable (only normalizable SELECTs are): {sql_text}"
            ))
        })?;
        // Validate against the catalog now — a prepare-time error beats
        // a bind-time surprise — and pin the template off the job clock.
        self.plan_sql(sql_text)?;
        self.engine.prime_template(sql_text)?;
        Ok(Prepared {
            engine: Arc::clone(&self.engine),
            prepared,
        })
    }

    /// Run a SQL query under the given re-optimization mode.
    #[deprecated(note = "use db.query(sql).mode(mode).run()")]
    pub fn run_sql(&self, sql_text: &str, mode: ReoptMode) -> Result<QueryOutcome> {
        self.query(sql_text).mode(mode).run()
    }

    /// Execute any SQL statement: SELECT runs under `mode`; CREATE
    /// TABLE / CREATE INDEX / INSERT / ANALYZE act on the catalog.
    ///
    /// ```
    /// use midq::{Database, ReoptMode, SqlOutcome};
    /// use midq::common::EngineConfig;
    /// let db = Database::new(EngineConfig::default()).unwrap();
    /// db.execute_sql("CREATE TABLE t (k INT, v FLOAT)", ReoptMode::Off).unwrap();
    /// db.execute_sql("INSERT INTO t VALUES (1, 1.5), (2, 2.5)", ReoptMode::Off).unwrap();
    /// db.execute_sql("ANALYZE t", ReoptMode::Off).unwrap();
    /// match db.execute_sql("SELECT k FROM t WHERE v > 2", ReoptMode::Full).unwrap() {
    ///     SqlOutcome::Query(out) => assert_eq!(out.rows.len(), 1),
    ///     SqlOutcome::Command(_) => unreachable!(),
    /// }
    /// ```
    pub fn execute_sql(&self, sql_text: &str, mode: ReoptMode) -> Result<SqlOutcome> {
        match mq_sql::parse_statement(sql_text)? {
            mq_sql::Statement::Select(q) => {
                let plan = mq_sql::bind(&q, self.engine.catalog())?;
                Ok(SqlOutcome::Query(Box::new(self.engine.run_with_sql(
                    &plan,
                    sql_text,
                    mode,
                    self.engine.default_env(),
                )?)))
            }
            mq_sql::Statement::CreateTable { name, columns } => {
                let cols: Vec<(&str, DataType)> =
                    columns.iter().map(|(c, t)| (c.as_str(), *t)).collect();
                self.create_table(&name, cols)?;
                Ok(SqlOutcome::Command(format!(
                    "created table {name} ({} columns)",
                    columns.len()
                )))
            }
            mq_sql::Statement::CreateIndex { table, column } => {
                self.create_index(&table, &column)?;
                Ok(SqlOutcome::Command(format!(
                    "created index on {table}.{column}"
                )))
            }
            mq_sql::Statement::Insert { table, rows } => {
                let schema = self.engine.catalog().table(&table)?.schema;
                let mut batch = Vec::with_capacity(rows.len());
                for row in rows {
                    if row.len() != schema.len() {
                        return Err(MqError::SchemaError(format!(
                            "INSERT arity {} vs {} columns of {table}",
                            row.len(),
                            schema.len()
                        )));
                    }
                    let coerced: Vec<Value> = row
                        .into_iter()
                        .enumerate()
                        .map(|(i, v)| coerce(v, schema.field(i).dtype))
                        .collect::<Result<_>>()?;
                    batch.push(Row::new(coerced));
                }
                // One batched append: the data version bumps once for
                // the whole statement, so dependent caches are
                // invalidated once instead of once per row.
                let n = self
                    .engine
                    .catalog()
                    .insert_rows(self.engine.storage(), &table, batch)?;
                self.engine.invalidate_cache_for(&table);
                Ok(SqlOutcome::Command(format!(
                    "inserted {n} rows into {table}"
                )))
            }
            mq_sql::Statement::Analyze { table } => {
                self.analyze(&table)?;
                Ok(SqlOutcome::Command(format!("analyzed {table}")))
            }
        }
    }

    /// Run a logical plan under the given re-optimization mode.
    #[deprecated(note = "use db.query_plan(&plan).mode(mode).run()")]
    pub fn run(&self, plan: &LogicalPlan, mode: ReoptMode) -> Result<QueryOutcome> {
        self.query_plan(plan).mode(mode).run()
    }

    /// Run a logical plan with an observability handle attached.
    #[deprecated(note = "use db.query_plan(&plan).mode(mode).observed(obs).run()")]
    pub fn run_observed(
        &self,
        plan: &LogicalPlan,
        mode: ReoptMode,
        obs: &mq_obs::Obs,
    ) -> Result<QueryOutcome> {
        self.query_plan(plan).mode(mode).observed(obs).run()
    }

    /// Run a logical plan through the intra-query partitioned driver.
    #[deprecated(note = "use db.query_plan(&plan).mode(mode).partitions(p).run()")]
    pub fn run_partitioned(
        &self,
        plan: &LogicalPlan,
        mode: ReoptMode,
        partitions: usize,
    ) -> Result<QueryOutcome> {
        self.query_plan(plan)
            .mode(mode)
            .partitions(partitions)
            .run()
    }

    /// Partitioned run with an observability handle attached.
    #[deprecated(note = "use db.query_plan(&plan).mode(mode).partitions(p).observed(obs).run()")]
    pub fn run_partitioned_observed(
        &self,
        plan: &LogicalPlan,
        mode: ReoptMode,
        partitions: usize,
        obs: &mq_obs::Obs,
    ) -> Result<QueryOutcome> {
        self.query_plan(plan)
            .mode(mode)
            .partitions(partitions)
            .observed(obs)
            .run()
    }

    /// Parse and run SQL with an observability handle attached.
    #[deprecated(note = "use db.query(sql).mode(mode).observed(obs).run()")]
    pub fn run_sql_observed(
        &self,
        sql_text: &str,
        mode: ReoptMode,
        obs: &mq_obs::Obs,
    ) -> Result<QueryOutcome> {
        self.query(sql_text).mode(mode).observed(obs).run()
    }

    /// EXPLAIN: the annotated physical plan the optimizer would run.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String> {
        let optimizer = mq_optimizer::Optimizer::new(self.engine.config().clone());
        let optimized = optimizer.optimize(plan, self.engine.catalog(), self.engine.storage())?;
        Ok(optimized.plan.to_string())
    }

    /// Load the TPC-D workload.
    pub fn load_tpcd(&self, cfg: &TpcdConfig) -> Result<mq_tpcd::TpcdStats> {
        mq_tpcd::load(cfg, self.engine.catalog(), self.engine.storage())
    }
}

/// What a [`Query`] executes: SQL text or a pre-built logical plan.
enum Target<'a> {
    Sql(&'a str),
    Plan(&'a LogicalPlan),
}

/// A query being built: created by [`Database::query`] or
/// [`Database::query_plan`], consumed by [`Query::run`].
///
/// Defaults: [`ReoptMode::Full`], serial execution, no observability
/// handle.
#[must_use = "a Query does nothing until .run()"]
pub struct Query<'a> {
    db: &'a Database,
    target: Target<'a>,
    mode: ReoptMode,
    obs: Option<mq_obs::Obs>,
    partitions: Option<usize>,
}

impl<'a> Query<'a> {
    /// Set the re-optimization mode (default [`ReoptMode::Full`]).
    pub fn mode(mut self, mode: ReoptMode) -> Query<'a> {
        self.mode = mode;
        self
    }

    /// Attach an observability handle: every event of the execution
    /// (collector checkpoints, re-opt verdicts, lease traffic, spills)
    /// goes to its sink and metrics registry, and the outcome carries
    /// per-operator actuals for [`QueryOutcome::explain_analyze`].
    pub fn observed(mut self, obs: &mq_obs::Obs) -> Query<'a> {
        self.obs = Some(obs.clone());
        self
    }

    /// Execute through the intra-query partitioned driver (`mq-par`)
    /// with this many simulated workers: the optimized plan gets
    /// exchange operators, pipeline segments execute per routing
    /// bucket, and the outcome carries a [`mq_reopt::ParReport`].
    /// Results are byte-identical across partition counts, and equal
    /// to serial execution up to floating-point summation order.
    pub fn partitions(mut self, partitions: usize) -> Query<'a> {
        self.partitions = Some(partitions);
        self
    }

    /// Execute the query and return its outcome.
    pub fn run(self) -> Result<QueryOutcome> {
        let engine = &self.db.engine;
        let mut env = engine.default_env();
        if let Some(p) = self.partitions {
            env.par = Some(mq_reopt::ParSpec::new(p));
        }
        env.obs = self.obs;
        match self.target {
            Target::Sql(sql_text) => {
                let plan = self.db.plan_sql(sql_text)?;
                engine.run_with_sql(&plan, sql_text, self.mode, env)
            }
            Target::Plan(plan) => engine.run_with(plan, self.mode, env),
        }
    }
}

/// A prepared statement: the template is normalized and its plan
/// pinned in the plan cache once, at [`Database::prepare`] time;
/// [`Prepared::run`] rebinds positional parameters without re-running
/// the normalizer.
///
/// ```no_run
/// # use midq::Database;
/// # use midq::common::{EngineConfig, Value};
/// # let db = Database::new(EngineConfig::default()).unwrap();
/// let stmt = db.prepare("SELECT v FROM t WHERE k = 10 AND v < 0.5").unwrap();
/// // Parameters are positional in textual order.
/// let out = stmt.run(&[Value::Int(42), Value::Float(0.25)]).unwrap();
/// ```
pub struct Prepared {
    engine: Arc<Engine>,
    prepared: PreparedSql,
}

impl Prepared {
    /// Number of positional parameters (the template's WHERE-clause
    /// literals, counted in textual order).
    pub fn param_count(&self) -> usize {
        self.prepared.param_count()
    }

    /// The template's plan-cache family key.
    pub fn key(&self) -> &str {
        self.prepared.key()
    }

    /// Bind `params` and execute under [`ReoptMode::Full`].
    pub fn run(&self, params: &[Value]) -> Result<QueryOutcome> {
        self.run_mode(params, ReoptMode::Full)
    }

    /// Bind `params` and execute under an explicit mode. Staleness is
    /// still honored: if the template's tables were written or its
    /// feedback drifted since admission, the probe forces one
    /// re-enumeration and re-admits the refreshed plan.
    pub fn run_mode(&self, params: &[Value], mode: ReoptMode) -> Result<QueryOutcome> {
        let bound = self.prepared.bind(params)?;
        let logical = mq_sql::plan_sql(&bound.sql, self.engine.catalog())?;
        self.engine.run_prepared(
            &logical,
            &bound.sql,
            &bound.norm,
            mode,
            self.engine.default_env(),
        )
    }
}
