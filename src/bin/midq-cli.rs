//! An interactive shell over the midq engine.
//!
//! ```text
//! cargo run --release --bin midq-cli
//! midq> \load tpcd 0.005 stale 0.5
//! midq> \mode full
//! midq> SELECT o_orderpriority, count(*) AS n FROM orders GROUP BY o_orderpriority;
//! midq> \report
//! ```
//!
//! SQL statements run under the current re-optimization mode; the
//! meta-commands (`\help` lists them) load workloads, switch modes,
//! EXPLAIN plans, and show the controller's post-execution report —
//! everything needed to watch a mid-query plan switch happen from a
//! terminal.

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use midq::common::EngineConfig;
use midq::obs::{JsonlSink, MetricsRegistry, Obs};
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, QueryOutcome, ReoptMode, SqlOutcome, Workload, WorkloadQuery};

struct Shell {
    db: Database,
    mode: ReoptMode,
    /// Intra-query partition count for `\analyze` and `\q` runs
    /// (`None` = serial execution).
    partitions: Option<usize>,
    last: Option<QueryOutcome>,
    /// JSONL trace of the last `\analyze` run (cleared per run).
    sink: Arc<JsonlSink>,
    /// Metrics accumulated across the whole shell session.
    metrics: MetricsRegistry,
    /// Job counter stamped on traced runs.
    jobs: u64,
}

const HELP: &str = "\
meta-commands:
  \\help                           this text
  \\load tpcd <scale> [stale <f>] [zipf <z>]
                                  generate + load TPC-D (stale: fraction
                                  analyzed mid-load, default 0.5; zipf:
                                  skew for non-key columns)
  \\tables                         list tables with row counts
  \\schema <table>                 show a table's columns and statistics
  \\mode [off|memory|plan|full]    show or set the re-optimization mode
  \\partitions [P|off]             show or set the intra-query partition
                                  count: \\analyze and \\q then run
                                  through the partitioned driver
                                  (exchange operators, skew verdicts)
  \\explain <SELECT ...>           annotated physical plan, no execution
  \\analyze <table>                re-ANALYZE one table
  \\analyze <SELECT ...| Qn>       EXPLAIN ANALYZE: run traced, show the
                                  plan with est vs actual rows, re-opt
                                  markers and the decision log
  \\trace [file]                   JSONL event trace of the last
                                  \\analyze run (print, or write to file)
  \\metrics                        Prometheus-text metrics accumulated
                                  across this session
  \\q <name>                       run a built-in TPC-D query (Q1..Q10)
  \\report                         EXPLAIN ANALYZE-style report of the
                                  last query (events, final plan)
  \\source <file>                  run statements from a file (one per
                                  line or ;-terminated)
  \\workload <file> [--workers N] [--partitions P] [--cache]
                                  replay a file of SELECTs (one per
                                  line or ;-terminated) through the
                                  concurrent runtime (default N=4);
                                  --partitions runs every query through
                                  the partitioned driver with P workers
                                  (admission takes P leases atomically);
                                  --cache enables the cross-query cache
                                  first (and leaves it on): per-query
                                  summaries + throughput + cache traffic
  \\cache [on|off|stats|clear]     cross-query sub-plan cache: toggle it,
                                  show hit/miss/promotion counters, or
                                  drop every entry and all cardinality
                                  feedback
  \\plancache [on|off|stats|clear] normalized-SQL plan cache: toggle it,
                                  show hit/miss/stale/eviction counters,
                                  or drop every cached plan template
  \\set <knob> <value>             tune an engine config knob between
                                  queries: switch_margin, cache_budget_kib,
                                  plan_cache_entries
                                  (e.g. \\set switch_margin 1.0)
  \\save [file]                    snapshot the catalog, data, statistics,
                                  feedback and plan-cache templates to a
                                  file (defaults to the \\open path);
                                  atomic: a crash mid-save leaves the
                                  previous snapshot loadable
  \\open <file>                    reopen the shell on a snapshot file
                                  (restores it if present, starts empty
                                  otherwise; \\save then writes back here)
  \\quit                           exit
anything else is parsed as SQL: SELECT runs under the current mode;
CREATE TABLE t (a INT, ...) / CREATE INDEX ON t (a) /
INSERT INTO t VALUES (...), (...) / ANALYZE t act on the catalog.";

fn parse_mode(s: &str) -> Option<ReoptMode> {
    match s {
        "off" => Some(ReoptMode::Off),
        "memory" | "mem" => Some(ReoptMode::MemoryOnly),
        "plan" => Some(ReoptMode::PlanOnly),
        "full" => Some(ReoptMode::Full),
        _ => None,
    }
}

impl Shell {
    fn new() -> Shell {
        let cfg = EngineConfig {
            buffer_pool_pages: 64,
            query_memory_bytes: 512 * 1024,
            ..EngineConfig::default()
        };
        Shell {
            db: Database::new(cfg).expect("engine"),
            mode: ReoptMode::Full,
            partitions: None,
            last: None,
            sink: Arc::new(JsonlSink::new()),
            metrics: MetricsRegistry::new(),
            jobs: 0,
        }
    }

    fn dispatch(&mut self, line: &str) {
        let line = line.trim().trim_end_matches(';').trim();
        if line.is_empty() {
            return;
        }
        if let Some(meta) = line.strip_prefix('\\') {
            self.meta(meta);
        } else {
            self.run_sql(line);
        }
    }

    fn meta(&mut self, cmd: &str) {
        let words: Vec<&str> = cmd.split_whitespace().collect();
        match words.as_slice() {
            ["help"] => println!("{HELP}"),
            ["load", "tpcd", rest @ ..] => self.load_tpcd(rest),
            ["tables"] => self.tables(),
            ["schema", t] => self.schema(t),
            // `\analyze <table>` keeps its historical meaning
            // (re-ANALYZE); anything else is EXPLAIN ANALYZE.
            ["analyze", t] if self.db.engine().catalog().table(t).is_ok() => {
                match self.db.analyze(t) {
                    Ok(()) => println!("analyzed {t}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            ["analyze", ..] => {
                let arg = cmd.trim_start_matches("analyze").trim().to_string();
                if arg.is_empty() {
                    println!("usage: \\analyze <table> | \\analyze <SELECT ...> | \\analyze Qn");
                } else {
                    self.explain_analyze(&arg);
                }
            }
            ["trace"] => self.trace(None),
            ["trace", path] => self.trace(Some(path)),
            ["metrics"] => {
                let snap = self.metrics.snapshot();
                if snap.is_empty() {
                    println!("no metrics yet — run \\analyze or \\workload first");
                } else {
                    print!("{}", snap.prometheus_text());
                }
            }
            ["mode"] => println!("mode: {:?}", self.mode),
            ["mode", m] => match parse_mode(m) {
                Some(mode) => {
                    self.mode = mode;
                    println!("mode: {:?}", self.mode);
                }
                None => println!("unknown mode {m:?} (off|memory|plan|full)"),
            },
            ["partitions"] => match self.partitions {
                Some(p) => println!("partitions: {p}"),
                None => println!("partitions: off (serial execution)"),
            },
            ["partitions", "off"] => {
                self.partitions = None;
                println!("partitions: off (serial execution)");
            }
            ["partitions", p] => match p.parse::<usize>() {
                Ok(p) if p >= 1 => {
                    self.partitions = Some(p);
                    println!("partitions: {p}");
                }
                _ => println!("usage: \\partitions <P >= 1 | off>"),
            },
            ["explain", ..] => {
                let sql = cmd.trim_start_matches("explain").trim();
                match self.db.plan_sql(sql).and_then(|p| self.db.explain(&p)) {
                    Ok(text) => print!("{text}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            ["q", name] => self.run_builtin(&name.to_uppercase()),
            ["report"] => match &self.last {
                Some(out) => print!("{}", out.report()),
                None => println!("no query has run yet"),
            },
            ["source", path] => self.source(path),
            ["workload", rest @ ..] => self.workload(rest),
            ["cache", rest @ ..] => self.cache_cmd(rest),
            ["plancache", rest @ ..] => self.plancache_cmd(rest),
            ["set", knob, value] => self.set_knob(knob, value),
            ["set", ..] => {
                println!("usage: \\set <switch_margin|cache_budget_kib|plan_cache_entries> <value>")
            }
            ["save"] => self.save(None),
            ["save", path] => self.save(Some(path)),
            ["open", path] => self.open(path),
            ["open"] => println!("usage: \\open <file>"),
            _ => println!("unknown command \\{cmd} — try \\help"),
        }
    }

    fn load_tpcd(&mut self, args: &[&str]) {
        let Some(scale) = args.first().and_then(|s| s.parse::<f64>().ok()) else {
            println!("usage: \\load tpcd <scale> [stale <f>] [zipf <z>]");
            return;
        };
        let mut cfg = TpcdConfig {
            scale,
            ..TpcdConfig::default()
        };
        let mut it = args[1..].iter();
        while let Some(k) = it.next() {
            let v = it.next().and_then(|v| v.parse::<f64>().ok());
            match (*k, v) {
                ("stale", Some(f)) => cfg.analyze_after_fraction = f,
                ("zipf", Some(z)) => cfg.zipf_z = Some(z),
                _ => {
                    println!("unknown load option {k:?}");
                    return;
                }
            }
        }
        match self.db.load_tpcd(&cfg) {
            Ok(stats) => {
                let total: u64 = stats.rows.values().sum();
                println!(
                    "loaded {} tables, {} rows (scale {scale}, analyzed after {:.0}% of the load)",
                    stats.rows.len(),
                    total,
                    cfg.analyze_after_fraction * 100.0
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }

    fn tables(&self) {
        let names = self.db.engine().catalog().table_names();
        if names.is_empty() {
            println!("no tables — try \\load tpcd 0.005");
            return;
        }
        for n in names {
            let t = self.db.engine().catalog().table(&n).expect("listed table");
            match &t.stats {
                Some(s) => println!(
                    "{n:<12} {:>8} rows ({} since ANALYZE), {} pages",
                    s.rows, t.inserts_since_analyze, s.pages
                ),
                None => println!("{n:<12} (never analyzed)"),
            }
        }
    }

    fn schema(&self, name: &str) {
        let t = match self.db.engine().catalog().table(name) {
            Ok(t) => t,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };
        for i in 0..t.schema.len() {
            let f = t.schema.field(i);
            let stats = t
                .stats
                .as_ref()
                .and_then(|s| s.column(f.name.rsplit('.').next().unwrap_or(&f.name)));
            match stats {
                Some(c) => {
                    let hist = match c.histogram_kind {
                        Some(k) => format!("{k:?}"),
                        None => "none".into(),
                    };
                    println!(
                        "{:<28} {:?}  distinct≈{:.0}  hist={hist}  clustering={:.2}",
                        f.name, f.dtype, c.distinct, c.clustering
                    );
                }
                None => println!("{:<28} {:?}", f.name, f.dtype),
            }
        }
    }

    /// Resolve `\analyze`'s argument: a built-in query name (Q1..Q10)
    /// or SQL text.
    fn resolve_query(&self, arg: &str) -> Option<(String, midq::LogicalPlan)> {
        let upper = arg.to_uppercase();
        if let Some((name, plan)) = queries::all().into_iter().find(|(n, _)| *n == upper) {
            return Some((name.to_string(), plan));
        }
        match self.db.plan_sql(arg) {
            Ok(plan) => Some(("query".to_string(), plan)),
            Err(e) => {
                println!("error: {e}");
                None
            }
        }
    }

    /// EXPLAIN ANALYZE: run the query with a fresh JSONL trace and the
    /// session metrics attached, then render the annotated plan.
    fn explain_analyze(&mut self, arg: &str) {
        let Some((label, plan)) = self.resolve_query(arg) else {
            return;
        };
        self.sink.clear();
        self.jobs += 1;
        let obs = Obs::none()
            .with_sink(self.sink.clone())
            .with_metrics(self.metrics.clone())
            .for_job(self.jobs, &label);
        let mut q = self.db.query_plan(&plan).mode(self.mode).observed(&obs);
        if let Some(p) = self.partitions {
            q = q.partitions(p);
        }
        let run = q.run();
        match run {
            Ok(out) => {
                print!("{}", out.explain_analyze());
                println!(
                    "-- {} trace events captured; \\trace to inspect, \\metrics for counters",
                    self.sink.len()
                );
                self.last = Some(out);
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// Print (or save) the JSONL trace of the last `\analyze` run.
    fn trace(&self, path: Option<&str>) {
        if self.sink.is_empty() {
            println!("no trace captured — run \\analyze <query> first");
            return;
        }
        match path {
            Some(p) => match self.sink.write_to(std::path::Path::new(p)) {
                Ok(()) => println!("wrote {} events to {p}", self.sink.len()),
                Err(e) => println!("cannot write {p}: {e}"),
            },
            None => print!("{}", self.sink.dump()),
        }
    }

    fn run_builtin(&mut self, name: &str) {
        let Some((_, plan)) = queries::all().into_iter().find(|(n, _)| *n == name) else {
            let names: Vec<&str> = queries::all().iter().map(|(n, _)| *n).collect();
            println!("unknown query {name} — available: {}", names.join(", "));
            return;
        };
        let mut q = self.db.query_plan(&plan).mode(self.mode);
        if let Some(p) = self.partitions {
            q = q.partitions(p);
        }
        let run = q.run();
        match run {
            Ok(out) => self.finish(out),
            Err(e) => println!("error: {e}"),
        }
    }

    /// Execute a script: statements separated by `;` or newlines
    /// (a statement may span lines until its terminating `;`).
    fn source(&mut self, path: &str) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                println!("cannot read {path}: {e}");
                return;
            }
        };
        for stmt in text.split(';') {
            let stmt: String = stmt
                .lines()
                .filter(|l| !l.trim_start().starts_with("--"))
                .collect::<Vec<_>>()
                .join(" ");
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            println!("> {stmt}");
            self.dispatch(stmt);
        }
    }

    /// Replay a file of SELECT statements through the concurrent
    /// runtime: `\workload queries.sql --workers 8`. Statements are
    /// `;`- or newline-separated; `--` comments are skipped. Built-in
    /// TPC-D queries may be named as `\q <name>` lines.
    fn workload(&mut self, args: &[&str]) {
        const USAGE: &str = "usage: \\workload <file> [--workers N] [--partitions P] [--cache]";
        let mut path: Option<&str> = None;
        let mut workers = 4usize;
        let mut partitions: Option<usize> = None;
        let mut cache = false;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if *a == "--cache" {
                cache = true;
            } else if *a == "--workers" {
                match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => workers = n,
                    _ => {
                        println!("{USAGE}");
                        return;
                    }
                }
            } else if *a == "--partitions" {
                match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(p) if p >= 1 => partitions = Some(p),
                    _ => {
                        println!("{USAGE}");
                        return;
                    }
                }
            } else {
                path = Some(a);
            }
        }
        let Some(path) = path else {
            println!("{USAGE}");
            return;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                println!("cannot read {path}: {e}");
                return;
            }
        };
        let mut wl = Workload::new(workers);
        for (i, stmt) in text.split([';', '\n']).enumerate() {
            let stmt = stmt.trim();
            if stmt.is_empty() || stmt.starts_with("--") {
                continue;
            }
            if let Some(name) = stmt.strip_prefix("\\q ") {
                let name = name.trim().to_uppercase();
                match queries::all().into_iter().find(|(n, _)| *n == name) {
                    Some((_, plan)) => {
                        wl.queries
                            .push(WorkloadQuery::plan(name, plan).with_mode(self.mode));
                    }
                    None => {
                        println!("line {}: unknown built-in query {name}", i + 1);
                        return;
                    }
                }
            } else {
                wl.queries
                    .push(WorkloadQuery::sql(format!("line{}", i + 1), stmt).with_mode(self.mode));
            }
        }
        if wl.queries.is_empty() {
            println!("{path}: no statements");
            return;
        }
        if let Some(p) = partitions {
            wl = wl.with_partitions(p);
        }
        if cache && !self.db.engine().config().cache_enabled {
            self.set_cache(true);
        }
        // Metrics-only handle: per-job snapshots drive the summary
        // lines and accumulate into the session registry (\metrics).
        wl.obs = Some(Obs::none().with_metrics(self.metrics.clone()));
        let report = self.db.run_concurrent(&wl);
        print!("{}", report.summary());
    }

    /// `\cache [on|off|stats|clear]`: toggle the cross-query cache,
    /// show its counters, or drop it wholesale.
    fn cache_cmd(&mut self, args: &[&str]) {
        match args {
            [] | ["stats"] => {
                let enabled = self.db.engine().config().cache_enabled;
                let s = self.db.cache_stats();
                println!(
                    "cache: {}   {} entries, {}/{} KiB",
                    if enabled { "on" } else { "off" },
                    s.entries,
                    s.bytes / 1024,
                    s.budget_bytes / 1024
                );
                println!(
                    "  hits={} misses={} promotions={} evictions={} invalidations={}",
                    s.hits, s.misses, s.promotions, s.evictions, s.invalidations
                );
                println!(
                    "  saved ≈{:.1} sim-ms, {} KiB of intermediates reused   feedback: {} fingerprints, {} applied",
                    s.saved_ms,
                    s.saved_bytes / 1024,
                    self.db.engine().feedback().len(),
                    self.db.engine().feedback().applied()
                );
            }
            ["on"] => self.set_cache(true),
            ["off"] => self.set_cache(false),
            ["clear"] => {
                self.db.clear_cache();
                println!("cache cleared (entries and cardinality feedback dropped)");
            }
            _ => println!("usage: \\cache [on|off|stats|clear]"),
        }
    }

    /// `\plancache [on|off|stats|clear]`: toggle the normalized-SQL
    /// plan cache, show its counters, or drop every template.
    fn plancache_cmd(&mut self, args: &[&str]) {
        match args {
            [] | ["stats"] => {
                let enabled = self.db.engine().config().plan_cache_enabled;
                let s = self.db.plan_cache_stats();
                println!(
                    "plan cache: {}   {}/{} entries",
                    if enabled { "on" } else { "off" },
                    s.entries,
                    s.capacity
                );
                println!(
                    "  hits={} misses={} stale_reopts={} insertions={} evictions={} rebind_failures={}",
                    s.hits, s.misses, s.stale_reopts, s.insertions, s.evictions, s.rebind_failures
                );
            }
            ["on"] => self.set_plan_cache(true),
            ["off"] => self.set_plan_cache(false),
            ["clear"] => {
                self.db.clear_plan_cache();
                println!("plan cache cleared (templates and histogram-error counters dropped)");
            }
            _ => println!("usage: \\plancache [on|off|stats|clear]"),
        }
    }

    fn set_plan_cache(&mut self, on: bool) {
        let mut cfg = self.db.engine().config().clone();
        if cfg.plan_cache_enabled == on {
            println!("plan cache already {}", if on { "on" } else { "off" });
            return;
        }
        cfg.plan_cache_enabled = on;
        match self.db.engine_mut().and_then(|e| e.set_config(cfg)) {
            Ok(()) => println!("plan cache {}", if on { "on" } else { "off" }),
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\set <knob> <value>`: tune one engine config knob in place
    /// (validated by [`EngineConfig::validate`] via `set_config`).
    fn set_knob(&mut self, knob: &str, value: &str) {
        let mut cfg = self.db.engine().config().clone();
        match knob {
            "switch_margin" => match value.parse::<f64>() {
                Ok(v) => cfg.switch_margin = v,
                Err(_) => {
                    println!("switch_margin wants a number, got {value:?}");
                    return;
                }
            },
            "cache_budget_kib" => match value.parse::<usize>() {
                Ok(v) => cfg.cache_budget_bytes = v * 1024,
                Err(_) => {
                    println!("cache_budget_kib wants an integer, got {value:?}");
                    return;
                }
            },
            "plan_cache_entries" => match value.parse::<usize>() {
                Ok(v) => cfg.plan_cache_entries = v,
                Err(_) => {
                    println!("plan_cache_entries wants an integer, got {value:?}");
                    return;
                }
            },
            _ => {
                println!(
                    "unknown knob {knob:?} (switch_margin, cache_budget_kib, plan_cache_entries)"
                );
                return;
            }
        }
        match self.db.engine_mut().and_then(|e| e.set_config(cfg)) {
            Ok(()) => println!("{knob} = {value}"),
            Err(e) => println!("error: {e}"),
        }
    }

    fn set_cache(&mut self, on: bool) {
        let mut cfg = self.db.engine().config().clone();
        if cfg.cache_enabled == on {
            println!("cache already {}", if on { "on" } else { "off" });
            return;
        }
        cfg.cache_enabled = on;
        match self.db.engine_mut().and_then(|e| e.set_config(cfg)) {
            Ok(()) => println!("cache {}", if on { "on" } else { "off" }),
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\save [file]`: snapshot the database. With no argument, writes
    /// back to the path the shell was `\open`ed on.
    fn save(&mut self, path: Option<&str>) {
        let result = match path {
            Some(p) => self.db.save_as(p),
            None => self.db.save(),
        };
        match result {
            Ok(r) => {
                let dest = path
                    .map(str::to_string)
                    .or_else(|| self.db.snapshot_path().map(|p| p.display().to_string()))
                    .unwrap_or_default();
                println!(
                    "saved {dest}: {} tables, {} rows, {} feedback entries, {} plan templates",
                    r.tables, r.rows, r.feedback_entries, r.plan_templates
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// `\open <file>`: swap the shell onto a snapshot-backed database,
    /// keeping the current engine configuration.
    fn open(&mut self, path: &str) {
        let existed = std::path::Path::new(path).exists();
        let cfg = self.db.engine().config().clone();
        match Database::open_with(cfg, path) {
            Ok(db) => {
                self.db = db;
                self.last = None;
                if existed {
                    let pc = self.db.plan_cache_stats();
                    println!(
                        "opened {path}: {} tables, {} plan templates primed",
                        self.db.engine().catalog().table_names().len(),
                        pc.entries
                    );
                } else {
                    println!("opened {path}: new database (\\save writes here)");
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }

    fn run_sql(&mut self, sql: &str) {
        match self.db.execute_sql(sql, self.mode) {
            Ok(SqlOutcome::Query(out)) => self.finish(*out),
            Ok(SqlOutcome::Command(msg)) => println!("{msg}"),
            Err(e) => println!("error: {e}"),
        }
    }

    fn finish(&mut self, out: QueryOutcome) {
        const SHOW: usize = 20;
        for row in out.rows.iter().take(SHOW) {
            println!("{row}");
        }
        if out.rows.len() > SHOW {
            println!("... ({} rows total)", out.rows.len());
        }
        println!(
            "-- {} rows, {:.1} simulated ms, {} switches, {} reallocs ({:?}); \\report for details",
            out.rows.len(),
            out.time_ms,
            out.plan_switches,
            out.memory_reallocs,
            out.mode
        );
        self.last = Some(out);
    }
}

fn main() {
    println!("midq interactive shell — \\help for commands");
    let mut shell = Shell::new();
    let stdin = io::stdin();
    loop {
        print!("midq> ");
        io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed == "\\quit" || trimmed == "exit" || trimmed == "quit" {
                    break;
                }
                shell.dispatch(&line);
            }
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
}
