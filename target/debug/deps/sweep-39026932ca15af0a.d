/root/repo/target/debug/deps/sweep-39026932ca15af0a.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-39026932ca15af0a: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
