/root/repo/target/debug/deps/mq_runtime-b530e3bdb90c6b44.d: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/mq_runtime-b530e3bdb90c6b44: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
