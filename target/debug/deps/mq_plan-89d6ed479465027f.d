/root/repo/target/debug/deps/mq_plan-89d6ed479465027f.d: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs

/root/repo/target/debug/deps/mq_plan-89d6ed479465027f: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs

crates/plan/src/lib.rs:
crates/plan/src/logical.rs:
crates/plan/src/physical.rs:
