/root/repo/target/debug/deps/midq_cli-99c4dae700534a75.d: src/bin/midq-cli.rs Cargo.toml

/root/repo/target/debug/deps/libmidq_cli-99c4dae700534a75.rmeta: src/bin/midq-cli.rs Cargo.toml

src/bin/midq-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
