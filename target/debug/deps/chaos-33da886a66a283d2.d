/root/repo/target/debug/deps/chaos-33da886a66a283d2.d: crates/bench/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-33da886a66a283d2.rmeta: crates/bench/tests/chaos.rs Cargo.toml

crates/bench/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
