/root/repo/target/debug/deps/mq_reopt-efb056ead29667c7.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs crates/core/src/engine_tests.rs

/root/repo/target/debug/deps/mq_reopt-efb056ead29667c7: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs crates/core/src/engine_tests.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/engine.rs:
crates/core/src/improve.rs:
crates/core/src/remainder.rs:
crates/core/src/scia.rs:
crates/core/src/engine_tests.rs:
