/root/repo/target/debug/deps/midq_cli-4e8e55acb8ef4c98.d: src/bin/midq-cli.rs

/root/repo/target/debug/deps/midq_cli-4e8e55acb8ef4c98: src/bin/midq-cli.rs

src/bin/midq-cli.rs:
