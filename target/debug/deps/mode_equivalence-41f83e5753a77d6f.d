/root/repo/target/debug/deps/mode_equivalence-41f83e5753a77d6f.d: tests/mode_equivalence.rs

/root/repo/target/debug/deps/mode_equivalence-41f83e5753a77d6f: tests/mode_equivalence.rs

tests/mode_equivalence.rs:
