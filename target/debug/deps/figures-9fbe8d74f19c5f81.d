/root/repo/target/debug/deps/figures-9fbe8d74f19c5f81.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-9fbe8d74f19c5f81.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
