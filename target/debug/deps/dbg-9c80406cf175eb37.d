/root/repo/target/debug/deps/dbg-9c80406cf175eb37.d: crates/bench/src/bin/dbg.rs Cargo.toml

/root/repo/target/debug/deps/libdbg-9c80406cf175eb37.rmeta: crates/bench/src/bin/dbg.rs Cargo.toml

crates/bench/src/bin/dbg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
