/root/repo/target/debug/deps/mq_exec-e6bdd4a40933681f.d: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

/root/repo/target/debug/deps/libmq_exec-e6bdd4a40933681f.rlib: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

/root/repo/target/debug/deps/libmq_exec-e6bdd4a40933681f.rmeta: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

crates/exec/src/lib.rs:
crates/exec/src/aggregate.rs:
crates/exec/src/collector.rs:
crates/exec/src/context.rs:
crates/exec/src/filter.rs:
crates/exec/src/hash_join.rs:
crates/exec/src/inl_join.rs:
crates/exec/src/scan.rs:
crates/exec/src/sink.rs:
crates/exec/src/sort.rs:
