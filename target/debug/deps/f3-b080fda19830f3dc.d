/root/repo/target/debug/deps/f3-b080fda19830f3dc.d: crates/bench/src/bin/f3.rs

/root/repo/target/debug/deps/f3-b080fda19830f3dc: crates/bench/src/bin/f3.rs

crates/bench/src/bin/f3.rs:
