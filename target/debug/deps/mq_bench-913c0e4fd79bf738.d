/root/repo/target/debug/deps/mq_bench-913c0e4fd79bf738.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libmq_bench-913c0e4fd79bf738.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
