/root/repo/target/debug/deps/mq_catalog-1418b027090b0c7f.d: crates/catalog/src/lib.rs crates/catalog/src/stats.rs

/root/repo/target/debug/deps/libmq_catalog-1418b027090b0c7f.rlib: crates/catalog/src/lib.rs crates/catalog/src/stats.rs

/root/repo/target/debug/deps/libmq_catalog-1418b027090b0c7f.rmeta: crates/catalog/src/lib.rs crates/catalog/src/stats.rs

crates/catalog/src/lib.rs:
crates/catalog/src/stats.rs:
