/root/repo/target/debug/deps/mq_storage-c6297e110b05a7eb.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/libmq_storage-c6297e110b05a7eb.rlib: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/libmq_storage-c6297e110b05a7eb.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
