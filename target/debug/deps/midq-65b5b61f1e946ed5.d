/root/repo/target/debug/deps/midq-65b5b61f1e946ed5.d: src/lib.rs

/root/repo/target/debug/deps/midq-65b5b61f1e946ed5: src/lib.rs

src/lib.rs:
