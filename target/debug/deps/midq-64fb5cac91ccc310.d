/root/repo/target/debug/deps/midq-64fb5cac91ccc310.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmidq-64fb5cac91ccc310.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
