/root/repo/target/debug/deps/dbg-338fbe05bc0ea640.d: crates/bench/src/bin/dbg.rs

/root/repo/target/debug/deps/dbg-338fbe05bc0ea640: crates/bench/src/bin/dbg.rs

crates/bench/src/bin/dbg.rs:
