/root/repo/target/debug/deps/mq_sql-0542457da3e64938.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libmq_sql-0542457da3e64938.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs Cargo.toml

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/binder.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
