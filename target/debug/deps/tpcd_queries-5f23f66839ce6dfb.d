/root/repo/target/debug/deps/tpcd_queries-5f23f66839ce6dfb.d: tests/tpcd_queries.rs

/root/repo/target/debug/deps/tpcd_queries-5f23f66839ce6dfb: tests/tpcd_queries.rs

tests/tpcd_queries.rs:
