/root/repo/target/debug/deps/sweep-16734ffc7b72dff2.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-16734ffc7b72dff2.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
