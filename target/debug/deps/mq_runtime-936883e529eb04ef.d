/root/repo/target/debug/deps/mq_runtime-936883e529eb04ef.d: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/libmq_runtime-936883e529eb04ef.rlib: crates/runtime/src/lib.rs

/root/repo/target/debug/deps/libmq_runtime-936883e529eb04ef.rmeta: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
