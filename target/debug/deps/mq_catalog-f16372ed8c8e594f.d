/root/repo/target/debug/deps/mq_catalog-f16372ed8c8e594f.d: crates/catalog/src/lib.rs crates/catalog/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmq_catalog-f16372ed8c8e594f.rmeta: crates/catalog/src/lib.rs crates/catalog/src/stats.rs Cargo.toml

crates/catalog/src/lib.rs:
crates/catalog/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
