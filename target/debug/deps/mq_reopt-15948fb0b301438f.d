/root/repo/target/debug/deps/mq_reopt-15948fb0b301438f.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

/root/repo/target/debug/deps/libmq_reopt-15948fb0b301438f.rlib: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

/root/repo/target/debug/deps/libmq_reopt-15948fb0b301438f.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/engine.rs:
crates/core/src/improve.rs:
crates/core/src/remainder.rs:
crates/core/src/scia.rs:
