/root/repo/target/debug/deps/mq_storage-15325ea508238c18.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/mq_storage-15325ea508238c18: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
