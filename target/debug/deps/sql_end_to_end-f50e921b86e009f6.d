/root/repo/target/debug/deps/sql_end_to_end-f50e921b86e009f6.d: tests/sql_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libsql_end_to_end-f50e921b86e009f6.rmeta: tests/sql_end_to_end.rs Cargo.toml

tests/sql_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
