/root/repo/target/debug/deps/figures-3e77ebbcbfdb459f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3e77ebbcbfdb459f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
