/root/repo/target/debug/deps/figures-df8b723dded766fe.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-df8b723dded766fe: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
