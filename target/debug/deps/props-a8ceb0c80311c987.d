/root/repo/target/debug/deps/props-a8ceb0c80311c987.d: crates/optimizer/tests/props.rs

/root/repo/target/debug/deps/props-a8ceb0c80311c987: crates/optimizer/tests/props.rs

crates/optimizer/tests/props.rs:
