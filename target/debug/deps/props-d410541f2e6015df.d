/root/repo/target/debug/deps/props-d410541f2e6015df.d: crates/stats/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-d410541f2e6015df.rmeta: crates/stats/tests/props.rs Cargo.toml

crates/stats/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
