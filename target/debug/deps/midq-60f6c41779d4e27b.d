/root/repo/target/debug/deps/midq-60f6c41779d4e27b.d: src/lib.rs

/root/repo/target/debug/deps/libmidq-60f6c41779d4e27b.rlib: src/lib.rs

/root/repo/target/debug/deps/libmidq-60f6c41779d4e27b.rmeta: src/lib.rs

src/lib.rs:
