/root/repo/target/debug/deps/concurrency-6376b9d146fc876c.d: tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-6376b9d146fc876c.rmeta: tests/concurrency.rs Cargo.toml

tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
