/root/repo/target/debug/deps/mq_stats-7df5482bbe8525df.d: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/mq_stats-7df5482bbe8525df: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/accumulator.rs:
crates/stats/src/distinct.rs:
crates/stats/src/histogram.rs:
crates/stats/src/reservoir.rs:
crates/stats/src/zipf.rs:
