/root/repo/target/debug/deps/sweep-be9a553442aa5b61.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-be9a553442aa5b61: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
