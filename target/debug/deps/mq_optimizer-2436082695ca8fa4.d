/root/repo/target/debug/deps/mq_optimizer-2436082695ca8fa4.d: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs Cargo.toml

/root/repo/target/debug/deps/libmq_optimizer-2436082695ca8fa4.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs Cargo.toml

crates/optimizer/src/lib.rs:
crates/optimizer/src/calibrate.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
