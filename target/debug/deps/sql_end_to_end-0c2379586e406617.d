/root/repo/target/debug/deps/sql_end_to_end-0c2379586e406617.d: tests/sql_end_to_end.rs

/root/repo/target/debug/deps/sql_end_to_end-0c2379586e406617: tests/sql_end_to_end.rs

tests/sql_end_to_end.rs:
