/root/repo/target/debug/deps/chaos-7b7fe4d55b289ad3.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-7b7fe4d55b289ad3: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
