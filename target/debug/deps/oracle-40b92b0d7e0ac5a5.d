/root/repo/target/debug/deps/oracle-40b92b0d7e0ac5a5.d: crates/exec/tests/oracle.rs Cargo.toml

/root/repo/target/debug/deps/liboracle-40b92b0d7e0ac5a5.rmeta: crates/exec/tests/oracle.rs Cargo.toml

crates/exec/tests/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
