/root/repo/target/debug/deps/f3-6ead834fbfdd6f4a.d: crates/bench/src/bin/f3.rs

/root/repo/target/debug/deps/f3-6ead834fbfdd6f4a: crates/bench/src/bin/f3.rs

crates/bench/src/bin/f3.rs:
