/root/repo/target/debug/deps/props-6ba02123b963d622.d: crates/sql/tests/props.rs

/root/repo/target/debug/deps/props-6ba02123b963d622: crates/sql/tests/props.rs

crates/sql/tests/props.rs:
