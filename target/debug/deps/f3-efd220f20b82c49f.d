/root/repo/target/debug/deps/f3-efd220f20b82c49f.d: crates/bench/src/bin/f3.rs Cargo.toml

/root/repo/target/debug/deps/libf3-efd220f20b82c49f.rmeta: crates/bench/src/bin/f3.rs Cargo.toml

crates/bench/src/bin/f3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
