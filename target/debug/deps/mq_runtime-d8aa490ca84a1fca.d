/root/repo/target/debug/deps/mq_runtime-d8aa490ca84a1fca.d: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs crates/runtime/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libmq_runtime-d8aa490ca84a1fca.rmeta: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs crates/runtime/src/tests.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/report.rs:
crates/runtime/src/workload.rs:
crates/runtime/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
