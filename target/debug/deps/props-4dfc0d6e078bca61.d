/root/repo/target/debug/deps/props-4dfc0d6e078bca61.d: crates/memory/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-4dfc0d6e078bca61.rmeta: crates/memory/tests/props.rs Cargo.toml

crates/memory/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
