/root/repo/target/debug/deps/midq_cli-64295bd5ba8cb205.d: src/bin/midq-cli.rs

/root/repo/target/debug/deps/midq_cli-64295bd5ba8cb205: src/bin/midq-cli.rs

src/bin/midq-cli.rs:
