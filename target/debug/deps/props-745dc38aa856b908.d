/root/repo/target/debug/deps/props-745dc38aa856b908.d: crates/expr/tests/props.rs

/root/repo/target/debug/deps/props-745dc38aa856b908: crates/expr/tests/props.rs

crates/expr/tests/props.rs:
