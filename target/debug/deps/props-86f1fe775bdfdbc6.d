/root/repo/target/debug/deps/props-86f1fe775bdfdbc6.d: crates/optimizer/tests/props.rs

/root/repo/target/debug/deps/props-86f1fe775bdfdbc6: crates/optimizer/tests/props.rs

crates/optimizer/tests/props.rs:
