/root/repo/target/debug/deps/mq_exec-a919967ad758247a.d: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs crates/exec/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libmq_exec-a919967ad758247a.rmeta: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs crates/exec/src/tests.rs Cargo.toml

crates/exec/src/lib.rs:
crates/exec/src/aggregate.rs:
crates/exec/src/collector.rs:
crates/exec/src/context.rs:
crates/exec/src/filter.rs:
crates/exec/src/hash_join.rs:
crates/exec/src/inl_join.rs:
crates/exec/src/scan.rs:
crates/exec/src/sink.rs:
crates/exec/src/sort.rs:
crates/exec/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
