/root/repo/target/debug/deps/props-3488ec6aa71adec8.d: crates/common/tests/props.rs

/root/repo/target/debug/deps/props-3488ec6aa71adec8: crates/common/tests/props.rs

crates/common/tests/props.rs:
