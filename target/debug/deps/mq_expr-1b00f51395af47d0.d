/root/repo/target/debug/deps/mq_expr-1b00f51395af47d0.d: crates/expr/src/lib.rs crates/expr/src/selectivity.rs

/root/repo/target/debug/deps/libmq_expr-1b00f51395af47d0.rlib: crates/expr/src/lib.rs crates/expr/src/selectivity.rs

/root/repo/target/debug/deps/libmq_expr-1b00f51395af47d0.rmeta: crates/expr/src/lib.rs crates/expr/src/selectivity.rs

crates/expr/src/lib.rs:
crates/expr/src/selectivity.rs:
