/root/repo/target/debug/deps/mq_expr-258ac7b9d9075be9.d: crates/expr/src/lib.rs crates/expr/src/selectivity.rs

/root/repo/target/debug/deps/mq_expr-258ac7b9d9075be9: crates/expr/src/lib.rs crates/expr/src/selectivity.rs

crates/expr/src/lib.rs:
crates/expr/src/selectivity.rs:
