/root/repo/target/debug/deps/f3-bcb27964821e9e0c.d: crates/bench/src/bin/f3.rs

/root/repo/target/debug/deps/f3-bcb27964821e9e0c: crates/bench/src/bin/f3.rs

crates/bench/src/bin/f3.rs:
