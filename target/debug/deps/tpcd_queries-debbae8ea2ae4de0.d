/root/repo/target/debug/deps/tpcd_queries-debbae8ea2ae4de0.d: tests/tpcd_queries.rs Cargo.toml

/root/repo/target/debug/deps/libtpcd_queries-debbae8ea2ae4de0.rmeta: tests/tpcd_queries.rs Cargo.toml

tests/tpcd_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
