/root/repo/target/debug/deps/oracle-af90950b58075c8a.d: crates/exec/tests/oracle.rs

/root/repo/target/debug/deps/oracle-af90950b58075c8a: crates/exec/tests/oracle.rs

crates/exec/tests/oracle.rs:
