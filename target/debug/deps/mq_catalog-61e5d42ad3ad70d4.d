/root/repo/target/debug/deps/mq_catalog-61e5d42ad3ad70d4.d: crates/catalog/src/lib.rs crates/catalog/src/stats.rs

/root/repo/target/debug/deps/mq_catalog-61e5d42ad3ad70d4: crates/catalog/src/lib.rs crates/catalog/src/stats.rs

crates/catalog/src/lib.rs:
crates/catalog/src/stats.rs:
