/root/repo/target/debug/deps/mode_equivalence-4d0cc4c5b15f0984.d: tests/mode_equivalence.rs

/root/repo/target/debug/deps/mode_equivalence-4d0cc4c5b15f0984: tests/mode_equivalence.rs

tests/mode_equivalence.rs:
