/root/repo/target/debug/deps/chaos-80f365e8b42dca94.d: crates/bench/src/bin/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-80f365e8b42dca94.rmeta: crates/bench/src/bin/chaos.rs Cargo.toml

crates/bench/src/bin/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
