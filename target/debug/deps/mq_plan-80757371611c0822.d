/root/repo/target/debug/deps/mq_plan-80757371611c0822.d: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs

/root/repo/target/debug/deps/libmq_plan-80757371611c0822.rlib: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs

/root/repo/target/debug/deps/libmq_plan-80757371611c0822.rmeta: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs

crates/plan/src/lib.rs:
crates/plan/src/logical.rs:
crates/plan/src/physical.rs:
