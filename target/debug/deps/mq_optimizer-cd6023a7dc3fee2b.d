/root/repo/target/debug/deps/mq_optimizer-cd6023a7dc3fee2b.d: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

/root/repo/target/debug/deps/mq_optimizer-cd6023a7dc3fee2b: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/calibrate.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/props.rs:
