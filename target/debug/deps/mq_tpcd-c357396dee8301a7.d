/root/repo/target/debug/deps/mq_tpcd-c357396dee8301a7.d: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs Cargo.toml

/root/repo/target/debug/deps/libmq_tpcd-c357396dee8301a7.rmeta: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs Cargo.toml

crates/tpcd/src/lib.rs:
crates/tpcd/src/gen.rs:
crates/tpcd/src/queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
