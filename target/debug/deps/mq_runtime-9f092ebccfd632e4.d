/root/repo/target/debug/deps/mq_runtime-9f092ebccfd632e4.d: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmq_runtime-9f092ebccfd632e4.rmeta: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/report.rs:
crates/runtime/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
