/root/repo/target/debug/deps/oracle-1efcd58255256c0a.d: crates/exec/tests/oracle.rs

/root/repo/target/debug/deps/oracle-1efcd58255256c0a: crates/exec/tests/oracle.rs

crates/exec/tests/oracle.rs:
