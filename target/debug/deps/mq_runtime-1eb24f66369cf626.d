/root/repo/target/debug/deps/mq_runtime-1eb24f66369cf626.d: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs

/root/repo/target/debug/deps/libmq_runtime-1eb24f66369cf626.rlib: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs

/root/repo/target/debug/deps/libmq_runtime-1eb24f66369cf626.rmeta: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs

crates/runtime/src/lib.rs:
crates/runtime/src/report.rs:
crates/runtime/src/workload.rs:
