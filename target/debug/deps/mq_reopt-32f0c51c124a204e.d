/root/repo/target/debug/deps/mq_reopt-32f0c51c124a204e.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

/root/repo/target/debug/deps/libmq_reopt-32f0c51c124a204e.rlib: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

/root/repo/target/debug/deps/libmq_reopt-32f0c51c124a204e.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/engine.rs:
crates/core/src/improve.rs:
crates/core/src/remainder.rs:
crates/core/src/scia.rs:
