/root/repo/target/debug/deps/midq_cli-cc442a91ad65a6e0.d: src/bin/midq-cli.rs Cargo.toml

/root/repo/target/debug/deps/libmidq_cli-cc442a91ad65a6e0.rmeta: src/bin/midq-cli.rs Cargo.toml

src/bin/midq-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
