/root/repo/target/debug/deps/midq-884cfc0af85b6bd8.d: src/lib.rs

/root/repo/target/debug/deps/midq-884cfc0af85b6bd8: src/lib.rs

src/lib.rs:
