/root/repo/target/debug/deps/figures-7573bb5043341b41.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-7573bb5043341b41: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
