/root/repo/target/debug/deps/mq_stats-7f26b7f63c7795a3.d: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/libmq_stats-7f26b7f63c7795a3.rlib: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs

/root/repo/target/debug/deps/libmq_stats-7f26b7f63c7795a3.rmeta: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/accumulator.rs:
crates/stats/src/distinct.rs:
crates/stats/src/histogram.rs:
crates/stats/src/reservoir.rs:
crates/stats/src/zipf.rs:
