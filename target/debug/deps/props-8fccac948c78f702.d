/root/repo/target/debug/deps/props-8fccac948c78f702.d: crates/storage/tests/props.rs

/root/repo/target/debug/deps/props-8fccac948c78f702: crates/storage/tests/props.rs

crates/storage/tests/props.rs:
