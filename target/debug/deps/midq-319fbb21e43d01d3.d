/root/repo/target/debug/deps/midq-319fbb21e43d01d3.d: src/lib.rs

/root/repo/target/debug/deps/libmidq-319fbb21e43d01d3.rlib: src/lib.rs

/root/repo/target/debug/deps/libmidq-319fbb21e43d01d3.rmeta: src/lib.rs

src/lib.rs:
