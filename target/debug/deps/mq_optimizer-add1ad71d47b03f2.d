/root/repo/target/debug/deps/mq_optimizer-add1ad71d47b03f2.d: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

/root/repo/target/debug/deps/mq_optimizer-add1ad71d47b03f2: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/calibrate.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/props.rs:
