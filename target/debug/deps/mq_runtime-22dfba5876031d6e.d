/root/repo/target/debug/deps/mq_runtime-22dfba5876031d6e.d: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs crates/runtime/src/tests.rs

/root/repo/target/debug/deps/mq_runtime-22dfba5876031d6e: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs crates/runtime/src/tests.rs

crates/runtime/src/lib.rs:
crates/runtime/src/report.rs:
crates/runtime/src/workload.rs:
crates/runtime/src/tests.rs:
