/root/repo/target/debug/deps/sql_end_to_end-10a971a8703a0971.d: tests/sql_end_to_end.rs

/root/repo/target/debug/deps/sql_end_to_end-10a971a8703a0971: tests/sql_end_to_end.rs

tests/sql_end_to_end.rs:
