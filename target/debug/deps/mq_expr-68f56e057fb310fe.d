/root/repo/target/debug/deps/mq_expr-68f56e057fb310fe.d: crates/expr/src/lib.rs crates/expr/src/selectivity.rs Cargo.toml

/root/repo/target/debug/deps/libmq_expr-68f56e057fb310fe.rmeta: crates/expr/src/lib.rs crates/expr/src/selectivity.rs Cargo.toml

crates/expr/src/lib.rs:
crates/expr/src/selectivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
