/root/repo/target/debug/deps/mq_optimizer-06187a135fb916dc.d: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

/root/repo/target/debug/deps/libmq_optimizer-06187a135fb916dc.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

/root/repo/target/debug/deps/libmq_optimizer-06187a135fb916dc.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/calibrate.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/props.rs:
