/root/repo/target/debug/deps/concurrency-3136365679ed0a0d.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-3136365679ed0a0d: tests/concurrency.rs

tests/concurrency.rs:
