/root/repo/target/debug/deps/mq_memory-6d3eae1eb1dd1086.d: crates/memory/src/lib.rs crates/memory/src/broker.rs Cargo.toml

/root/repo/target/debug/deps/libmq_memory-6d3eae1eb1dd1086.rmeta: crates/memory/src/lib.rs crates/memory/src/broker.rs Cargo.toml

crates/memory/src/lib.rs:
crates/memory/src/broker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
