/root/repo/target/debug/deps/mq_sql-f843e55c49c47f25.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/debug/deps/libmq_sql-f843e55c49c47f25.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/debug/deps/libmq_sql-f843e55c49c47f25.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/binder.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
