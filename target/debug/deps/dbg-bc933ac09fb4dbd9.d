/root/repo/target/debug/deps/dbg-bc933ac09fb4dbd9.d: crates/bench/src/bin/dbg.rs

/root/repo/target/debug/deps/dbg-bc933ac09fb4dbd9: crates/bench/src/bin/dbg.rs

crates/bench/src/bin/dbg.rs:
