/root/repo/target/debug/deps/mq_exec-6ffdb9ea93b0b7fb.d: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

/root/repo/target/debug/deps/libmq_exec-6ffdb9ea93b0b7fb.rlib: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

/root/repo/target/debug/deps/libmq_exec-6ffdb9ea93b0b7fb.rmeta: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

crates/exec/src/lib.rs:
crates/exec/src/aggregate.rs:
crates/exec/src/collector.rs:
crates/exec/src/context.rs:
crates/exec/src/filter.rs:
crates/exec/src/hash_join.rs:
crates/exec/src/inl_join.rs:
crates/exec/src/scan.rs:
crates/exec/src/sink.rs:
crates/exec/src/sort.rs:
