/root/repo/target/debug/deps/mq_stats-ed8f10de706082e3.d: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libmq_stats-ed8f10de706082e3.rmeta: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/accumulator.rs:
crates/stats/src/distinct.rs:
crates/stats/src/histogram.rs:
crates/stats/src/reservoir.rs:
crates/stats/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
