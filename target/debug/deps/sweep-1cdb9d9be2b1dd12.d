/root/repo/target/debug/deps/sweep-1cdb9d9be2b1dd12.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-1cdb9d9be2b1dd12: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
