/root/repo/target/debug/deps/mq_plan-b04119346912ddfa.d: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs Cargo.toml

/root/repo/target/debug/deps/libmq_plan-b04119346912ddfa.rmeta: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs Cargo.toml

crates/plan/src/lib.rs:
crates/plan/src/logical.rs:
crates/plan/src/physical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
