/root/repo/target/debug/deps/mq_tpcd-49a3b34b41377244.d: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs

/root/repo/target/debug/deps/libmq_tpcd-49a3b34b41377244.rlib: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs

/root/repo/target/debug/deps/libmq_tpcd-49a3b34b41377244.rmeta: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs

crates/tpcd/src/lib.rs:
crates/tpcd/src/gen.rs:
crates/tpcd/src/queries.rs:
