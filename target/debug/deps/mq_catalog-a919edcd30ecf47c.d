/root/repo/target/debug/deps/mq_catalog-a919edcd30ecf47c.d: crates/catalog/src/lib.rs crates/catalog/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmq_catalog-a919edcd30ecf47c.rmeta: crates/catalog/src/lib.rs crates/catalog/src/stats.rs Cargo.toml

crates/catalog/src/lib.rs:
crates/catalog/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
