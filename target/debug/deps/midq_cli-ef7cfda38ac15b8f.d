/root/repo/target/debug/deps/midq_cli-ef7cfda38ac15b8f.d: src/bin/midq-cli.rs

/root/repo/target/debug/deps/midq_cli-ef7cfda38ac15b8f: src/bin/midq-cli.rs

src/bin/midq-cli.rs:
