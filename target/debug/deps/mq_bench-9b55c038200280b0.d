/root/repo/target/debug/deps/mq_bench-9b55c038200280b0.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/debug/deps/libmq_bench-9b55c038200280b0.rlib: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/debug/deps/libmq_bench-9b55c038200280b0.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
