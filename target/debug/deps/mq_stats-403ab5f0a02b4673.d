/root/repo/target/debug/deps/mq_stats-403ab5f0a02b4673.d: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libmq_stats-403ab5f0a02b4673.rmeta: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/accumulator.rs:
crates/stats/src/distinct.rs:
crates/stats/src/histogram.rs:
crates/stats/src/reservoir.rs:
crates/stats/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
