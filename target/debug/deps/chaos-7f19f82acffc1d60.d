/root/repo/target/debug/deps/chaos-7f19f82acffc1d60.d: crates/bench/tests/chaos.rs

/root/repo/target/debug/deps/chaos-7f19f82acffc1d60: crates/bench/tests/chaos.rs

crates/bench/tests/chaos.rs:
