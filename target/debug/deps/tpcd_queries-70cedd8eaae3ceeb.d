/root/repo/target/debug/deps/tpcd_queries-70cedd8eaae3ceeb.d: tests/tpcd_queries.rs

/root/repo/target/debug/deps/tpcd_queries-70cedd8eaae3ceeb: tests/tpcd_queries.rs

tests/tpcd_queries.rs:
