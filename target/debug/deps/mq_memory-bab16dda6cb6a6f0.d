/root/repo/target/debug/deps/mq_memory-bab16dda6cb6a6f0.d: crates/memory/src/lib.rs crates/memory/src/broker.rs

/root/repo/target/debug/deps/libmq_memory-bab16dda6cb6a6f0.rlib: crates/memory/src/lib.rs crates/memory/src/broker.rs

/root/repo/target/debug/deps/libmq_memory-bab16dda6cb6a6f0.rmeta: crates/memory/src/lib.rs crates/memory/src/broker.rs

crates/memory/src/lib.rs:
crates/memory/src/broker.rs:
