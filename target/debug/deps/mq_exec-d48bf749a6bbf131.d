/root/repo/target/debug/deps/mq_exec-d48bf749a6bbf131.d: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs crates/exec/src/tests.rs

/root/repo/target/debug/deps/mq_exec-d48bf749a6bbf131: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs crates/exec/src/tests.rs

crates/exec/src/lib.rs:
crates/exec/src/aggregate.rs:
crates/exec/src/collector.rs:
crates/exec/src/context.rs:
crates/exec/src/filter.rs:
crates/exec/src/hash_join.rs:
crates/exec/src/inl_join.rs:
crates/exec/src/scan.rs:
crates/exec/src/sink.rs:
crates/exec/src/sort.rs:
crates/exec/src/tests.rs:
