/root/repo/target/debug/deps/props-89bcf8a1adaef419.d: crates/storage/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-89bcf8a1adaef419.rmeta: crates/storage/tests/props.rs Cargo.toml

crates/storage/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
