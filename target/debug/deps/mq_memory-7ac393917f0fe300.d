/root/repo/target/debug/deps/mq_memory-7ac393917f0fe300.d: crates/memory/src/lib.rs crates/memory/src/broker.rs

/root/repo/target/debug/deps/mq_memory-7ac393917f0fe300: crates/memory/src/lib.rs crates/memory/src/broker.rs

crates/memory/src/lib.rs:
crates/memory/src/broker.rs:
