/root/repo/target/debug/deps/props-d2e456ae4cf08a0c.d: crates/common/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-d2e456ae4cf08a0c.rmeta: crates/common/tests/props.rs Cargo.toml

crates/common/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
