/root/repo/target/debug/deps/mq_bench-81df3c5094da2fa6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mq_bench-81df3c5094da2fa6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
