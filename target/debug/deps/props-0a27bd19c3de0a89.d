/root/repo/target/debug/deps/props-0a27bd19c3de0a89.d: crates/optimizer/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-0a27bd19c3de0a89.rmeta: crates/optimizer/tests/props.rs Cargo.toml

crates/optimizer/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
