/root/repo/target/debug/deps/mode_equivalence-1b8963b2311dbef1.d: tests/mode_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libmode_equivalence-1b8963b2311dbef1.rmeta: tests/mode_equivalence.rs Cargo.toml

tests/mode_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
