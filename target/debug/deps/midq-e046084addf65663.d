/root/repo/target/debug/deps/midq-e046084addf65663.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmidq-e046084addf65663.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
