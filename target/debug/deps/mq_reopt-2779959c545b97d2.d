/root/repo/target/debug/deps/mq_reopt-2779959c545b97d2.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs Cargo.toml

/root/repo/target/debug/deps/libmq_reopt-2779959c545b97d2.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/engine.rs:
crates/core/src/improve.rs:
crates/core/src/remainder.rs:
crates/core/src/scia.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
