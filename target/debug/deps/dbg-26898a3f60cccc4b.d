/root/repo/target/debug/deps/dbg-26898a3f60cccc4b.d: crates/bench/src/bin/dbg.rs

/root/repo/target/debug/deps/dbg-26898a3f60cccc4b: crates/bench/src/bin/dbg.rs

crates/bench/src/bin/dbg.rs:
