/root/repo/target/debug/deps/mq_bench-117290026de257cd.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/debug/deps/mq_bench-117290026de257cd: crates/bench/src/lib.rs crates/bench/src/chaos.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
