/root/repo/target/debug/deps/midq_cli-13d2174460dc47d9.d: src/bin/midq-cli.rs

/root/repo/target/debug/deps/midq_cli-13d2174460dc47d9: src/bin/midq-cli.rs

src/bin/midq-cli.rs:
