/root/repo/target/debug/deps/props-cdee52de13f7b9e8.d: crates/sql/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-cdee52de13f7b9e8.rmeta: crates/sql/tests/props.rs Cargo.toml

crates/sql/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
