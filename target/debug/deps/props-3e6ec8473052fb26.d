/root/repo/target/debug/deps/props-3e6ec8473052fb26.d: crates/expr/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-3e6ec8473052fb26.rmeta: crates/expr/tests/props.rs Cargo.toml

crates/expr/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
