/root/repo/target/debug/deps/mq_reopt-df44c0a608c177a6.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs crates/core/src/engine_tests.rs Cargo.toml

/root/repo/target/debug/deps/libmq_reopt-df44c0a608c177a6.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs crates/core/src/engine_tests.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/engine.rs:
crates/core/src/improve.rs:
crates/core/src/remainder.rs:
crates/core/src/scia.rs:
crates/core/src/engine_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
