/root/repo/target/debug/deps/mq_tpcd-f43778cad1828308.d: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs

/root/repo/target/debug/deps/mq_tpcd-f43778cad1828308: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs

crates/tpcd/src/lib.rs:
crates/tpcd/src/gen.rs:
crates/tpcd/src/queries.rs:
