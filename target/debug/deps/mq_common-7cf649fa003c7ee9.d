/root/repo/target/debug/deps/mq_common-7cf649fa003c7ee9.d: crates/common/src/lib.rs crates/common/src/cancel.rs crates/common/src/clock.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libmq_common-7cf649fa003c7ee9.rmeta: crates/common/src/lib.rs crates/common/src/cancel.rs crates/common/src/clock.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/cancel.rs:
crates/common/src/clock.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/fault.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/row.rs:
crates/common/src/schema.rs:
crates/common/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
