/root/repo/target/debug/deps/mq_sql-6bd461491f2be613.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/debug/deps/mq_sql-6bd461491f2be613: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/binder.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
