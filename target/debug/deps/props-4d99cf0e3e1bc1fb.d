/root/repo/target/debug/deps/props-4d99cf0e3e1bc1fb.d: crates/memory/tests/props.rs

/root/repo/target/debug/deps/props-4d99cf0e3e1bc1fb: crates/memory/tests/props.rs

crates/memory/tests/props.rs:
