/root/repo/target/debug/deps/chaos-d74e6ebd9625de70.d: crates/bench/src/bin/chaos.rs

/root/repo/target/debug/deps/chaos-d74e6ebd9625de70: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
