/root/repo/target/debug/deps/mq_expr-2d7be5672cb604eb.d: crates/expr/src/lib.rs crates/expr/src/selectivity.rs Cargo.toml

/root/repo/target/debug/deps/libmq_expr-2d7be5672cb604eb.rmeta: crates/expr/src/lib.rs crates/expr/src/selectivity.rs Cargo.toml

crates/expr/src/lib.rs:
crates/expr/src/selectivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
