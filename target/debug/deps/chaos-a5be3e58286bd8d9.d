/root/repo/target/debug/deps/chaos-a5be3e58286bd8d9.d: crates/bench/src/bin/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-a5be3e58286bd8d9.rmeta: crates/bench/src/bin/chaos.rs Cargo.toml

crates/bench/src/bin/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
