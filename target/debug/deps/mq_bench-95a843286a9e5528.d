/root/repo/target/debug/deps/mq_bench-95a843286a9e5528.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmq_bench-95a843286a9e5528.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmq_bench-95a843286a9e5528.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
