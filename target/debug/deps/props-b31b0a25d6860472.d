/root/repo/target/debug/deps/props-b31b0a25d6860472.d: crates/stats/tests/props.rs

/root/repo/target/debug/deps/props-b31b0a25d6860472: crates/stats/tests/props.rs

crates/stats/tests/props.rs:
