/root/repo/target/debug/deps/mq_storage-ab6cd6a02741f695.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs Cargo.toml

/root/repo/target/debug/deps/libmq_storage-ab6cd6a02741f695.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
