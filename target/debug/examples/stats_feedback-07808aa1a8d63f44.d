/root/repo/target/debug/examples/stats_feedback-07808aa1a8d63f44.d: examples/stats_feedback.rs Cargo.toml

/root/repo/target/debug/examples/libstats_feedback-07808aa1a8d63f44.rmeta: examples/stats_feedback.rs Cargo.toml

examples/stats_feedback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
