/root/repo/target/debug/examples/stats_feedback-9a5e99ace61927c8.d: examples/stats_feedback.rs

/root/repo/target/debug/examples/stats_feedback-9a5e99ace61927c8: examples/stats_feedback.rs

examples/stats_feedback.rs:
