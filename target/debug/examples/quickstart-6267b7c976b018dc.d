/root/repo/target/debug/examples/quickstart-6267b7c976b018dc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6267b7c976b018dc: examples/quickstart.rs

examples/quickstart.rs:
