/root/repo/target/debug/examples/tpcd_modes-0b86483224ccee44.d: examples/tpcd_modes.rs

/root/repo/target/debug/examples/tpcd_modes-0b86483224ccee44: examples/tpcd_modes.rs

examples/tpcd_modes.rs:
