/root/repo/target/debug/examples/tpcd_modes-a8fc807b2a250300.d: examples/tpcd_modes.rs

/root/repo/target/debug/examples/tpcd_modes-a8fc807b2a250300: examples/tpcd_modes.rs

examples/tpcd_modes.rs:
