/root/repo/target/debug/examples/memory_realloc-d4297dc7deab7240.d: examples/memory_realloc.rs

/root/repo/target/debug/examples/memory_realloc-d4297dc7deab7240: examples/memory_realloc.rs

examples/memory_realloc.rs:
