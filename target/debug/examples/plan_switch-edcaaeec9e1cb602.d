/root/repo/target/debug/examples/plan_switch-edcaaeec9e1cb602.d: examples/plan_switch.rs

/root/repo/target/debug/examples/plan_switch-edcaaeec9e1cb602: examples/plan_switch.rs

examples/plan_switch.rs:
