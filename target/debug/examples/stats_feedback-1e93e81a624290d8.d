/root/repo/target/debug/examples/stats_feedback-1e93e81a624290d8.d: examples/stats_feedback.rs

/root/repo/target/debug/examples/stats_feedback-1e93e81a624290d8: examples/stats_feedback.rs

examples/stats_feedback.rs:
