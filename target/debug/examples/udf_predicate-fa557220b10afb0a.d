/root/repo/target/debug/examples/udf_predicate-fa557220b10afb0a.d: examples/udf_predicate.rs Cargo.toml

/root/repo/target/debug/examples/libudf_predicate-fa557220b10afb0a.rmeta: examples/udf_predicate.rs Cargo.toml

examples/udf_predicate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
