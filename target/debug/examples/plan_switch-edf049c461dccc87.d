/root/repo/target/debug/examples/plan_switch-edf049c461dccc87.d: examples/plan_switch.rs Cargo.toml

/root/repo/target/debug/examples/libplan_switch-edf049c461dccc87.rmeta: examples/plan_switch.rs Cargo.toml

examples/plan_switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
