/root/repo/target/debug/examples/memory_realloc-f174ef8538baa617.d: examples/memory_realloc.rs Cargo.toml

/root/repo/target/debug/examples/libmemory_realloc-f174ef8538baa617.rmeta: examples/memory_realloc.rs Cargo.toml

examples/memory_realloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
