/root/repo/target/debug/examples/quickstart-4f253521eb52a28d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4f253521eb52a28d: examples/quickstart.rs

examples/quickstart.rs:
