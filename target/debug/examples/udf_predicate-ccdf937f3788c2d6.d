/root/repo/target/debug/examples/udf_predicate-ccdf937f3788c2d6.d: examples/udf_predicate.rs

/root/repo/target/debug/examples/udf_predicate-ccdf937f3788c2d6: examples/udf_predicate.rs

examples/udf_predicate.rs:
