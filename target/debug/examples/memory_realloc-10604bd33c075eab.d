/root/repo/target/debug/examples/memory_realloc-10604bd33c075eab.d: examples/memory_realloc.rs

/root/repo/target/debug/examples/memory_realloc-10604bd33c075eab: examples/memory_realloc.rs

examples/memory_realloc.rs:
