/root/repo/target/debug/examples/plan_switch-1245199f8823851b.d: examples/plan_switch.rs

/root/repo/target/debug/examples/plan_switch-1245199f8823851b: examples/plan_switch.rs

examples/plan_switch.rs:
