/root/repo/target/debug/examples/tpcd_modes-2a09b33535040634.d: examples/tpcd_modes.rs Cargo.toml

/root/repo/target/debug/examples/libtpcd_modes-2a09b33535040634.rmeta: examples/tpcd_modes.rs Cargo.toml

examples/tpcd_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
