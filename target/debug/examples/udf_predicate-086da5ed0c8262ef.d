/root/repo/target/debug/examples/udf_predicate-086da5ed0c8262ef.d: examples/udf_predicate.rs

/root/repo/target/debug/examples/udf_predicate-086da5ed0c8262ef: examples/udf_predicate.rs

examples/udf_predicate.rs:
