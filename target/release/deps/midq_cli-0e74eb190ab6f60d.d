/root/repo/target/release/deps/midq_cli-0e74eb190ab6f60d.d: src/bin/midq-cli.rs

/root/repo/target/release/deps/midq_cli-0e74eb190ab6f60d: src/bin/midq-cli.rs

src/bin/midq-cli.rs:
