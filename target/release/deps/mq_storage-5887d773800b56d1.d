/root/repo/target/release/deps/mq_storage-5887d773800b56d1.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/release/deps/mq_storage-5887d773800b56d1: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
