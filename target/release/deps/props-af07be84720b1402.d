/root/repo/target/release/deps/props-af07be84720b1402.d: crates/common/tests/props.rs

/root/repo/target/release/deps/props-af07be84720b1402: crates/common/tests/props.rs

crates/common/tests/props.rs:
