/root/repo/target/release/deps/f3-4195ffe27579e2cb.d: crates/bench/src/bin/f3.rs

/root/repo/target/release/deps/f3-4195ffe27579e2cb: crates/bench/src/bin/f3.rs

crates/bench/src/bin/f3.rs:
