/root/repo/target/release/deps/chaos-9cc0fb5af9de3d03.d: crates/bench/src/bin/chaos.rs

/root/repo/target/release/deps/chaos-9cc0fb5af9de3d03: crates/bench/src/bin/chaos.rs

crates/bench/src/bin/chaos.rs:
