/root/repo/target/release/deps/midq-acbc8bbf4c58c001.d: src/lib.rs

/root/repo/target/release/deps/libmidq-acbc8bbf4c58c001.rlib: src/lib.rs

/root/repo/target/release/deps/libmidq-acbc8bbf4c58c001.rmeta: src/lib.rs

src/lib.rs:
