/root/repo/target/release/deps/mq_optimizer-f93161e21597d775.d: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

/root/repo/target/release/deps/libmq_optimizer-f93161e21597d775.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

/root/repo/target/release/deps/libmq_optimizer-f93161e21597d775.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/calibrate.rs crates/optimizer/src/cost.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/props.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/calibrate.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/props.rs:
