/root/repo/target/release/deps/mq_plan-7f05f8a454dbe197.d: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs

/root/repo/target/release/deps/libmq_plan-7f05f8a454dbe197.rlib: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs

/root/repo/target/release/deps/libmq_plan-7f05f8a454dbe197.rmeta: crates/plan/src/lib.rs crates/plan/src/logical.rs crates/plan/src/physical.rs

crates/plan/src/lib.rs:
crates/plan/src/logical.rs:
crates/plan/src/physical.rs:
