/root/repo/target/release/deps/mq_runtime-142944f402df4a76.d: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs

/root/repo/target/release/deps/libmq_runtime-142944f402df4a76.rlib: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs

/root/repo/target/release/deps/libmq_runtime-142944f402df4a76.rmeta: crates/runtime/src/lib.rs crates/runtime/src/report.rs crates/runtime/src/workload.rs

crates/runtime/src/lib.rs:
crates/runtime/src/report.rs:
crates/runtime/src/workload.rs:
