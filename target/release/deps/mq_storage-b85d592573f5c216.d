/root/repo/target/release/deps/mq_storage-b85d592573f5c216.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/release/deps/libmq_storage-b85d592573f5c216.rlib: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

/root/repo/target/release/deps/libmq_storage-b85d592573f5c216.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/disk.rs crates/storage/src/heap.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/disk.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
