/root/repo/target/release/deps/midq_cli-39f1ff89315db2de.d: src/bin/midq-cli.rs

/root/repo/target/release/deps/midq_cli-39f1ff89315db2de: src/bin/midq-cli.rs

src/bin/midq-cli.rs:
