/root/repo/target/release/deps/mq_memory-356572ee1d24df6e.d: crates/memory/src/lib.rs crates/memory/src/broker.rs

/root/repo/target/release/deps/libmq_memory-356572ee1d24df6e.rlib: crates/memory/src/lib.rs crates/memory/src/broker.rs

/root/repo/target/release/deps/libmq_memory-356572ee1d24df6e.rmeta: crates/memory/src/lib.rs crates/memory/src/broker.rs

crates/memory/src/lib.rs:
crates/memory/src/broker.rs:
