/root/repo/target/release/deps/mq_runtime-a3ee1d4c7bb4c995.d: crates/runtime/src/lib.rs

/root/repo/target/release/deps/libmq_runtime-a3ee1d4c7bb4c995.rlib: crates/runtime/src/lib.rs

/root/repo/target/release/deps/libmq_runtime-a3ee1d4c7bb4c995.rmeta: crates/runtime/src/lib.rs

crates/runtime/src/lib.rs:
