/root/repo/target/release/deps/chaos-64760724dc47201b.d: crates/bench/tests/chaos.rs

/root/repo/target/release/deps/chaos-64760724dc47201b: crates/bench/tests/chaos.rs

crates/bench/tests/chaos.rs:
