/root/repo/target/release/deps/mq_stats-3fdc4f1a6aa3c014.d: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs

/root/repo/target/release/deps/libmq_stats-3fdc4f1a6aa3c014.rlib: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs

/root/repo/target/release/deps/libmq_stats-3fdc4f1a6aa3c014.rmeta: crates/stats/src/lib.rs crates/stats/src/accumulator.rs crates/stats/src/distinct.rs crates/stats/src/histogram.rs crates/stats/src/reservoir.rs crates/stats/src/zipf.rs

crates/stats/src/lib.rs:
crates/stats/src/accumulator.rs:
crates/stats/src/distinct.rs:
crates/stats/src/histogram.rs:
crates/stats/src/reservoir.rs:
crates/stats/src/zipf.rs:
