/root/repo/target/release/deps/mq_exec-3e29d17a6a4efa39.d: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

/root/repo/target/release/deps/libmq_exec-3e29d17a6a4efa39.rlib: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

/root/repo/target/release/deps/libmq_exec-3e29d17a6a4efa39.rmeta: crates/exec/src/lib.rs crates/exec/src/aggregate.rs crates/exec/src/collector.rs crates/exec/src/context.rs crates/exec/src/filter.rs crates/exec/src/hash_join.rs crates/exec/src/inl_join.rs crates/exec/src/scan.rs crates/exec/src/sink.rs crates/exec/src/sort.rs

crates/exec/src/lib.rs:
crates/exec/src/aggregate.rs:
crates/exec/src/collector.rs:
crates/exec/src/context.rs:
crates/exec/src/filter.rs:
crates/exec/src/hash_join.rs:
crates/exec/src/inl_join.rs:
crates/exec/src/scan.rs:
crates/exec/src/sink.rs:
crates/exec/src/sort.rs:
