/root/repo/target/release/deps/mq_reopt-c6f8407b8595aca6.d: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

/root/repo/target/release/deps/libmq_reopt-c6f8407b8595aca6.rlib: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

/root/repo/target/release/deps/libmq_reopt-c6f8407b8595aca6.rmeta: crates/core/src/lib.rs crates/core/src/controller.rs crates/core/src/engine.rs crates/core/src/improve.rs crates/core/src/remainder.rs crates/core/src/scia.rs

crates/core/src/lib.rs:
crates/core/src/controller.rs:
crates/core/src/engine.rs:
crates/core/src/improve.rs:
crates/core/src/remainder.rs:
crates/core/src/scia.rs:
