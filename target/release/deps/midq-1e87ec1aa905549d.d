/root/repo/target/release/deps/midq-1e87ec1aa905549d.d: src/lib.rs

/root/repo/target/release/deps/libmidq-1e87ec1aa905549d.rlib: src/lib.rs

/root/repo/target/release/deps/libmidq-1e87ec1aa905549d.rmeta: src/lib.rs

src/lib.rs:
