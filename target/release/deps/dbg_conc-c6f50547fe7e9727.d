/root/repo/target/release/deps/dbg_conc-c6f50547fe7e9727.d: crates/bench/src/bin/dbg_conc.rs

/root/repo/target/release/deps/dbg_conc-c6f50547fe7e9727: crates/bench/src/bin/dbg_conc.rs

crates/bench/src/bin/dbg_conc.rs:
