/root/repo/target/release/deps/mq_tpcd-83465eebef296027.d: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs

/root/repo/target/release/deps/libmq_tpcd-83465eebef296027.rlib: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs

/root/repo/target/release/deps/libmq_tpcd-83465eebef296027.rmeta: crates/tpcd/src/lib.rs crates/tpcd/src/gen.rs crates/tpcd/src/queries.rs

crates/tpcd/src/lib.rs:
crates/tpcd/src/gen.rs:
crates/tpcd/src/queries.rs:
