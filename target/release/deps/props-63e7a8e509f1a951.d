/root/repo/target/release/deps/props-63e7a8e509f1a951.d: crates/storage/tests/props.rs

/root/repo/target/release/deps/props-63e7a8e509f1a951: crates/storage/tests/props.rs

crates/storage/tests/props.rs:
