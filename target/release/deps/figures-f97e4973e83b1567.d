/root/repo/target/release/deps/figures-f97e4973e83b1567.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-f97e4973e83b1567: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
