/root/repo/target/release/deps/mq_bench-1dc819161c3fb189.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/release/deps/libmq_bench-1dc819161c3fb189.rlib: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/release/deps/libmq_bench-1dc819161c3fb189.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
