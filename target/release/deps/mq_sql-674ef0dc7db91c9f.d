/root/repo/target/release/deps/mq_sql-674ef0dc7db91c9f.d: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/release/deps/libmq_sql-674ef0dc7db91c9f.rlib: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

/root/repo/target/release/deps/libmq_sql-674ef0dc7db91c9f.rmeta: crates/sql/src/lib.rs crates/sql/src/ast.rs crates/sql/src/binder.rs crates/sql/src/lexer.rs crates/sql/src/parser.rs

crates/sql/src/lib.rs:
crates/sql/src/ast.rs:
crates/sql/src/binder.rs:
crates/sql/src/lexer.rs:
crates/sql/src/parser.rs:
