/root/repo/target/release/deps/dbg-b6916a99ecd21237.d: crates/bench/src/bin/dbg.rs

/root/repo/target/release/deps/dbg-b6916a99ecd21237: crates/bench/src/bin/dbg.rs

crates/bench/src/bin/dbg.rs:
