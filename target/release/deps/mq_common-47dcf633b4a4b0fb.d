/root/repo/target/release/deps/mq_common-47dcf633b4a4b0fb.d: crates/common/src/lib.rs crates/common/src/cancel.rs crates/common/src/clock.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

/root/repo/target/release/deps/mq_common-47dcf633b4a4b0fb: crates/common/src/lib.rs crates/common/src/cancel.rs crates/common/src/clock.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/fault.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/cancel.rs:
crates/common/src/clock.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/fault.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/row.rs:
crates/common/src/schema.rs:
crates/common/src/value.rs:
