/root/repo/target/release/deps/mq_expr-c7e9e0c981d3e6e1.d: crates/expr/src/lib.rs crates/expr/src/selectivity.rs

/root/repo/target/release/deps/libmq_expr-c7e9e0c981d3e6e1.rlib: crates/expr/src/lib.rs crates/expr/src/selectivity.rs

/root/repo/target/release/deps/libmq_expr-c7e9e0c981d3e6e1.rmeta: crates/expr/src/lib.rs crates/expr/src/selectivity.rs

crates/expr/src/lib.rs:
crates/expr/src/selectivity.rs:
