/root/repo/target/release/deps/mq_catalog-6c4ace5b9a7eb61e.d: crates/catalog/src/lib.rs crates/catalog/src/stats.rs

/root/repo/target/release/deps/libmq_catalog-6c4ace5b9a7eb61e.rlib: crates/catalog/src/lib.rs crates/catalog/src/stats.rs

/root/repo/target/release/deps/libmq_catalog-6c4ace5b9a7eb61e.rmeta: crates/catalog/src/lib.rs crates/catalog/src/stats.rs

crates/catalog/src/lib.rs:
crates/catalog/src/stats.rs:
