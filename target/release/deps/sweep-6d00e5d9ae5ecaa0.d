/root/repo/target/release/deps/sweep-6d00e5d9ae5ecaa0.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-6d00e5d9ae5ecaa0: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
