//! SQL → plan → execution, end to end through the `Database` facade.

use midq::common::{DataType, EngineConfig, Row, Value};
use midq::{Database, ReoptMode};

fn sample_db() -> Database {
    let db = Database::new(EngineConfig::default()).unwrap();
    db.create_table(
        "emp",
        vec![
            ("id", DataType::Int),
            ("dept", DataType::Str),
            ("salary", DataType::Float),
            ("hired", DataType::Date),
        ],
    )
    .unwrap();
    db.create_table(
        "dept",
        vec![("name", DataType::Str), ("budget", DataType::Int)],
    )
    .unwrap();
    let depts = ["eng", "sales", "hr"];
    for i in 0..900i64 {
        db.insert(
            "emp",
            Row::new(vec![
                Value::Int(i),
                Value::str(depts[(i % 3) as usize]),
                Value::Float(40_000.0 + (i % 100) as f64 * 1_000.0),
                midq::common::value::date(2010 + (i % 10), 1 + (i % 12) as u32, 1),
            ]),
        )
        .unwrap();
    }
    for (i, d) in depts.iter().enumerate() {
        db.insert(
            "dept",
            Row::new(vec![Value::str(*d), Value::Int(100 * (i as i64 + 1))]),
        )
        .unwrap();
    }
    db.analyze("emp").unwrap();
    db.analyze("dept").unwrap();
    db
}

#[test]
fn aggregates_group_order_limit() {
    let db = sample_db();
    let out = db
        .query(
            "SELECT dept, count(*) AS n, avg(salary) AS pay, max(salary) AS top \
             FROM emp WHERE salary >= 50000 GROUP BY dept ORDER BY dept",
        )
        .mode(ReoptMode::Full)
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 3);
    assert_eq!(out.rows[0].get(0), &Value::str("eng"));
    // 90 of 100 salary steps are ≥ 50000 → 270 per dept.
    assert_eq!(out.rows[0].get(1), &Value::Int(270));
    let top = match out.rows[0].get(3) {
        Value::Float(f) => *f,
        other => panic!("{other:?}"),
    };
    assert!((top - 139_000.0).abs() < 1e-6);
}

#[test]
fn join_with_date_predicate() {
    let db = sample_db();
    let out = db
        .query(
            "SELECT id, budget FROM emp, dept \
             WHERE dept = name AND hired >= DATE '2018-01-01' AND budget > 150 \
             ORDER BY id LIMIT 5",
        )
        .mode(ReoptMode::Full)
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 5);
    // Ordered by id ascending.
    let ids: Vec<i64> = out
        .rows
        .iter()
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
    for r in &out.rows {
        assert!(r.get(1).as_i64().unwrap() > 150);
    }
}

#[test]
fn explain_mentions_operators() {
    let db = sample_db();
    let plan = db
        .plan_sql("SELECT dept, count(*) AS n FROM emp GROUP BY dept")
        .unwrap();
    let text = db.explain(&plan).unwrap();
    assert!(text.contains("HashAggregate"), "{text}");
    assert!(text.contains("SeqScan emp"), "{text}");
    assert!(text.contains("rows≈"), "{text}");
}

#[test]
fn empty_results_are_fine() {
    let db = sample_db();
    let out = db
        .query("SELECT id FROM emp WHERE salary < 0")
        .mode(ReoptMode::Full)
        .run()
        .unwrap();
    assert!(out.rows.is_empty());
    let out = db
        .query("SELECT count(*) AS n FROM emp WHERE salary < 0")
        .mode(ReoptMode::Full)
        .run()
        .unwrap();
    assert_eq!(out.rows[0].get(0), &Value::Int(0));
}

#[test]
fn errors_are_reported_not_panicked() {
    let db = sample_db();
    assert!(db
        .query("SELECT nope FROM emp")
        .mode(ReoptMode::Off)
        .run()
        .is_err());
    assert!(db.query("SELECT FROM").mode(ReoptMode::Off).run().is_err());
    assert!(db
        .query("SELECT id FROM ghost")
        .mode(ReoptMode::Off)
        .run()
        .is_err());
    assert!(db
        .query("SELECT id, count(*) FROM emp GROUP BY dept")
        .mode(ReoptMode::Off)
        .run()
        .is_err());
}

#[test]
fn between_and_or_predicates() {
    let db = sample_db();
    let out = db
        .query(
            "SELECT count(*) AS n FROM emp \
             WHERE salary BETWEEN 50000 AND 60000 OR dept = 'hr'",
        )
        .mode(ReoptMode::Full)
        .run()
        .unwrap();
    let n = out.rows[0].get(0).as_i64().unwrap();
    // 11 salary steps in [50k,60k] → 99 emps, plus 300 hr minus overlap 33.
    assert_eq!(n, 99 + 300 - 33);
}

/// The full SQL-only lifecycle through `execute_sql`: DDL, literal
/// inserts with coercion, ANALYZE, index creation, query, and typed
/// error reporting — no Rust-side table building at all.
#[test]
fn sql_only_lifecycle() {
    use midq::SqlOutcome;
    let db = Database::new(EngineConfig::default()).unwrap();
    let cmd = |sql: &str| match db.execute_sql(sql, ReoptMode::Off).unwrap() {
        SqlOutcome::Command(msg) => msg,
        SqlOutcome::Query(_) => panic!("{sql} should be a command"),
    };

    assert!(cmd("CREATE TABLE p (id INT, price FLOAT, tag VARCHAR, day DATE)").contains("created"));
    assert!(cmd("INSERT INTO p VALUES \
         (1, 10, 'a', DATE '2020-01-01'), \
         (2, 2.5, 'b', DATE '2020-06-15'), \
         (3, -0.5, 'a', NULL)")
    .contains("3 rows"));
    assert!(cmd("ANALYZE p").contains("analyzed"));
    assert!(cmd("CREATE INDEX ON p (id)").contains("index"));

    // The INT literal 10 was coerced into the FLOAT column.
    let out = match db
        .execute_sql(
            "SELECT tag, count(*) AS n FROM p WHERE price > 0 GROUP BY tag ORDER BY tag",
            ReoptMode::Full,
        )
        .unwrap()
    {
        SqlOutcome::Query(q) => q,
        SqlOutcome::Command(m) => panic!("unexpected command: {m}"),
    };
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0].get(0), &Value::str("a"));
    assert_eq!(out.rows[0].get(1), &Value::Int(1)); // a: only the price-10 row
    assert_eq!(out.rows[1].get(1), &Value::Int(1)); // b: the 2.5 row

    // Typed failures, not panics.
    let arity = db.execute_sql("INSERT INTO p VALUES (1, 2.0)", ReoptMode::Off);
    assert_eq!(arity.unwrap_err().kind(), "schema");
    let ty = db.execute_sql("INSERT INTO p VALUES ('x', 1.0, 'a', NULL)", ReoptMode::Off);
    assert_eq!(ty.unwrap_err().kind(), "type_mismatch");
    let dup = db.execute_sql("CREATE TABLE p (a INT)", ReoptMode::Off);
    assert_eq!(dup.unwrap_err().kind(), "already_exists");
    let ghost = db.execute_sql("ANALYZE ghost", ReoptMode::Off);
    assert_eq!(ghost.unwrap_err().kind(), "not_found");
}

/// Statements inserted through SQL are visible to the re-optimization
/// machinery exactly like API inserts: post-ANALYZE SQL inserts raise
/// update activity and therefore the SCIA's staleness signal.
#[test]
fn sql_inserts_count_as_update_activity() {
    let db = Database::new(EngineConfig::default()).unwrap();
    db.execute_sql("CREATE TABLE t (a INT)", ReoptMode::Off)
        .unwrap();
    db.execute_sql("INSERT INTO t VALUES (1), (2), (3), (4)", ReoptMode::Off)
        .unwrap();
    db.execute_sql("ANALYZE t", ReoptMode::Off).unwrap();
    assert_eq!(
        db.engine().catalog().table("t").unwrap().update_activity(),
        0.0
    );
    db.execute_sql("INSERT INTO t VALUES (5), (6)", ReoptMode::Off)
        .unwrap();
    let act = db.engine().catalog().table("t").unwrap().update_activity();
    assert!((act - 0.5).abs() < 1e-9, "activity {act}");
}

/// IN / NOT IN desugar to (negated) disjunctions and execute correctly.
#[test]
fn in_list_end_to_end() {
    let db = sample_db();
    let out = db
        .query("SELECT count(*) AS n FROM emp WHERE dept IN ('eng', 'hr')")
        .mode(ReoptMode::Full)
        .run()
        .unwrap();
    assert_eq!(out.rows[0].get(0), &Value::Int(600));
    let out = db
        .query("SELECT count(*) AS n FROM emp WHERE dept NOT IN ('eng', 'hr')")
        .mode(ReoptMode::Full)
        .run()
        .unwrap();
    assert_eq!(out.rows[0].get(0), &Value::Int(300));
    let out = db
        .query("SELECT count(*) AS n FROM emp WHERE id IN (0, 1, 2, 899, 9999)")
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    assert_eq!(out.rows[0].get(0), &Value::Int(4));
}

/// The pre-builder entry points stay as thin wrappers: same results,
/// same semantics, just deprecated.
#[test]
#[allow(deprecated)]
fn deprecated_run_wrappers_still_work() {
    let db = sample_db();
    let sql = "SELECT dept, count(*) AS n FROM emp GROUP BY dept ORDER BY dept";
    let old = db.run_sql(sql, ReoptMode::Full).unwrap();
    let new = db.query(sql).run().unwrap();
    assert_eq!(old.rows, new.rows);

    let plan = db.plan_sql(sql).unwrap();
    let from_plan = db.run(&plan, ReoptMode::Off).unwrap();
    assert_eq!(from_plan.rows, new.rows);

    let obs = midq::obs::Obs::default();
    let observed = db.run_sql_observed(sql, ReoptMode::Full, &obs).unwrap();
    assert_eq!(observed.rows, new.rows);

    let part = db.run_partitioned(&plan, ReoptMode::Off, 2).unwrap();
    assert_eq!(part.rows, new.rows);
}
