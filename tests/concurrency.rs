//! Integration: the concurrent runtime is deterministic and brokered.
//!
//! The same mix of TPC-D queries runs serially (one worker) and on a
//! 4-worker pool over an identically loaded database; every query must
//! produce identical result rows, the global memory broker's
//! high-water mark must never exceed its budget, and the pool must
//! actually overlap queries (`max_in_flight > 1`).

use midq::common::EngineConfig;
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, ReoptMode, Workload, WorkloadQuery};

/// Compile-time proof that the shared handles cross threads: the
/// runtime moves the engine into a worker pool and returns outcomes
/// through it.
#[test]
fn shared_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<midq::Database>();
    assert_send_sync::<midq::Engine>();
    assert_send_sync::<midq::QueryOutcome>();
    assert_send_sync::<midq::Runtime>();
    assert_send_sync::<midq::Session>();
    assert_send_sync::<midq::WorkloadReport>();
}

fn load_db() -> Database {
    let db = Database::new(EngineConfig::default()).unwrap();
    db.load_tpcd(&TpcdConfig {
        scale: 0.002,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .unwrap();
    db
}

/// Canonical row rendering: floats rounded so different (equally
/// correct) summation orders across plans compare equal; sorted so
/// plans that differ only in output order compare equal.
fn sorted_rows(outcome: &midq::QueryOutcome) -> Vec<String> {
    let mut rows: Vec<String> = outcome
        .rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    midq::common::Value::Float(f) => format!("{f:.3}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

/// ≥64 queries: the seven paper queries, repeated, alternating modes.
fn tpcd_mix() -> Vec<WorkloadQuery> {
    let all = queries::all();
    let mut out = Vec::new();
    for round in 0..10 {
        for (name, plan) in &all {
            let mode = if round % 2 == 0 {
                ReoptMode::Full
            } else {
                ReoptMode::Off
            };
            out.push(WorkloadQuery::plan(format!("{name}.r{round}"), plan.clone()).with_mode(mode));
        }
    }
    assert!(out.len() >= 64);
    out
}

#[test]
fn concurrent_execution_is_deterministic_and_brokered() {
    // Two identically seeded databases: the serial baseline must not
    // share caches or healed statistics with the concurrent run.
    let serial_db = load_db();
    let concurrent_db = load_db();

    let mut serial = Workload::new(1);
    serial.queries = tpcd_mix();
    let mut concurrent = Workload::new(4);
    concurrent.queries = tpcd_mix();

    let base = serial_db.run_concurrent(&serial);
    let report = concurrent_db.run_concurrent(&concurrent);

    assert_eq!(base.results.len(), report.results.len());
    for (a, b) in base.results.iter().zip(&report.results) {
        let oa = a
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("serial {}: {e}", a.label));
        let ob = b
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("concurrent {}: {e}", b.label));
        assert_eq!(
            sorted_rows(oa),
            sorted_rows(ob),
            "{} diverged between serial and 4-worker execution",
            a.label
        );
    }

    // The broker never over-granted its global budget...
    assert!(report.broker_high_water <= report.global_budget_bytes);
    assert!(base.broker_high_water <= base.global_budget_bytes);
    // ...and the pool genuinely overlapped queries.
    assert!(
        report.max_in_flight > 1,
        "4-worker pool never had two queries in flight"
    );
    assert_eq!(base.max_in_flight, 1);
    // Parallel simulated makespan cannot exceed the serial sum.
    assert!(report.makespan_sim_ms <= report.serial_sim_ms + 1e-9);
}
