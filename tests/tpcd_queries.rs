//! Integration: the seven paper queries run end-to-end on a small
//! TPC-D instance, and every re-optimization mode produces identical
//! results.

use midq::common::EngineConfig;
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, ReoptMode};

fn load_db(scale: f64, stale: f64) -> Database {
    let db = Database::new(EngineConfig::default()).unwrap();
    db.load_tpcd(&TpcdConfig {
        scale,
        analyze_after_fraction: stale,
        ..TpcdConfig::default()
    })
    .unwrap();
    db
}

/// Canonical row rendering: floats rounded so different (equally
/// correct) summation orders across plans compare equal.
fn sorted_rows(outcome: &midq::QueryOutcome) -> Vec<String> {
    let mut rows: Vec<String> = outcome
        .rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    midq::common::Value::Float(f) => format!("{f:.3}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn all_queries_execute_and_agree_across_modes() {
    let db = load_db(0.002, 1.0);
    for (name, q) in queries::all() {
        let off = db
            .query_plan(&q)
            .mode(ReoptMode::Off)
            .run()
            .unwrap_or_else(|e| panic!("{name} Off: {e}"));
        assert!(
            !off.rows.is_empty() || name == "Q7",
            "{name} returned nothing"
        );
        for mode in [ReoptMode::MemoryOnly, ReoptMode::PlanOnly, ReoptMode::Full] {
            let other = db
                .query_plan(&q)
                .mode(mode)
                .run()
                .unwrap_or_else(|e| panic!("{name} {mode}: {e}"));
            // Sort/limit queries are order-sensitive only in their sort
            // keys; compare unordered multisets for robustness (ties
            // may order differently after a plan switch).
            assert_eq!(
                sorted_rows(&off),
                sorted_rows(&other),
                "{name} under {mode} diverged"
            );
        }
    }
}

#[test]
fn q1_simple_query_overhead_is_bounded() {
    let db = load_db(0.002, 1.0);
    let q = queries::q1();
    let off = db.query_plan(&q).mode(ReoptMode::Off).run().unwrap();
    let full = db.query_plan(&q).mode(ReoptMode::Full).run().unwrap();
    assert_eq!(full.plan_switches, 0, "simple queries never re-optimize");
    let mu = db.engine().config().mu;
    assert!(
        full.time_ms <= off.time_ms * (1.0 + mu + 0.05),
        "Q1 overhead: full {:.1}ms vs off {:.1}ms",
        full.time_ms,
        off.time_ms
    );
}

#[test]
fn stale_catalog_complex_queries_still_correct() {
    let db = load_db(0.002, 0.3);
    for (name, q) in queries::all() {
        let off = db
            .query_plan(&q)
            .mode(ReoptMode::Off)
            .run()
            .unwrap_or_else(|e| panic!("{name} Off: {e}"));
        let full = db
            .query_plan(&q)
            .mode(ReoptMode::Full)
            .run()
            .unwrap_or_else(|e| panic!("{name} Full: {e}"));
        assert_eq!(
            sorted_rows(&off),
            sorted_rows(&full),
            "{name} diverged under stale stats"
        );
    }
}

#[test]
fn q1_aggregate_values_are_sane() {
    let db = load_db(0.002, 1.0);
    let out = db
        .query_plan(&queries::q1())
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    // Groups: returnflag × linestatus combinations (≤ 6 feasible).
    assert!(
        out.rows.len() >= 3 && out.rows.len() <= 6,
        "{}",
        out.rows.len()
    );
    for row in &out.rows {
        // sum_qty ≥ avg_qty ≥ 1; count ≥ 1.
        let count = row.get(7).as_i64().unwrap();
        assert!(count >= 1);
        let avg_qty = match row.get(4) {
            midq::common::Value::Float(f) => *f,
            other => panic!("avg type {other:?}"),
        };
        assert!((1.0..=50.0).contains(&avg_qty), "avg_qty {avg_qty}");
    }
}

#[test]
fn sql_and_builder_q3_agree() {
    let db = load_db(0.002, 1.0);
    let from_sql = db
        .query(queries::q3_sql())
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    let from_builder = db
        .query_plan(&queries::q3())
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    // Same shape; Q3's projection order differs (SQL projects group
    // columns first), so compare cardinality and revenue multiset.
    assert_eq!(from_sql.rows.len(), from_builder.rows.len());
}

#[test]
fn sql_variants_match_builders() {
    let db = load_db(0.002, 1.0);
    for (name, sql, builder) in [
        ("Q1", queries::q1_sql(), queries::q1()),
        ("Q5", queries::q5_sql(), queries::q5()),
        ("Q6", queries::q6_sql(), queries::q6()),
        ("Q10", queries::q10_sql(), queries::q10()),
    ] {
        let from_sql = db.query(sql).mode(ReoptMode::Off).run().unwrap();
        let from_builder = db.query_plan(&builder).mode(ReoptMode::Off).run().unwrap();
        assert_eq!(
            sorted_rows(&from_sql),
            sorted_rows(&from_builder),
            "{name}: SQL and builder plans diverged"
        );
    }
}
