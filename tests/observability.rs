//! Integration: the observability subsystem end-to-end.
//!
//! * A skewed-stats Q10 run traces a collector checkpoint whose
//!   inaccuracy factor crosses the re-optimization threshold, followed
//!   by exactly one accepted re-optimization event.
//! * Stable metrics snapshots are byte-identical across worker counts
//!   for chaos-style seeded workloads.
//! * A disabled sink adds zero simulated cost (well under the 2%
//!   budget in DESIGN.md).
//! * EXPLAIN ANALYZE renders per-operator est vs actual rows with
//!   collector markers.

use std::sync::Arc;

use midq::common::{EngineConfig, FaultInjector, FaultProfile};
use midq::obs::{json_f64, json_str, json_u64, JsonlSink, MetricsRegistry, Obs};
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, ReoptMode, Workload, WorkloadQuery};

/// A TPC-D instance whose statistics are both stale (ANALYZE ran early
/// in the load) and skewed (zipfian non-key attributes), so the
/// optimizer's cardinality estimates are badly wrong for Q10.
fn skewed_db() -> Database {
    let db = Database::new(EngineConfig::default()).unwrap();
    db.load_tpcd(&TpcdConfig {
        scale: 0.005,
        analyze_after_fraction: 0.2,
        zipf_z: Some(1.1),
        ..TpcdConfig::default()
    })
    .unwrap();
    db
}

#[test]
fn q10_skewed_trace_collector_then_one_reopt() {
    let db = skewed_db();
    let sink = Arc::new(JsonlSink::new());
    let metrics = MetricsRegistry::new();
    let obs = Obs::none()
        .with_sink(sink.clone())
        .with_metrics(metrics.clone())
        .for_job(1, "Q10");

    let out = db
        .query_plan(&queries::q10())
        .mode(ReoptMode::Full)
        .observed(&obs)
        .run()
        .unwrap();
    assert_eq!(out.plan_switches, 1, "scenario must trigger one switch");

    let lines = sink.lines();
    assert!(!lines.is_empty(), "sink captured no events");

    // A collector checkpoint whose inaccuracy factor crosses the
    // re-optimization threshold (1 + θ2)...
    let theta2 = db.engine().config().theta2;
    let crossing_seq = lines
        .iter()
        .filter(|l| json_str(l, "event").as_deref() == Some("collector"))
        .filter(|l| json_f64(l, "inaccuracy").unwrap_or(0.0) > 1.0 + theta2)
        .filter_map(|l| json_u64(l, "seq"))
        .min()
        .expect("no collector checkpoint crossed the re-opt threshold");

    // ...followed by exactly one accepted re-optimization event.
    let accepts: Vec<u64> = lines
        .iter()
        .filter(|l| json_str(l, "event").as_deref() == Some("reopt"))
        .filter(|l| json_str(l, "verdict").as_deref() == Some("accept"))
        .filter_map(|l| json_u64(l, "seq"))
        .collect();
    assert_eq!(accepts.len(), 1, "expected exactly one accepted re-opt");
    assert!(
        crossing_seq < accepts[0],
        "collector checkpoint (seq {crossing_seq}) must precede the \
         accepted re-opt (seq {})",
        accepts[0]
    );

    // The accepted event carries both cost estimates.
    let accept_line = lines
        .iter()
        .find(|l| json_str(l, "verdict").as_deref() == Some("accept"))
        .unwrap();
    let t_new = json_f64(accept_line, "t_new_ms").unwrap();
    let t_cur = json_f64(accept_line, "t_cur_ms").unwrap();
    assert!(t_new > 0.0 && t_cur > t_new, "accept: {t_new} !< {t_cur}");

    // Every trace line carries the span identity, and the lifecycle
    // events frame the trace.
    for l in &lines {
        assert_eq!(json_u64(l, "job"), Some(1), "bad span in {l}");
        assert_eq!(json_str(l, "label").as_deref(), Some("Q10"));
    }
    let events: Vec<String> = lines.iter().filter_map(|l| json_str(l, "event")).collect();
    assert_eq!(events.first().map(String::as_str), Some("query_start"));
    assert_eq!(events.last().map(String::as_str), Some("query_end"));
    assert!(events.iter().any(|e| e == "segment_end"));
    assert!(events.iter().any(|e| e == "cleanup"));

    // The metrics registry folded the same story.
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("midq_plan_switches_total"), 1);
    assert_eq!(
        snap.counter_with("midq_reopt_decisions_total", ("verdict", "accept")),
        1
    );
    assert_eq!(
        snap.counter_with("midq_queries_total", ("outcome", "ok")),
        1
    );
    assert!(snap.counter("midq_collector_reports_total") >= 1);
    assert!(snap
        .stable_text()
        .contains("midq_estimation_inaccuracy_count"));
}

/// The chaos-style workload: paper queries with seeded fault
/// schedules, alternating re-optimization modes.
fn seeded_workload(workers: usize, seed: u64) -> Workload {
    let mut wl = Workload::new(workers);
    for (qi, (name, plan)) in queries::all().into_iter().enumerate() {
        let mode = if qi % 2 == 0 {
            ReoptMode::Full
        } else {
            ReoptMode::Off
        };
        let inj = FaultInjector::from_seed(
            seed.wrapping_mul(1000).wrapping_add(qi as u64),
            &FaultProfile::default(),
        );
        wl.queries.push(
            WorkloadQuery::plan(name, plan)
                .with_mode(mode)
                .with_faults(inj),
        );
    }
    wl.obs = Some(Obs::none().with_metrics(MetricsRegistry::new()));
    wl
}

#[test]
fn stable_metrics_identical_across_worker_counts() {
    for seed in [7_u64, 42] {
        // Identically loaded databases: runs must not share healed
        // statistics or buffer caches.
        let db1 = Database::new(EngineConfig::default()).unwrap();
        let db4 = Database::new(EngineConfig::default()).unwrap();
        for db in [&db1, &db4] {
            db.load_tpcd(&TpcdConfig {
                scale: 0.002,
                analyze_after_fraction: 0.5,
                ..TpcdConfig::default()
            })
            .unwrap();
        }

        let serial = db1.run_concurrent(&seeded_workload(1, seed));
        let parallel = db4.run_concurrent(&seeded_workload(4, seed));

        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert!(!a.metrics.is_empty(), "{}: no metrics captured", a.label);
            assert_eq!(
                a.metrics.stable_text(),
                b.metrics.stable_text(),
                "seed {seed} {}: stable metrics diverged between 1 and 4 workers",
                a.label
            );
        }
    }
}

#[test]
fn workload_report_lines_carry_metrics() {
    let db = Database::new(EngineConfig::default()).unwrap();
    db.load_tpcd(&TpcdConfig {
        scale: 0.002,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .unwrap();
    let report = db.run_concurrent(&seeded_workload(2, 42));
    let summary = report.summary();
    for r in &report.results {
        assert!(summary.contains(&r.label), "{} missing", r.label);
    }
    assert!(summary.contains("retries="));
    assert!(summary.contains("reopts="));
}

#[test]
fn disabled_sink_adds_no_simulated_cost() {
    // Two identically loaded databases; one run observed (ring sink +
    // metrics), one bare. Observability never charges the simulated
    // clock, so the acceptance bound (< 2% simulated-cost overhead)
    // holds exactly.
    let observed_db = skewed_db();
    let bare_db = skewed_db();
    let obs = Obs::none()
        .with_sink(Arc::new(midq::obs::RingSink::new(4096)))
        .with_metrics(MetricsRegistry::new())
        .for_job(1, "Q10");

    let observed = observed_db
        .query_plan(&queries::q10())
        .mode(ReoptMode::Full)
        .observed(&obs)
        .run()
        .unwrap();
    let bare = bare_db
        .query_plan(&queries::q10())
        .mode(ReoptMode::Full)
        .run()
        .unwrap();

    assert!(
        (observed.time_ms - bare.time_ms).abs() <= bare.time_ms * 0.02,
        "observed {:.3}ms vs bare {:.3}ms exceeds the 2% budget",
        observed.time_ms,
        bare.time_ms
    );
}

#[test]
fn explain_analyze_renders_est_vs_actual() {
    let db = skewed_db();
    let obs = Obs::none()
        .with_metrics(MetricsRegistry::new())
        .for_job(1, "Q10");
    let out = db
        .query_plan(&queries::q10())
        .mode(ReoptMode::Full)
        .observed(&obs)
        .run()
        .unwrap();
    let text = out.explain_analyze();
    assert!(text.contains("est rows="), "no estimates:\n{text}");
    assert!(text.contains("actual rows="), "no actuals:\n{text}");
    assert!(
        text.contains("collector (re-opt point)"),
        "no collector markers:\n{text}"
    );
    assert!(
        text.contains("materialized by plan switch"),
        "no switch marker:\n{text}"
    );
    assert!(text.contains("re-optimization events:"), "{text}");

    // EXPLAIN (without ANALYZE) renders estimates only.
    let plain = midq::explain_plan(&out.final_plan);
    assert!(plain.contains("est rows="));
    assert!(!plain.contains("actual rows="));
}
