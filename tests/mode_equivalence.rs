//! The golden invariant of Dynamic Re-Optimization: whatever the
//! controller does — collect, re-allocate, switch plans mid-query —
//! the answer never changes. Randomized over data, query shape, knobs
//! and memory budgets.

use midq::common::{DataType, EngineConfig, Row, Value};
use midq::expr::{cmp, col, lit, CmpOp};
use midq::plan::{AggExpr, AggFunc};
use midq::{Database, LogicalPlan, ReoptMode};
use proptest::prelude::*;

fn build_db(
    fact: &[(i64, i64, i64)],
    d1: &[(i64, i64)],
    d2: &[(i64, i64)],
    budget_pages: usize,
    stale_extra: &[(i64, i64, i64)],
) -> Database {
    build_db_cfg(fact, d1, d2, budget_pages, stale_extra, false)
}

fn build_db_cfg(
    fact: &[(i64, i64, i64)],
    d1: &[(i64, i64)],
    d2: &[(i64, i64)],
    budget_pages: usize,
    stale_extra: &[(i64, i64, i64)],
    stats_feedback: bool,
) -> Database {
    let cfg = EngineConfig {
        buffer_pool_pages: 16,
        query_memory_bytes: budget_pages * 4096,
        stats_feedback,
        ..EngineConfig::default()
    };
    let db = Database::new(cfg).unwrap();
    db.create_table(
        "fact",
        vec![
            ("fk1", DataType::Int),
            ("fk2", DataType::Int),
            ("v", DataType::Int),
        ],
    )
    .unwrap();
    db.create_table("d1", vec![("pk", DataType::Int), ("x", DataType::Int)])
        .unwrap();
    db.create_table("d2", vec![("pk", DataType::Int), ("y", DataType::Int)])
        .unwrap();
    for &(a, b, v) in fact {
        db.insert(
            "fact",
            Row::new(vec![Value::Int(a), Value::Int(b), Value::Int(v)]),
        )
        .unwrap();
    }
    for &(p, x) in d1 {
        db.insert("d1", Row::new(vec![Value::Int(p), Value::Int(x)]))
            .unwrap();
    }
    for &(p, y) in d2 {
        db.insert("d2", Row::new(vec![Value::Int(p), Value::Int(y)]))
            .unwrap();
    }
    for t in ["fact", "d1", "d2"] {
        db.analyze(t).unwrap();
    }
    db.create_index("d1", "pk").unwrap();
    // Post-ANALYZE inserts: the staleness that makes the controller act.
    for &(a, b, v) in stale_extra {
        db.insert(
            "fact",
            Row::new(vec![Value::Int(a), Value::Int(b), Value::Int(v)]),
        )
        .unwrap();
    }
    db
}

fn canon(outcome: &midq::QueryOutcome) -> Vec<String> {
    let mut rows: Vec<String> = outcome
        .rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    Value::Float(f) => format!("{f:.6}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn all_modes_agree(
        fact in prop::collection::vec((0i64..15, 0i64..10, 0i64..30), 10..250),
        d1 in prop::collection::vec((0i64..15, 0i64..8), 1..30),
        d2 in prop::collection::vec((0i64..10, 0i64..8), 1..25),
        stale in prop::collection::vec((0i64..15, 0i64..10, 0i64..5), 0..150),
        vmax in 1i64..30,
        budget_pages in 8usize..40,
        grouped in any::<bool>(),
    ) {
        let db = build_db(&fact, &d1, &d2, budget_pages, &stale);
        let mut q = LogicalPlan::scan_filtered(
            "fact",
            cmp(CmpOp::Lt, col("fact.v"), lit(vmax)),
        )
        .join(LogicalPlan::scan("d1"), vec![("fact.fk1", "d1.pk")])
        .join(LogicalPlan::scan("d2"), vec![("fact.fk2", "d2.pk")]);
        if grouped {
            q = q.aggregate(
                vec!["d1.x"],
                vec![
                    AggExpr { func: AggFunc::Count, arg: None, name: "n".into() },
                    AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(col("fact.v")),
                        name: "sv".into(),
                    },
                ],
            );
        }
        let baseline = canon(&db.query_plan(&q).mode(ReoptMode::Off).run().unwrap());
        for mode in [ReoptMode::MemoryOnly, ReoptMode::PlanOnly, ReoptMode::Full] {
            let outcome = db.query_plan(&q).mode(mode).run().unwrap();
            prop_assert_eq!(
                &baseline,
                &canon(&outcome),
                "mode {} diverged (switches={}, reallocs={})",
                mode,
                outcome.plan_switches,
                outcome.memory_reallocs
            );
        }

        // Statistics feedback mutates the catalog between runs but must
        // never change any answer, no matter how often the query repeats
        // against the progressively healed statistics.
        let fb = build_db_cfg(&fact, &d1, &d2, budget_pages, &stale, true);
        for repeat in 0..3 {
            let outcome = fb.query_plan(&q).mode(ReoptMode::Full).run().unwrap();
            prop_assert_eq!(
                &baseline,
                &canon(&outcome),
                "feedback run {} diverged (switches={})",
                repeat,
                outcome.plan_switches
            );
        }
    }
}
