//! Cross-restart durability through the `Database::open`/`save` API:
//! a saved-and-reopened database answers every query byte-identically
//! to one that never restarted, the plan cache and feedback store come
//! back warm, a crash at any save point never loses the previous good
//! snapshot, and corrupted snapshots are refused with a typed error.

use midq::common::fault::{FaultInjector, FaultKind, FaultSite, FaultSpec};
use midq::common::{EngineConfig, MqError};
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, QueryOutcome, ReoptMode};

fn cfg() -> EngineConfig {
    EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        stats_feedback: false,
        switch_margin: 1.0,
        plan_cache_enabled: true,
        ..EngineConfig::default()
    }
}

fn load_tpcd(db: &Database) {
    db.load_tpcd(&TpcdConfig {
        scale: 0.005,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .unwrap();
}

fn tmp_file(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("midq_persistence_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{}.mqsnap", std::process::id()))
}

/// Exact (order-preserving) row rendering: restored databases must be
/// byte-identical, not just set-equal.
fn exact_rows(outcome: &QueryOutcome) -> Vec<String> {
    outcome.rows.iter().map(|r| r.to_string()).collect()
}

/// One TPC-D join family parameterized by its two literals.
fn family(qty: i64, price: i64) -> String {
    format!(
        "SELECT o_orderstatus, count(*) AS n, max(o_totalprice) AS top \
         FROM orders, lineitem \
         WHERE o_orderkey = l_orderkey AND l_quantity < {qty} \
         AND o_totalprice > {price} \
         GROUP BY o_orderstatus ORDER BY o_orderstatus"
    )
}

#[test]
fn reopened_database_is_byte_identical_to_oracle() {
    let path = tmp_file("round_trip");
    let _ = std::fs::remove_file(&path);

    let oracle = Database::new(cfg()).unwrap();
    load_tpcd(&oracle);

    let db = Database::open_with(cfg(), &path).unwrap();
    load_tpcd(&db);
    let report = db.save().unwrap();
    assert!(report.tables >= 4, "TPC-D tables missing: {report:?}");
    assert!(report.rows > 0);

    let reopened = Database::open_with(cfg(), &path).unwrap();

    // Every tier-1 TPC-D query, serial and partitioned, off SQL text
    // and off pre-built plans: byte-identical to the never-restarted
    // oracle.
    for (name, plan) in queries::all() {
        let want = exact_rows(&oracle.query_plan(&plan).mode(ReoptMode::Off).run().unwrap());
        let got = exact_rows(
            &reopened
                .query_plan(&plan)
                .mode(ReoptMode::Off)
                .run()
                .unwrap(),
        );
        assert_eq!(got, want, "{name} diverged after reopen");
    }
    for sql in [
        queries::q1_sql(),
        queries::q3_sql(),
        queries::q6_sql(),
        queries::q10_sql(),
    ] {
        let want = exact_rows(&oracle.query(sql).mode(ReoptMode::Full).run().unwrap());
        let got = exact_rows(&reopened.query(sql).mode(ReoptMode::Full).run().unwrap());
        assert_eq!(got, want, "{sql} diverged after reopen");
    }

    // Catalog shape round-tripped exactly: same data versions, stats.
    for name in oracle.engine().catalog().table_names() {
        let a = oracle.engine().catalog().table(&name).unwrap();
        let b = reopened.engine().catalog().table(&name).unwrap();
        assert_eq!(a.data_version, b.data_version, "{name}");
        assert_eq!(
            a.stats.as_ref().map(|s| s.rows),
            b.stats.as_ref().map(|s| s.rows),
            "{name}"
        );
        assert_eq!(a.indexes.len(), b.indexes.len(), "{name}");
    }
    // Reopened engine starts clean — no leaked temps or orphan pages.
    let audit = reopened.engine().audit();
    assert!(audit.is_clean(), "{audit:?}");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn reopened_plan_cache_is_warm_with_zero_opt_work() {
    let path = tmp_file("warm_cache");
    let _ = std::fs::remove_file(&path);

    let db = Database::open_with(cfg(), &path).unwrap();
    load_tpcd(&db);
    // Admit the family template (miss + insert), then prove it's warm.
    db.query(&family(25, 1000))
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    let warm = db
        .query(&family(30, 1500))
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    assert_eq!(warm.cost.opt_work, 0, "template not warm before save");
    db.save().unwrap();

    let reopened = Database::open_with(cfg(), &path).unwrap();
    assert_eq!(
        reopened.plan_cache_stats().entries,
        1,
        "template not restored"
    );
    // The very first run of the family after reopen is a hit: zero
    // optimizer work charged to the query.
    let first = reopened
        .query(&family(35, 2000))
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    assert_eq!(
        first.cost.opt_work, 0,
        "first warm run re-enumerated after reopen"
    );
    let s = reopened.plan_cache_stats();
    assert_eq!(s.hits, 1, "{s:?}");
    assert_eq!(s.misses, 0, "{s:?}");

    // And the restored template still answers correctly.
    let oracle = Database::new(cfg()).unwrap();
    load_tpcd(&oracle);
    assert_eq!(
        exact_rows(&first),
        exact_rows(
            &oracle
                .query(&family(35, 2000))
                .mode(ReoptMode::Off)
                .run()
                .unwrap()
        )
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn feedback_corrections_survive_restart() {
    let path = tmp_file("feedback");
    let _ = std::fs::remove_file(&path);

    let db = Database::open_with(cfg(), &path).unwrap();
    load_tpcd(&db);
    let v = db.engine().catalog().data_version("lineitem").unwrap();
    db.engine()
        .feedback()
        .record(0xFEED, 321.5, vec![("lineitem".to_string(), v)]);
    db.engine().feedback().note_applied_for(0xFEED);
    let report = db.save().unwrap();
    assert_eq!(report.feedback_entries, 1);

    let reopened = Database::open_with(cfg(), &path).unwrap();
    let entry = reopened
        .engine()
        .feedback()
        .get(0xFEED)
        .expect("correction lost across restart");
    assert_eq!(entry.rows, 321.5);
    assert_eq!(entry.deps, vec![("lineitem".to_string(), v)]);
    // The staleness signal (applied counters) round-trips too.
    assert_eq!(reopened.engine().feedback().applied(), 1);
    assert_eq!(reopened.engine().feedback().applied_sum(&[0xFEED]), 1);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn crash_at_any_save_point_preserves_previous_snapshot() {
    let path = tmp_file("crash_save");
    let _ = std::fs::remove_file(&path);

    let db = Database::open_with(cfg(), &path).unwrap();
    load_tpcd(&db);
    db.query(&family(25, 1000))
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    db.save().unwrap();
    let good = std::fs::read(&path).unwrap();

    // Grow the database so the next save writes different bytes, then
    // count the save points one full save passes through.
    db.execute_sql("CREATE TABLE extra (k INT, v FLOAT)", ReoptMode::Off)
        .unwrap();
    db.execute_sql(
        "INSERT INTO extra VALUES (1, 1.5), (2, 2.5), (3, 3.5)",
        ReoptMode::Off,
    )
    .unwrap();
    let counter = FaultInjector::new(vec![], None);
    {
        let _scope = counter.enter_scope();
        db.save().unwrap();
    }
    let points = counter.ops_at(FaultSite::SegmentBoundary);
    assert!(
        points >= 3,
        "expected per-section save points, got {points}"
    );
    std::fs::write(&path, &good).unwrap();

    for at in 1..=points {
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::SegmentBoundary,
                kind: FaultKind::Crash,
                at,
            }],
            None,
        );
        let err = {
            let _scope = inj.enter_scope();
            db.save().unwrap_err()
        };
        assert!(matches!(err, MqError::Crash(_)), "kill point {at}: {err}");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good,
            "kill point {at} damaged the published snapshot"
        );
        // The survivor still restores and audits clean.
        let back = Database::open_with(cfg(), &path).unwrap();
        assert!(back.engine().audit().is_clean(), "kill point {at}");
        assert!(!back.engine().catalog().table_names().is_empty());
    }

    // With no fault armed the save completes and includes the growth.
    db.save().unwrap();
    let reopened = Database::open_with(cfg(), &path).unwrap();
    let out = reopened
        .query("SELECT count(*) AS n FROM extra")
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    assert_eq!(out.rows[0].get(0).to_string(), "3");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_snapshot_is_rejected_with_typed_error() {
    let path = tmp_file("corrupt");
    let _ = std::fs::remove_file(&path);

    let db = Database::open_with(cfg(), &path).unwrap();
    db.execute_sql("CREATE TABLE t (k INT)", ReoptMode::Off)
        .unwrap();
    db.execute_sql("INSERT INTO t VALUES (1), (2)", ReoptMode::Off)
        .unwrap();
    db.save().unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let err = Database::open_with(cfg(), &path)
        .err()
        .expect("corrupt snapshot accepted");
    assert_eq!(err.kind(), "storage");
    assert!(err.to_string().contains("snapshot corrupt"), "{err}");

    // Truncation is refused the same way.
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    let err = Database::open_with(cfg(), &path)
        .err()
        .expect("truncated snapshot accepted");
    assert_eq!(err.kind(), "storage");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn save_requires_a_path_and_in_memory_db_says_so() {
    let db = Database::new(cfg()).unwrap();
    let err = db.save().unwrap_err();
    assert!(matches!(err, MqError::InvalidConfig(_)), "{err}");
    // save_as still works without an open path.
    let path = tmp_file("save_as");
    let _ = std::fs::remove_file(&path);
    db.execute_sql("CREATE TABLE t (k INT)", ReoptMode::Off)
        .unwrap();
    db.save_as(&path).unwrap();
    assert!(path.exists());
    let _ = std::fs::remove_file(&path);
}
