//! Integration: intra-query partitioned execution (`mq-par`).
//!
//! The partitioned driver routes rows through a fixed set of logical
//! buckets, so its results — and every Stable metric — must be
//! byte-identical for any partition count; the partition count only
//! changes the simulated elapsed time (work overlaps) and the skew
//! accounting. These tests pin all three properties on the paper's
//! query set.

use midq::common::EngineConfig;
use midq::obs::{json_str, JsonlSink, MetricsRegistry, Obs};
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, ReoptMode, Workload, WorkloadQuery};

fn load_db(scale: f64, stale: f64) -> Database {
    load_db_cfg(EngineConfig::default(), scale, stale, None)
}

fn load_db_cfg(cfg: EngineConfig, scale: f64, stale: f64, zipf_z: Option<f64>) -> Database {
    let db = Database::new(cfg).unwrap();
    db.load_tpcd(&TpcdConfig {
        scale,
        zipf_z,
        analyze_after_fraction: stale,
        ..TpcdConfig::default()
    })
    .unwrap();
    db
}

/// Rows rendered in their *produced* order — partition-count
/// invariance is a byte-level claim, not a multiset one.
fn exact_rows(outcome: &midq::QueryOutcome) -> Vec<String> {
    outcome.rows.iter().map(|r| r.to_string()).collect()
}

/// Canonical multiset rendering for comparing against serial runs
/// (sort tie order may differ when input arrival order differs).
fn sorted_rows(outcome: &midq::QueryOutcome) -> Vec<String> {
    let mut rows: Vec<String> = outcome
        .rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    midq::common::Value::Float(f) => format!("{f:.3}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

/// ISSUE acceptance: Q1/Q3/Q6/Q10 results and Stable metrics are
/// byte-identical across partitions ∈ {1, 2, 8}, and agree with the
/// serial (non-partitioned) engine as multisets.
#[test]
fn results_and_stable_metrics_identical_across_partition_counts() {
    for (name, q) in [
        ("Q1", queries::q1()),
        ("Q3", queries::q3()),
        ("Q6", queries::q6()),
        ("Q10", queries::q10()),
    ] {
        let serial = load_db(0.002, 1.0)
            .query_plan(&q)
            .mode(ReoptMode::Off)
            .run()
            .unwrap_or_else(|e| panic!("{name} serial: {e}"));

        let mut baseline: Option<(Vec<String>, String)> = None;
        for partitions in [1usize, 2, 8] {
            // Fresh database per run: a warm buffer pool would change
            // the I/O counters and hide (or fake) a divergence.
            let db = load_db(0.002, 1.0);
            let metrics = MetricsRegistry::new();
            let obs = Obs::none().with_metrics(metrics.clone()).for_job(1, name);
            let out = db
                .query_plan(&q)
                .mode(ReoptMode::Off)
                .partitions(partitions)
                .observed(&obs)
                .run()
                .unwrap_or_else(|e| panic!("{name} P={partitions}: {e}"));

            let par = out
                .par
                .as_ref()
                .expect("partitioned outcome carries report");
            assert_eq!(par.partitions, partitions, "{name}");
            assert!(
                !par.exchanges.is_empty(),
                "{name} P={partitions}: no exchange stages recorded"
            );

            assert_eq!(
                sorted_rows(&serial),
                sorted_rows(&out),
                "{name} P={partitions} diverged from serial execution"
            );

            let fingerprint = (exact_rows(&out), metrics.snapshot().stable_text());
            match &baseline {
                None => baseline = Some(fingerprint),
                Some((rows, stable)) => {
                    assert_eq!(
                        rows, &fingerprint.0,
                        "{name} P={partitions}: rows not byte-identical"
                    );
                    assert_eq!(
                        stable, &fingerprint.1,
                        "{name} P={partitions}: stable metrics diverged"
                    );
                }
            }
        }
    }
}

/// Collector reports still flow under partitioned execution: the
/// per-bucket parts are merged at the exchange barrier and delivered
/// once per collection site, so Full mode sees observed cardinalities.
#[test]
fn collector_reports_survive_the_exchange_barrier() {
    let q = queries::q10();
    let serial = load_db(0.002, 0.5)
        .query_plan(&q)
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    for partitions in [1usize, 4] {
        let db = load_db(0.002, 0.5);
        let out = db
            .query_plan(&q)
            .mode(ReoptMode::Full)
            .partitions(partitions)
            .run()
            .unwrap_or_else(|e| panic!("Q10 Full P={partitions}: {e}"));
        assert!(
            out.collector_reports > 0,
            "P={partitions}: no collector reports crossed the barrier"
        );
        assert_eq!(
            out.plan_switches, 0,
            "P={partitions}: plan switches are suppressed under par"
        );
        assert_eq!(
            sorted_rows(&serial),
            sorted_rows(&out),
            "Q10 Full P={partitions} diverged"
        );
    }
}

/// ISSUE acceptance: at partitions=4, Q10's simulated elapsed time is
/// at least 2x better than partitions=1 while io and cpu *totals* stay
/// within 10% (the same buckets run either way; only overlap changes).
#[test]
fn q10_four_partitions_halve_elapsed_without_inflating_work() {
    let q = queries::q10();
    let p1 = load_db(0.002, 1.0)
        .query_plan(&q)
        .mode(ReoptMode::Off)
        .partitions(1)
        .run()
        .unwrap();
    let p4 = load_db(0.002, 1.0)
        .query_plan(&q)
        .mode(ReoptMode::Off)
        .partitions(4)
        .run()
        .unwrap();

    assert!(
        p4.time_ms * 2.0 <= p1.time_ms,
        "Q10 speedup: P=4 {:.1}ms vs P=1 {:.1}ms (need >= 2x)",
        p4.time_ms,
        p1.time_ms
    );

    let io1 = p1.cost.pages_read + p1.cost.pages_written;
    let io4 = p4.cost.pages_read + p4.cost.pages_written;
    let within = |a: u64, b: u64| {
        let (a, b) = (a as f64, b as f64);
        (a - b).abs() <= 0.10 * a.max(b)
    };
    assert!(within(io1, io4), "io totals drifted: {io1} vs {io4}");
    assert!(
        within(p1.cost.cpu_ops, p4.cost.cpu_ops),
        "cpu totals drifted: {} vs {}",
        p1.cost.cpu_ops,
        p4.cost.cpu_ops
    );
    assert!(
        p4.par.as_ref().unwrap().saved_ms > 0.0,
        "P=4 recorded no parallel saving"
    );
}

/// ISSUE acceptance: on Zipf-skewed data the repartition exchange
/// detects the hot-bucket imbalance (max/mean above theta), emits a
/// skew verdict, and the greedy re-balance beats the static
/// assignment — same rows, less simulated elapsed time wasted on the
/// hottest worker.
#[test]
fn skew_verdict_fires_and_rebalance_beats_static() {
    let q = queries::q10();
    let theta = 1.15;
    let rebalanced_cfg = EngineConfig {
        par_skew_theta: theta,
        ..EngineConfig::default()
    };
    // "Static" = the same engine with the verdict effectively disabled.
    let static_cfg = EngineConfig {
        par_skew_theta: 1e18,
        ..EngineConfig::default()
    };

    let sink = std::sync::Arc::new(JsonlSink::new());
    let obs = Obs::none().with_sink(sink.clone()).for_job(1, "Q10-skew");
    let rebalanced = load_db_cfg(rebalanced_cfg, 0.002, 1.0, Some(1.0))
        .query_plan(&q)
        .mode(ReoptMode::Off)
        .partitions(4)
        .observed(&obs)
        .run()
        .unwrap();
    let stat = load_db_cfg(static_cfg, 0.002, 1.0, Some(1.0))
        .query_plan(&q)
        .mode(ReoptMode::Off)
        .partitions(4)
        .run()
        .unwrap();

    let par = rebalanced.par.as_ref().unwrap();
    assert!(
        !par.skew.is_empty(),
        "no skew verdict fired on Zipf z=1.0 data at theta={theta}"
    );
    for s in &par.skew {
        assert!(s.ratio > s.theta, "verdict below threshold: {s:?}");
        assert_eq!(s.action, "rebalance");
        assert!(
            s.after_ratio <= s.ratio,
            "re-balance worsened the load ratio: {s:?}"
        );
    }
    assert!(
        stat.par.as_ref().unwrap().skew.is_empty(),
        "static run must not re-balance"
    );

    // The verdict reached the trace, too.
    let verdicts: Vec<String> = sink
        .lines()
        .iter()
        .filter(|l| json_str(l, "event").as_deref() == Some("skew_verdict"))
        .cloned()
        .collect();
    assert!(!verdicts.is_empty(), "no skew_verdict event in trace");
    assert!(
        verdicts
            .iter()
            .all(|l| l.contains("\"action\":\"rebalance\"")),
        "unexpected verdict action: {verdicts:?}"
    );

    // Re-balancing only moves accounting, never rows.
    assert_eq!(sorted_rows(&rebalanced), sorted_rows(&stat));
    // ... and it schedules the hot buckets better than the static map.
    assert!(
        par.saved_ms >= stat.par.as_ref().unwrap().saved_ms,
        "rebalance saved {:.1}ms < static {:.1}ms",
        par.saved_ms,
        stat.par.as_ref().unwrap().saved_ms
    );
    assert!(
        rebalanced.time_ms <= stat.time_ms,
        "rebalanced {:.1}ms slower than static {:.1}ms",
        rebalanced.time_ms,
        stat.time_ms
    );
}

/// EXPLAIN ANALYZE renders the exchange operators with the headline
/// partition counters and per-partition routed row counts.
#[test]
fn explain_analyze_shows_exchange_operators() {
    let db = load_db(0.002, 1.0);
    let out = db
        .query_plan(&queries::q10())
        .mode(ReoptMode::Off)
        .partitions(4)
        .run()
        .unwrap();
    let text = out.explain_analyze();
    assert!(text.contains("partitions: 4"), "{text}");
    assert!(text.contains("exchange (partition boundary)"), "{text}");
    assert!(text.contains("per-partition rows"), "{text}");
}

/// ISSUE satellite: a crash injected at a mid-run exchange barrier
/// under 4-way partitioned execution must leak nothing once recovered —
/// no bucket partials (temp tables or orphaned pages), no stuck pins,
/// and no checkpoint manifest left open. The `CleanupGuard` is
/// deliberately skipped on the crash path, so everything the guard
/// would have freed has to be reabsorbed by `Engine::recover_with`.
#[test]
fn partitioned_crash_at_exchange_barrier_leaks_nothing() {
    use midq::common::{FaultInjector, FaultKind, FaultSite, FaultSpec};
    use midq::reopt::ParSpec;
    use midq::MqError;

    let q = queries::q10();
    let db = load_db(0.002, 1.0);
    let engine = db.engine();

    // Fault-free counting run: the oracle rows plus the number of
    // segment boundaries (exchange-barrier crossings) the partitioned
    // execution passes through.
    let counter = FaultInjector::none();
    let mut env = engine.default_env();
    env.par = Some(ParSpec::new(4));
    env.fault = Some(counter.clone());
    let oracle = engine.run_with(&q, ReoptMode::PlanOnly, env).unwrap();
    let boundaries = counter.ops_at(FaultSite::SegmentBoundary);
    assert!(
        boundaries > 2,
        "Q10 P=4 crossed only {boundaries} boundaries"
    );

    // Crash at a barrier in the middle of the exchange fan.
    let mut env = engine.default_env();
    env.par = Some(ParSpec::new(4));
    env.fault = Some(FaultInjector::new(
        vec![FaultSpec {
            site: FaultSite::SegmentBoundary,
            kind: FaultKind::Crash,
            at: boundaries / 2,
        }],
        None,
    ));
    let query_id = env.query_id;
    let err = engine.run_with(&q, ReoptMode::PlanOnly, env).unwrap_err();
    assert!(matches!(err, MqError::Crash(_)), "expected crash: {err}");

    // Recover on a fresh environment and compare against the oracle.
    let mut env = engine.default_env();
    env.par = Some(ParSpec::new(4));
    let rec = engine.recover_with(query_id, env).unwrap();
    assert_eq!(
        sorted_rows(&oracle),
        sorted_rows(&rec.outcome),
        "recovered rows diverged from the fault-free run"
    );

    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
    assert!(audit.leaked_temp_tables.is_empty(), "{audit}");
    assert_eq!(audit.orphan_pages, 0, "{audit}");
    assert_eq!(audit.pinned_frames, 0, "{audit}");
    assert!(
        engine.manifests().open_queries().is_empty(),
        "manifest left open after recovery"
    );
}

/// The concurrent runtime path: a workload-level partition default
/// admits each query with an atomic group of leases and runs it
/// through the partitioned driver; results match the serial workload.
#[test]
fn workload_partition_default_applies_to_every_query() {
    let db_serial = load_db(0.002, 1.0);
    let db_par = load_db(0.002, 1.0);

    let build = |partitions: Option<usize>| {
        let mut wl = Workload::new(2);
        for (name, plan) in [("Q3", queries::q3()), ("Q6", queries::q6())] {
            wl.queries
                .push(WorkloadQuery::plan(name, plan).with_mode(ReoptMode::Off));
        }
        if let Some(p) = partitions {
            wl = wl.with_partitions(p);
        }
        wl
    };

    let serial = db_serial.run_concurrent(&build(None));
    let par = db_par.run_concurrent(&build(Some(4)));
    assert_eq!(serial.succeeded(), serial.results.len());
    assert_eq!(par.succeeded(), par.results.len());
    for (a, b) in serial.results.iter().zip(&par.results) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.rows(), b.rows(), "{}: row count diverged", a.label);
    }
}
