//! Integration: the normalized-SQL plan cache answers repeated query
//! families correctly — one template per family, literals rebound per
//! run, rows byte-identical to a plan-cache-off oracle, serially and
//! on a 4-worker runtime — writes force exactly one stale
//! re-enumeration, and repeated large estimate errors trigger the
//! adaptive histogram refresh.

use midq::common::{EngineConfig, Row, Value};
use midq::tpcd::TpcdConfig;
use midq::{Database, QueryOutcome, ReoptMode, Workload, WorkloadQuery};

fn load_db(plan_cache: bool) -> Database {
    let db = Database::new(EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        stats_feedback: false,
        switch_margin: 1.0,
        plan_cache_enabled: plan_cache,
        ..EngineConfig::default()
    })
    .unwrap();
    db.load_tpcd(&TpcdConfig {
        scale: 0.008,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .unwrap();
    db
}

/// Canonical row rendering (repo idiom): floats rounded so different
/// (equally correct) summation orders across plans compare equal.
fn sorted_rows(outcome: &QueryOutcome) -> Vec<String> {
    let mut rows: Vec<String> = outcome
        .rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    midq::common::Value::Float(f) => format!("{f:.3}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

/// One TPC-D join family parameterized by its two literals.
fn family(qty: i64, price: i64) -> String {
    format!(
        "SELECT o_orderstatus, count(*) AS n, max(o_totalprice) AS top \
         FROM orders, lineitem \
         WHERE o_orderkey = l_orderkey AND l_quantity < {qty} \
         AND o_totalprice > {price} \
         GROUP BY o_orderstatus ORDER BY o_orderstatus"
    )
}

#[test]
fn family_equivalent_queries_share_one_entry() {
    let db = load_db(true);
    // Same family: different literals, whitespace, and keyword case.
    let variants = [
        family(25, 1000),
        "select O_ORDERSTATUS,   count(*) AS n, MAX(o_totalprice) as top \
         from orders, lineitem \
         where o_orderkey = l_orderkey and l_quantity < 30 \
         and o_totalprice > 2500 \
         group by o_orderstatus order by o_orderstatus"
            .to_string(),
        family(40, 500),
    ];
    // All variants normalize to one cache key.
    let keys: Vec<String> = variants
        .iter()
        .map(|v| midq::normalize(v).expect("normalizable").key)
        .collect();
    assert_eq!(keys[0], keys[1], "case/whitespace variant changed the key");
    assert_eq!(keys[0], keys[2], "literal variant changed the key");

    for v in &variants {
        db.query(v).mode(ReoptMode::Off).run().unwrap();
    }
    let s = db.plan_cache_stats();
    assert_eq!(s.entries, 1, "family split across entries: {s:?}");
    assert_eq!(s.insertions, 1, "family re-entered: {s:?}");
    assert_eq!(s.hits, 2, "literal variants missed the template: {s:?}");
    assert_eq!(s.misses, 1, "{s:?}");
}

#[test]
fn different_queries_never_collide() {
    let db = load_db(true);
    let a = "SELECT count(*) AS n FROM lineitem WHERE l_quantity < 25";
    let b = "SELECT count(*) AS n FROM orders WHERE o_totalprice > 25";
    let c = "SELECT max(l_quantity) AS n FROM lineitem WHERE l_quantity < 25";
    assert_ne!(
        midq::normalize(a).unwrap().key,
        midq::normalize(b).unwrap().key
    );
    assert_ne!(
        midq::normalize(a).unwrap().key,
        midq::normalize(c).unwrap().key
    );
    for q in [a, b, c] {
        db.query(q).mode(ReoptMode::Off).run().unwrap();
    }
    let s = db.plan_cache_stats();
    assert_eq!(s.entries, 3, "distinct queries collided: {s:?}");
    assert_eq!(s.hits, 0, "a distinct query hit another's template: {s:?}");
}

#[test]
fn or_precedence_queries_never_collide() {
    // AND binds tighter than OR, so these predicates differ:
    // a = qty<10 OR (qty>45 AND supp=3), b = (supp=3 AND qty<10) OR
    // qty>45. Naive conjunct sorting would conflate them onto one key
    // and the second query would execute the first's cached plan.
    let a = "SELECT count(*) AS n FROM lineitem \
             WHERE l_quantity < 10 OR l_quantity > 45 AND l_suppkey = 3";
    let b = "SELECT count(*) AS n FROM lineitem \
             WHERE l_suppkey = 3 AND l_quantity < 10 OR l_quantity > 45";
    assert_ne!(
        midq::normalize(a).unwrap().key,
        midq::normalize(b).unwrap().key,
        "OR-precedence variants must separate families"
    );

    let cached = load_db(true);
    let oracle = load_db(false);
    for q in [a, b] {
        let ours = cached.query(q).mode(ReoptMode::Off).run().unwrap();
        let theirs = oracle.query(q).mode(ReoptMode::Off).run().unwrap();
        assert_eq!(
            sorted_rows(&ours),
            sorted_rows(&theirs),
            "rows diverged from cache-off oracle for: {q}"
        );
    }
    let s = cached.plan_cache_stats();
    assert_eq!(
        (s.hits, s.entries),
        (0, 2),
        "semantically different queries shared a template: {s:?}"
    );
}

#[test]
fn rebound_literals_match_cache_off_oracle() {
    let cached = load_db(true);
    let oracle = load_db(false);
    let variants = [
        family(25, 1000),
        family(30, 1000),
        family(25, 2500),
        family(40, 500),
        family(10, 9000),
    ];
    for (i, v) in variants.iter().enumerate() {
        let ours = cached.query(v).mode(ReoptMode::Off).run().unwrap();
        let theirs = oracle.query(v).mode(ReoptMode::Off).run().unwrap();
        assert_eq!(
            sorted_rows(&ours),
            sorted_rows(&theirs),
            "variant {i}: rebound template diverged from cache-off oracle"
        );
        if i > 0 {
            assert_eq!(
                ours.cost.opt_work, 0,
                "variant {i}: warm run paid join enumeration"
            );
            assert!(
                ours.events.iter().any(|e| e.starts_with("plancache: hit")),
                "variant {i}: no hit event: {:?}",
                ours.events
            );
        }
    }
    let s = cached.plan_cache_stats();
    assert_eq!((s.hits, s.misses), (4, 1), "{s:?}");
    assert_eq!(s.rebind_failures, 0, "{s:?}");
}

#[test]
fn warm_workload_is_stable_across_worker_counts() {
    let db = load_db(true);
    let make = |workers: usize| {
        let mut w = Workload::new(workers);
        for (i, (qty, price)) in [(25, 1000), (30, 1000), (25, 2500), (40, 500)]
            .iter()
            .enumerate()
        {
            w = w.query(
                WorkloadQuery::sql(format!("f{i}"), family(*qty, *price)).with_mode(ReoptMode::Off),
            );
        }
        w
    };

    // Serial cold pass enters the family template.
    let cold = db.run_concurrent(&make(1));
    assert_eq!(cold.succeeded(), cold.results.len(), "{}", cold.summary());
    assert!(cold.plan_cache_hits() >= 1, "{}", cold.summary());

    // Warmed, plan-cache traffic is a function of the query sequence
    // alone: 1-worker and 4-worker runs agree on every row and every
    // per-job hit/miss count, and the summary footer reports them.
    let warm1 = db.run_concurrent(&make(1));
    let warm4 = db.run_concurrent(&make(4));
    assert_eq!(warm4.workers, 4);
    for (a, b) in warm1.results.iter().zip(&warm4.results) {
        assert_eq!(a.label, b.label);
        let ra = a.outcome.as_ref().unwrap();
        let rb = b.outcome.as_ref().unwrap();
        assert_eq!(
            sorted_rows(ra),
            sorted_rows(rb),
            "{}: rows diverged across worker counts",
            a.label
        );
        assert_eq!(
            (a.plan_cache_hits(), a.plan_cache_misses()),
            (b.plan_cache_hits(), b.plan_cache_misses()),
            "{}: plan-cache counters diverged across worker counts",
            a.label
        );
    }
    assert_eq!(
        warm1.plan_cache_hits(),
        warm1.results.len() as u64,
        "warm workload fell through to the optimizer:\n{}",
        warm1.summary()
    );
    let summary = warm4.summary();
    assert!(
        summary.contains("plan cache:"),
        "workload summary missing the plan-cache line:\n{summary}"
    );
    assert!(
        summary.contains("plancache="),
        "per-job lines missing the plancache column:\n{summary}"
    );
}

#[test]
fn insert_triggers_exactly_one_stale_reenumeration() {
    let db = load_db(true);
    let oracle = load_db(false);
    db.query(&family(25, 1000))
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    let warm = db
        .query(&family(30, 1000))
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    assert!(warm.events.iter().any(|e| e.starts_with("plancache: hit")));

    // Append one synthesized lineitem row on both databases: the
    // table's data version moves, so the next probe must fall through
    // to one full re-enumeration.
    let schema = db.engine().catalog().table("lineitem").unwrap().schema;
    let values: Vec<Value> = schema
        .fields()
        .iter()
        .map(|f| match f.dtype {
            midq::common::DataType::Bool => Value::Bool(false),
            midq::common::DataType::Int => Value::Int(1),
            midq::common::DataType::Float => Value::Float(1.0),
            midq::common::DataType::Str => Value::str("N"),
            midq::common::DataType::Date => Value::Date(9500),
        })
        .collect();
    db.insert("lineitem", Row::new(values.clone())).unwrap();
    oracle.insert("lineitem", Row::new(values)).unwrap();

    let stale = db
        .query(&family(25, 1000))
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    assert!(
        stale
            .events
            .iter()
            .any(|e| e.starts_with("plancache: stale (write)")),
        "write did not force a re-enumeration: {:?}",
        stale.events
    );
    assert!(stale.cost.opt_work > 0, "stale run skipped enumeration");
    assert_eq!(
        sorted_rows(&stale),
        sorted_rows(
            &oracle
                .query(&family(25, 1000))
                .mode(ReoptMode::Off)
                .run()
                .unwrap()
        ),
        "post-insert answer diverged from cache-off oracle"
    );

    // The re-entered template serves the family again: exactly one
    // stale re-enumeration per write, then warm.
    let rewarm = db
        .query(&family(30, 1000))
        .mode(ReoptMode::Off)
        .run()
        .unwrap();
    assert!(
        rewarm
            .events
            .iter()
            .any(|e| e.starts_with("plancache: hit")),
        "family did not re-warm: {:?}",
        rewarm.events
    );
    assert_eq!(rewarm.cost.opt_work, 0);
    let s = db.plan_cache_stats();
    assert_eq!(s.stale_reopts, 1, "{s:?}");
}

/// Adaptive histogram refresh: a column whose histogram predates a
/// heavy skewed append mis-estimates a one-column predicate by far
/// more than `hist_refresh_error_factor`. After `hist_refresh_hits`
/// plannings see the error through cardinality feedback, the engine
/// rebuilds just that column's histogram and drops the stored
/// corrections — and no further refresh fires, because the healed
/// estimates now fall within the error threshold.
#[test]
fn adaptive_histogram_refresh_fires_once_and_heals_estimates() {
    use midq::expr::{cmp, col, lit, CmpOp};
    use midq::plan::{AggExpr, AggFunc};
    use midq::LogicalPlan;

    let db = Database::new(EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        stats_feedback: false,
        cache_enabled: true,
        plan_cache_enabled: true,
        hist_refresh_hits: 2,
        ..EngineConfig::default()
    })
    .unwrap();
    db.create_table("sk", vec![("v", midq::common::DataType::Int)])
        .unwrap();
    // Uniform prefix, then ANALYZE, then a massive skewed append: the
    // histogram believes `v < 10` selects ~1% of 500 rows while the
    // live table has ~9500 matches.
    for i in 0..500i64 {
        db.insert("sk", Row::new(vec![Value::Int(i % 1000)]))
            .unwrap();
    }
    db.analyze("sk").unwrap();
    for _ in 0..9_500 {
        db.insert("sk", Row::new(vec![Value::Int(5)])).unwrap();
    }

    let q = LogicalPlan::scan_filtered("sk", cmp(CmpOp::Lt, col("sk.v"), lit(10i64))).aggregate(
        vec![],
        vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "n".into(),
        }],
    );

    let refreshes = |out: &QueryOutcome| {
        out.events
            .iter()
            .filter(|e| e.starts_with("stats: refreshed histogram sk.v"))
            .count()
    };
    let mut total = 0usize;
    let mut fired_at = None;
    for run in 0..8 {
        let out = db.query_plan(&q).mode(ReoptMode::Full).run().unwrap();
        let n = refreshes(&out);
        total += n;
        if n > 0 && fired_at.is_none() {
            fired_at = Some(run);
        }
    }
    assert_eq!(
        total, 1,
        "expected exactly one refresh of sk.v across the sequence"
    );
    // Run 0 records the observation; the refresh needs
    // `hist_refresh_hits = 2` plannings that see the error.
    let fired_at = fired_at.expect("refresh never fired");
    assert!(
        (1..=3).contains(&fired_at),
        "refresh fired at unexpected run {fired_at}"
    );
    // The healed histogram plans within the error threshold on its
    // own: the runs after the refresh accumulated no new error count
    // (else a second refresh would have fired above) even though the
    // per-fingerprint corrections for `sk` were dropped.
}

/// Prepared statements pin the template once at prepare time, then
/// every run rebinds positional parameters without the normalizer:
/// each execution is a plan-cache hit with zero optimizer work charged,
/// and parameters bind in textual order.
#[test]
fn prepared_statements_skip_the_normalizer_and_hit_warm() {
    let db = load_db(true);
    let oracle = load_db(false);

    let stmt = db.prepare(&family(25, 1000)).unwrap();
    assert_eq!(stmt.param_count(), 2);
    // prepare() itself admitted the template, off any job clock.
    assert_eq!(db.plan_cache_stats().entries, 1);

    for (qty, price) in [(25i64, 1000i64), (30, 2500), (40, 500)] {
        // Textual order: qty is the first literal, price the second.
        let out = stmt
            .run_mode(&[Value::Int(qty), Value::Int(price)], ReoptMode::Off)
            .unwrap();
        assert_eq!(out.cost.opt_work, 0, "({qty},{price}) re-enumerated");
        assert_eq!(
            sorted_rows(&out),
            sorted_rows(
                &oracle
                    .query(&family(qty, price))
                    .mode(ReoptMode::Off)
                    .run()
                    .unwrap()
            ),
            "({qty},{price}) diverged from oracle"
        );
    }
    let s = db.plan_cache_stats();
    assert_eq!(s.hits, 3, "{s:?}");
    assert_eq!(s.misses, 0, "{s:?}");

    // Arity and type drift are bind-time errors, not panics.
    assert!(stmt.run(&[Value::Int(1)]).is_err());
    assert!(stmt.run(&[Value::str("no"), Value::Int(1)]).is_err());

    // A write to a dependency makes the template stale: the next
    // prepared run pays exactly one re-enumeration, then the family is
    // warm again.
    db.insert(
        "orders",
        Row::new(vec![
            Value::Int(9_999_999),
            Value::Int(1),
            Value::str("F"),
            Value::Float(42.0),
            midq::common::value::date(1995, 1, 1),
            Value::Int(0),
        ]),
    )
    .unwrap();
    let stale = stmt
        .run_mode(&[Value::Int(25), Value::Int(1000)], ReoptMode::Off)
        .unwrap();
    assert!(
        stale.cost.opt_work > 0,
        "stale template served unre-planned"
    );
    assert_eq!(db.plan_cache_stats().stale_reopts, 1);
    let rewarm = stmt
        .run_mode(&[Value::Int(30), Value::Int(2500)], ReoptMode::Off)
        .unwrap();
    assert_eq!(rewarm.cost.opt_work, 0, "family not warm after refresh");
}
