//! Integration: segment checkpoint manifests, crash-point injection,
//! and resumable recovery.
//!
//! A simulated crash ([`FaultKind::Crash`]) abandons the query's
//! in-flight state without running its `CleanupGuard` — the checkpoint
//! manifest and every materialized temp table survive in the engine.
//! `Engine::recover` then validates the manifest against the surviving
//! artifacts (data-before-manifest: a record present means the temp
//! table is fully written and registered), sweeps the orphans, and
//! resumes the remainder query over the salvaged prefix. These tests
//! pin the whole lifecycle: salvage, the generation rollover when
//! recovery itself crashes, the runtime's crashed → recovering → done
//! state machine, the bounded recovery budget, and the stale-temp
//! sweep for crashes nobody recovers.

use midq::common::{EngineConfig, FaultInjector, FaultKind, FaultSite, FaultSpec, MqError, Value};
use midq::obs::{json_str, JsonlSink, Obs};
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, QueryOutcome, ReoptMode, Workload, WorkloadQuery};

/// The salvage-friendly load: bench scale with the paper's bare
/// switch-acceptance margin, so the chaos queries actually complete
/// checkpointed segments (plan switches) before any injected crash.
fn switchy_db() -> Database {
    let cfg = EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        stats_feedback: false,
        switch_margin: 1.0,
        ..EngineConfig::default()
    };
    let db = Database::new(cfg).unwrap();
    db.load_tpcd(&TpcdConfig {
        scale: 0.008,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .unwrap();
    db
}

/// Small fast load for the lifecycle tests that don't need salvage.
fn small_db() -> Database {
    let db = Database::new(EngineConfig::default()).unwrap();
    db.load_tpcd(&TpcdConfig {
        scale: 0.002,
        analyze_after_fraction: 1.0,
        ..TpcdConfig::default()
    })
    .unwrap();
    db
}

/// Canonical multiset rendering (sort tie order may differ between a
/// cold run and a resumed remainder).
fn sorted_rows(outcome: &QueryOutcome) -> Vec<String> {
    let mut rows: Vec<String> = outcome
        .rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    Value::Float(f) => format!("{f:.3}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

fn crash_at(site: FaultSite, at: u64) -> FaultInjector {
    FaultInjector::new(
        vec![FaultSpec {
            site,
            kind: FaultKind::Crash,
            at,
        }],
        None,
    )
}

/// Tentpole acceptance: crash after the final checkpoint, recover,
/// and the salvaged segments make recovery strictly cheaper than the
/// cold run while producing identical rows. The crash and recovery
/// emit the full observability quartet.
#[test]
fn crash_after_checkpoint_salvages_and_matches_oracle() {
    let db = switchy_db();
    let engine = db.engine();
    let q = queries::q10();
    let cfg = engine.config().clone();

    // Fault-free oracle on a child clock: cold cost + kill-point count.
    let counter = FaultInjector::none();
    let cold_clock = engine.clock().child();
    let mut env = engine.default_env();
    env.clock = cold_clock.clone();
    env.fault = Some(counter.clone());
    let oracle = engine.run_with(&q, ReoptMode::PlanOnly, env).unwrap();
    assert!(oracle.plan_switches > 0, "Q10 must switch to checkpoint");
    let cold_ms = cold_clock.elapsed_ms(&cfg);
    let boundaries = counter.ops_at(FaultSite::SegmentBoundary);

    // Crash at the last boundary — every completed segment survives.
    let sink = std::sync::Arc::new(JsonlSink::new());
    let obs = Obs::none().with_sink(sink.clone()).for_job(1, "Q10-crash");
    let mut env = engine.default_env();
    env.fault = Some(crash_at(FaultSite::SegmentBoundary, boundaries));
    env.obs = Some(obs.clone());
    let query_id = env.query_id;
    let err = engine.run_with(&q, ReoptMode::PlanOnly, env).unwrap_err();
    assert!(matches!(err, MqError::Crash(_)), "expected crash: {err}");
    assert_eq!(engine.manifests().open_queries(), vec![query_id]);

    // Recover on a fresh child clock.
    let rec_clock = engine.clock().child();
    let mut env = engine.default_env();
    env.clock = rec_clock;
    env.obs = Some(obs);
    let rec = engine.recover_with(query_id, env).unwrap();

    assert_eq!(sorted_rows(&oracle), sorted_rows(&rec.outcome));
    assert!(
        rec.segments_salvaged > 0,
        "crash after {boundaries} boundaries salvaged nothing"
    );
    assert!(rec.validated_rows > 0, "salvage validated zero rows");
    assert!(
        rec.recovery_ms < cold_ms,
        "salvaged recovery not cheaper: {:.1} >= {cold_ms:.1} sim-ms",
        rec.recovery_ms
    );

    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
    assert!(engine.manifests().open_queries().is_empty());

    // The crash and the recovery both reached the trace.
    let events: Vec<String> = sink
        .lines()
        .iter()
        .filter_map(|l| json_str(l, "event"))
        .collect();
    for want in [
        "crash_injected",
        "recovery_started",
        "segments_salvaged",
        "orphans_swept",
    ] {
        assert!(
            events.iter().any(|e| e == want),
            "missing {want} in trace: {events:?}"
        );
    }
}

/// A crash *during recovery* rolls the manifest generation: the
/// salvaged temp tables of the interrupted attempt are protected, a
/// second recovery still converges, and nothing leaks.
#[test]
fn crash_during_recovery_rolls_generation_and_converges() {
    let db = switchy_db();
    let engine = db.engine();
    let q = queries::q10();

    let counter = FaultInjector::none();
    let mut env = engine.default_env();
    env.fault = Some(counter.clone());
    let oracle = engine.run_with(&q, ReoptMode::PlanOnly, env).unwrap();
    let boundaries = counter.ops_at(FaultSite::SegmentBoundary);
    assert!(boundaries >= 2, "need >= 2 boundaries, got {boundaries}");

    // First crash: mid-run. The injector's op counters are shared
    // across runs, so the second spec fires during the recovery.
    let inj = FaultInjector::new(
        vec![
            FaultSpec {
                site: FaultSite::SegmentBoundary,
                kind: FaultKind::Crash,
                at: boundaries,
            },
            FaultSpec {
                site: FaultSite::SegmentBoundary,
                kind: FaultKind::Crash,
                at: boundaries + 1,
            },
        ],
        None,
    );
    let mut env = engine.default_env();
    env.fault = Some(inj.clone());
    let query_id = env.query_id;
    let err = engine.run_with(&q, ReoptMode::PlanOnly, env).unwrap_err();
    assert!(matches!(err, MqError::Crash(_)), "{err}");
    let gen0 = engine.manifests().get(query_id).unwrap().generation;

    // Second crash: during the resumed remainder of attempt one.
    let mut env = engine.default_env();
    env.fault = Some(inj);
    let err = engine.recover_with(query_id, env).unwrap_err();
    assert!(matches!(err, MqError::Crash(_)), "{err}");
    let m = engine.manifests().get(query_id).unwrap();
    assert!(
        m.generation > gen0,
        "generation did not roll: {} -> {}",
        gen0,
        m.generation
    );

    // Third attempt, fault-free: converges to the oracle.
    let rec = engine.recover_with(query_id, engine.default_env()).unwrap();
    assert_eq!(sorted_rows(&oracle), sorted_rows(&rec.outcome));
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
    assert!(engine.manifests().open_queries().is_empty());
}

/// The concurrent runtime drives crashed → recovering → done on its
/// own: a workload query killed by an injected crash is recovered
/// in-place (same memory lease, simulated backoff charged) and still
/// succeeds, with the attempt counted on its `JobResult`.
#[test]
fn workload_recovers_crashed_query_in_place() {
    // Learn the boundary count for this load first.
    let counter = FaultInjector::none();
    let db = small_db();
    let mut env = db.engine().default_env();
    env.fault = Some(counter.clone());
    db.engine()
        .run_with(&queries::q3(), ReoptMode::PlanOnly, env)
        .unwrap();
    let boundaries = counter.ops_at(FaultSite::SegmentBoundary);
    assert!(boundaries >= 1, "Q3 crossed no segment boundary");

    let db = small_db();
    let mut wl = Workload::new(2);
    wl.queries.push(
        WorkloadQuery::plan("Q3-crash", queries::q3())
            .with_mode(ReoptMode::PlanOnly)
            .with_faults(crash_at(FaultSite::SegmentBoundary, boundaries)),
    );
    wl.queries
        .push(WorkloadQuery::plan("Q6", queries::q6()).with_mode(ReoptMode::PlanOnly));
    let report = db.run_concurrent(&wl);

    assert_eq!(report.succeeded(), 2, "{}", report.summary());
    let crashed = &report.results[0];
    assert_eq!(crashed.label, "Q3-crash");
    assert_eq!(crashed.recoveries, 1, "expected exactly one recovery");
    assert_eq!(report.recoveries(), 1);

    let audit = db.engine().audit();
    assert!(audit.is_clean(), "{audit}");
    assert!(db.engine().manifests().open_queries().is_empty());
}

/// Recovery budget exhaustion: a query that crashes on every attempt
/// is reaped after `recovery_attempt_limit` tries — the final error
/// surfaces, the manifest is closed, and the debris is swept.
#[test]
fn recovery_budget_exhaustion_reaps_the_query() {
    let db = small_db();
    let limit = db.engine().config().recovery_attempt_limit;
    assert!(limit >= 1);

    // One crash spec per boundary the run and every retry could reach:
    // the shared op counter keeps climbing, so each attempt dies at its
    // next boundary.
    let specs: Vec<FaultSpec> = (1..=200)
        .map(|at| FaultSpec {
            site: FaultSite::SegmentBoundary,
            kind: FaultKind::Crash,
            at,
        })
        .collect();
    let mut wl = Workload::new(1);
    wl.queries.push(
        WorkloadQuery::plan("Q3-doomed", queries::q3())
            .with_mode(ReoptMode::PlanOnly)
            .with_faults(FaultInjector::new(specs, None)),
    );
    let report = db.run_concurrent(&wl);

    let job = &report.results[0];
    assert!(
        matches!(job.outcome, Err(MqError::Crash(_))),
        "doomed query should stay crashed: {:?}",
        job.outcome
    );
    assert_eq!(job.recoveries, limit, "should spend the whole budget");

    // Reaped, not leaked: manifest closed, debris swept.
    assert!(db.engine().manifests().open_queries().is_empty());
    let audit = db.engine().audit();
    assert!(audit.is_clean(), "{audit}");
}

/// A crash nobody recovers is reclaimed by the stale-temp sweep once
/// its manifest is closed — the startup-sweep path for orphans from a
/// previous incarnation.
#[test]
fn stale_sweep_reclaims_unrecovered_crash_debris() {
    let db = switchy_db();
    let engine = db.engine();
    let q = queries::q3();

    // Count page writes so the crash lands mid-materialization, with
    // a partial temp file on disk.
    let counter = FaultInjector::none();
    let mut env = engine.default_env();
    env.fault = Some(counter.clone());
    engine.run_with(&q, ReoptMode::PlanOnly, env).unwrap();
    let writes = counter.ops_at(FaultSite::PageWrite);
    assert!(writes > 0, "Q3 wrote no pages");

    let mut env = engine.default_env();
    env.fault = Some(crash_at(FaultSite::PageWrite, writes / 2));
    let query_id = env.query_id;
    let err = engine.run_with(&q, ReoptMode::PlanOnly, env).unwrap_err();
    assert!(matches!(err, MqError::Crash(_)), "{err}");

    // While the manifest is open the debris is protected (a recovery
    // could still salvage it) — the sweep must not touch it.
    let (tables, files) = engine.sweep_stale_temps();
    assert_eq!((tables, files), (0, 0), "sweep stole from an open crash");

    // Close the manifest (nobody will recover this query): now the
    // sweep reclaims everything and the audit is clean again.
    engine.manifests().remove(query_id);
    let (tables, files) = engine.sweep_stale_temps();
    assert!(
        tables + files > 0,
        "mid-materialization crash left no debris to sweep"
    );
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
    assert!(audit.stale_swept >= tables + files, "{audit}");
}
