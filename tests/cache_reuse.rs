//! Integration: the cross-query materialization cache and feedback
//! store answer repeated TPC-D query families correctly — cache off,
//! cold cache and warm cache agree row-for-row, serially and on a
//! 4-worker concurrent runtime — and writes invalidate what they must.

use midq::common::EngineConfig;
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, QueryOutcome, ReoptMode, Workload, WorkloadQuery};

/// The four families the cache experiment tracks: a single-table
/// aggregate (never promotes, always probes), and three multi-join
/// queries whose mid-query switches seed the cache.
fn families() -> Vec<(&'static str, midq::LogicalPlan)> {
    vec![
        ("Q1", queries::q1()),
        ("Q3", queries::q3()),
        ("Q6", queries::q6()),
        ("Q10", queries::q10()),
    ]
}

fn load_db(cache: bool) -> Database {
    // The switch-friendly recipe (see tests/recovery.rs): tight memory
    // and the paper's bare acceptance margin over a half-stale catalog,
    // so the multi-join families mis-estimate and re-optimize mid-query
    // — exactly the temps the cache promotes.
    let db = Database::new(EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        stats_feedback: false,
        switch_margin: 1.0,
        cache_enabled: cache,
        ..EngineConfig::default()
    })
    .unwrap();
    db.load_tpcd(&TpcdConfig {
        scale: 0.008,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .unwrap();
    db
}

/// Canonical row rendering (repo idiom): floats rounded so different
/// (equally correct) summation orders across plans compare equal.
fn sorted_rows(outcome: &QueryOutcome) -> Vec<String> {
    let mut rows: Vec<String> = outcome
        .rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    midq::common::Value::Float(f) => format!("{f:.3}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn off_cold_and_warm_answers_are_identical() {
    let off_db = load_db(false);
    let cached_db = load_db(true);

    for (name, q) in families() {
        let off = off_db
            .query_plan(&q)
            .mode(ReoptMode::PlanOnly)
            .run()
            .unwrap_or_else(|e| panic!("{name} off: {e}"));
        let cold = cached_db
            .query_plan(&q)
            .mode(ReoptMode::PlanOnly)
            .run()
            .unwrap_or_else(|e| panic!("{name} cold: {e}"));
        assert_eq!(
            sorted_rows(&off),
            sorted_rows(&cold),
            "{name}: cold cache diverged from cache-off"
        );
    }
    let after_cold = cached_db.cache_stats();
    assert!(
        after_cold.promotions >= 1,
        "no multi-join family promoted a switch temp: {after_cold:?}"
    );

    let mut warm_switches = 0u32;
    let mut cold_switches = 0u32;
    for (name, q) in families() {
        let off = off_db
            .query_plan(&q)
            .mode(ReoptMode::PlanOnly)
            .run()
            .unwrap();
        cold_switches += off.plan_switches; // off_db never warms: every run re-discovers
        let warm = cached_db
            .query_plan(&q)
            .mode(ReoptMode::PlanOnly)
            .run()
            .unwrap_or_else(|e| panic!("{name} warm: {e}"));
        warm_switches += warm.plan_switches;
        assert_eq!(
            sorted_rows(&off),
            sorted_rows(&warm),
            "{name}: warm cache diverged from cache-off"
        );
    }
    let after_warm = cached_db.cache_stats();
    assert!(
        after_warm.hits >= 1,
        "no family reused a cached sub-plan: {after_warm:?}"
    );
    // The feedback store steers repeat planning: the warmed engine
    // re-optimizes no more (and typically less) than the cold one.
    assert!(
        warm_switches <= cold_switches,
        "warm {warm_switches} switches vs cold {cold_switches}"
    );
    assert!(
        cached_db.engine().feedback().applied() >= 1,
        "feedback never steered a repeat optimization"
    );

    // Dropping the cache returns the engine to a clean state.
    cached_db.clear_cache();
    let cleared = cached_db.cache_stats();
    assert_eq!(cleared.entries, 0);
    assert_eq!(cleared.bytes, 0);
    let audit = cached_db.engine().audit();
    assert!(audit.is_clean(), "{audit}");
}

#[test]
fn warm_workload_is_stable_across_worker_counts() {
    let db = load_db(true);
    let make = |workers: usize| {
        let mut w = Workload::new(workers);
        for (name, q) in families() {
            w = w.query(WorkloadQuery::plan(name, q).with_mode(ReoptMode::PlanOnly));
        }
        w
    };

    // Serial cold pass seeds the cache and the feedback store.
    let cold = db.run_concurrent(&make(1));
    assert_eq!(cold.succeeded(), cold.results.len(), "{}", cold.summary());

    // Warmed, the workload's cache traffic is a function of the query
    // sequence alone: 1-worker and 4-worker runs agree on every row
    // and every Stable cache counter.
    let warm1 = db.run_concurrent(&make(1));
    let warm4 = db.run_concurrent(&make(4));
    assert_eq!(warm4.workers, 4);
    for (a, b) in warm1.results.iter().zip(&warm4.results) {
        assert_eq!(a.label, b.label);
        let ra = a
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", a.label));
        let rb = b
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", b.label));
        assert_eq!(
            sorted_rows(ra),
            sorted_rows(rb),
            "{}: rows diverged across worker counts",
            a.label
        );
        assert_eq!(
            (a.cache_hits(), a.cache_misses()),
            (b.cache_hits(), b.cache_misses()),
            "{}: cache counters diverged across worker counts",
            a.label
        );
    }
    assert!(
        warm1.cache_hits() >= 1,
        "warm workload never hit the cache:\n{}",
        warm1.summary()
    );
    let summary = warm4.summary();
    assert!(
        summary.contains("cache:"),
        "workload summary missing the cache line:\n{summary}"
    );
}

#[test]
fn inserts_invalidate_only_dependent_families() {
    let db = load_db(true);
    let oracle = load_db(false);
    let q3 = queries::q3();

    db.query_plan(&q3).mode(ReoptMode::PlanOnly).run().unwrap();
    let cold = db.cache_stats();
    if cold.promotions == 0 {
        // Q3 ran without a switch at this scale — nothing to invalidate.
        return;
    }

    // Append one synthesized order row on both databases: every cache
    // entry depending on `orders` dies, and the re-run agrees with the
    // cache-off oracle. The row is built from the live schema so the
    // test does not hard-code the TPC-D column layout.
    let schema = db.engine().catalog().table("orders").unwrap().schema;
    let values: Vec<midq::common::Value> = schema
        .fields()
        .iter()
        .map(|f| match f.dtype {
            midq::common::DataType::Bool => midq::common::Value::Bool(false),
            midq::common::DataType::Int => midq::common::Value::Int(1),
            midq::common::DataType::Float => midq::common::Value::Float(1.0),
            midq::common::DataType::Str => midq::common::Value::Str("1990-01-01".into()),
            midq::common::DataType::Date => midq::common::Value::Date(7305), // 1990-01-01
        })
        .collect();
    db.insert("orders", midq::common::Row::new(values.clone()))
        .unwrap();
    oracle
        .insert("orders", midq::common::Row::new(values))
        .unwrap();

    let stats = db.cache_stats();
    assert!(
        stats.invalidations >= 1,
        "write to orders invalidated nothing: {stats:?}"
    );

    let ours = db.query_plan(&q3).mode(ReoptMode::PlanOnly).run().unwrap();
    let theirs = oracle
        .query_plan(&q3)
        .mode(ReoptMode::PlanOnly)
        .run()
        .unwrap();
    assert_eq!(
        sorted_rows(&ours),
        sorted_rows(&theirs),
        "post-invalidation answer diverged from cache-off oracle"
    );
    let audit = db.engine().audit();
    assert!(audit.is_clean(), "{audit}");
}
