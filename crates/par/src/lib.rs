//! # mq-par — intra-query partitioned parallel execution
//!
//! The paper's setting is a *parallel* DBMS (Paradise); this crate
//! brings the reproduction from a serial engine to that setting while
//! keeping every result **byte-reproducible for any partition count**.
//!
//! The design separates two concepts:
//!
//! * **Buckets** — a fixed number `B` ([`mq_common::EngineConfig::
//!   par_buckets`]) of logical work units. Rows are routed to bucket
//!   `hash(keys) % B`; pipeline segments between exchanges execute once
//!   per bucket, in bucket order, each bucket with the operator's full
//!   serial memory grant (buckets are time-multiplexed on the job
//!   thread, so only one bucket's hash table is resident at a time —
//!   spill behaviour is therefore independent of the partition count).
//!   Bucket composition depends only on the data, the routing keys and
//!   `B` — never on `P` — so the concatenation of buckets in bucket
//!   order is the canonical, partition-invariant output of every stage.
//! * **Partitions** — an *accounting* overlay: the `P` workers the
//!   simulated cluster would run. Each bucket is assigned to a
//!   partition (contiguous ranges by default); a stage's simulated
//!   elapsed time is the **max over partitions** of the per-partition
//!   sums of bucket times, while io/cpu totals remain plain sums. The
//!   difference (`Σ bucket times − max-over-partitions`) is credited to
//!   the clock as [`mq_common::SimClock::add_parallel_saved_ms`].
//!
//! **Exchange operators** ([`mq_plan::PhysOp::Exchange`]) mark the
//! boundaries: `Repartition` routes rows by key hash into buckets,
//! `Merge` concatenates buckets back into one stream, `Broadcast`
//! replicates a small build side to every bucket. [`parallelize`]
//! inserts them into an optimized (and collector-instrumented) plan;
//! [`run_partitioned`] executes the result.
//!
//! **Statistics at exchange barriers** (§2.2 in a partitioned setting):
//! collectors inside a segment run per bucket in *capture* mode — raw
//! accumulators are deposited, merged across buckets with the exact
//! `merge()` operations of `mq-stats`, and reported to the controller
//! once per site, so the SCIA sees whole-stream observed cardinalities.
//!
//! **Skew** : after routing, if the max/mean per-partition load ratio
//! exceeds [`mq_common::EngineConfig::par_skew_theta`], the driver
//! emits a skew verdict and greedily re-assigns buckets to partitions
//! (largest-first onto the least-loaded worker) — the mid-query
//! re-optimization of the *partitioning* itself. Re-assignment changes
//! only the accounting overlay, never the bucket contents, so results
//! stay byte-identical while the simulated elapsed time improves.

mod driver;
mod rewrite;

use mq_plan::NodeId;

pub use driver::run_partitioned;
pub use rewrite::parallelize;

/// How a query should be partitioned. Carried by the job environment;
/// `None` means serial execution (no exchanges, the pre-existing
/// behaviour).
#[derive(Debug, Clone)]
pub struct ParSpec {
    /// Simulated worker count `P` (≥ 1). Exchanges are inserted even at
    /// `P = 1` so results can be compared across partition counts
    /// through the identical plan shape.
    pub partitions: usize,
}

impl ParSpec {
    /// A spec for `partitions` workers (clamped to ≥ 1).
    pub fn new(partitions: usize) -> ParSpec {
        ParSpec {
            partitions: partitions.max(1),
        }
    }
}

/// What one exchange stage did at run time.
#[derive(Debug, Clone)]
pub struct ExchangeReport {
    /// Plan-node id of the exchange.
    pub node: NodeId,
    /// `repartition`, `merge` or `broadcast`.
    pub mode: &'static str,
    /// Total rows through the exchange.
    pub rows: u64,
    /// Rows landing on each partition (under the final bucket →
    /// partition assignment; for a broadcast, every partition receives
    /// the full row count).
    pub per_partition_rows: Vec<u64>,
}

/// One skew decision.
#[derive(Debug, Clone)]
pub struct SkewReport {
    /// Exchange node the verdict fired at.
    pub node: NodeId,
    /// Observed max/mean per-partition load ratio.
    pub ratio: f64,
    /// The configured threshold it exceeded.
    pub theta: f64,
    /// `rebalance` (buckets re-assigned) or `none`.
    pub action: &'static str,
    /// The max/mean ratio under the re-balanced assignment (bounded
    /// below by the heaviest single bucket — a bucket is never split).
    pub after_ratio: f64,
}

/// Partitioned-execution summary attached to the query outcome.
#[derive(Debug, Clone)]
pub struct ParReport {
    /// Worker count the query ran with.
    pub partitions: usize,
    /// Logical bucket count rows were routed into.
    pub buckets: usize,
    /// Per-exchange row routing, in completion order.
    pub exchanges: Vec<ExchangeReport>,
    /// Skew verdicts, in completion order.
    pub skew: Vec<SkewReport>,
    /// Total simulated milliseconds saved by overlapping partitions
    /// (already subtracted from the outcome's elapsed time).
    pub saved_ms: f64,
}

impl ParReport {
    fn new(partitions: usize, buckets: usize) -> ParReport {
        ParReport {
            partitions,
            buckets,
            exchanges: Vec::new(),
            skew: Vec::new(),
            saved_ms: 0.0,
        }
    }

    /// The report for an exchange node, if that exchange executed.
    pub fn exchange(&self, node: NodeId) -> Option<&ExchangeReport> {
        self.exchanges.iter().find(|e| e.node == node)
    }
}
