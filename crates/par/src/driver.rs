//! The partitioned pipeline driver: evaluates an exchange-annotated
//! physical plan bucket by bucket.
//!
//! The driver walks the plan from the root. At every non-exchange node
//! it finds the **exchange frontier** — the topmost exchange operators
//! strictly below it. The subtree above the frontier is one pipeline
//! *segment*: it is instantiated once per bucket with [`RowsExec`]
//! substituted at each frontier position (via `build_executor_with`),
//! so the segment's own operators (aggregates, joins, collectors, …)
//! run unmodified per bucket. Exchange nodes themselves are evaluated
//! by the driver: `Repartition` routes rows into buckets by key hash,
//! `Merge` concatenates buckets (or runs a chunkable producer as
//! parallel page-range chunks), `Broadcast` replicates a small input.
//!
//! Simulated time: every per-bucket (or per-chunk) unit is measured by
//! clock snapshots; a stage's *parallel saving* is `Σ unit times −
//! max-over-partitions(Σ unit times per partition)` under the stage's
//! bucket → partition assignment, credited to the clock via
//! [`mq_common::SimClock::add_parallel_saved_ms`]. io/cpu totals are untouched, so
//! they are identical to a serial run of the same bucketed work — and
//! identical across partition counts.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use mq_common::{EngineConfig, MqError, Result, Row, Value};
use mq_exec::context::hash_key;
use mq_exec::scan::SeqScanExec;
use mq_exec::{build_executor_with, CollectorParts, ExecContext, Operator, RowsExec};
use mq_obs::ObsEvent;
use mq_plan::{ExchangeMode, NodeId, PhysOp, PhysPlan};

use crate::rewrite::chunkable;
use crate::{ExchangeReport, ParReport, ParSpec, SkewReport};

/// Routing salt for exchange repartitioning. Distinct from the
/// hash-join family of level salts (0, 1, 2, …): rows inside one
/// bucket already share `hash(key, ROUTE_SALT) % B`, and if the join
/// used the same salt its own partitioning `hash(key, salt) % nparts`
/// would degenerate whenever `nparts` divides `B`.
const ROUTE_SALT: u64 = 0x7061_7254; // "parT"

/// Interrupt-poll stride inside a bucket run.
const INTERRUPT_STRIDE: usize = 1024;

/// Execute a parallelized plan (one that went through
/// [`crate::parallelize`]) and return its rows plus the partitioned
/// execution report. Results are byte-identical for any partition
/// count (bucket composition depends only on the data, the keys and
/// the bucket count), and equal to serial execution up to
/// floating-point summation order (aggregates sum in bucket order).
pub fn run_partitioned(
    plan: &PhysPlan,
    ctx: &ExecContext,
    spec: &ParSpec,
    cfg: &EngineConfig,
) -> Result<(Vec<Row>, ParReport)> {
    let p = spec.partitions.max(1);
    let b = cfg.par_buckets.max(1);
    let mut driver = Driver {
        ctx,
        cfg,
        p,
        b,
        report: ParReport::new(p, b),
        actuals: HashMap::new(),
    };
    let rows = match driver.eval(plan)? {
        Stream::Serial(rows) | Stream::Broadcast(rows) => rows,
        // A partitioned root is wrapped in a Merge by the rewrite; this
        // arm only fires for hand-built plans. Bucket order is the
        // canonical order.
        Stream::Buckets(buckets, _) => buckets.into_iter().flatten().collect(),
    };
    // Publish the merged per-operator actuals (summed across buckets)
    // on the job context for EXPLAIN ANALYZE.
    for (node, a) in driver.actuals.drain() {
        ctx.record_actuals(node, a);
    }
    Ok((rows, driver.report))
}

/// The value of a plan subtree under the driver.
enum Stream {
    /// One serial row stream.
    Serial(Vec<Row>),
    /// A replicated stream: every bucket run receives a full copy.
    Broadcast(Vec<Row>),
    /// Bucketed rows plus the bucket → partition assignment the
    /// producing stage ran under (consumers inherit it for their own
    /// elapsed-time accounting).
    Buckets(Vec<Vec<Row>>, Vec<usize>),
}

struct Driver<'a> {
    ctx: &'a ExecContext,
    cfg: &'a EngineConfig,
    /// Partition (worker) count `P`.
    p: usize,
    /// Bucket count `B`.
    b: usize,
    report: ParReport,
    /// Per-operator actuals summed across bucket runs.
    actuals: HashMap<NodeId, mq_exec::OpActuals>,
}

impl<'a> Driver<'a> {
    fn eval(&mut self, plan: &PhysPlan) -> Result<Stream> {
        match &plan.op {
            PhysOp::Exchange { mode, .. } => match mode.clone() {
                ExchangeMode::Repartition { keys } => self.eval_repartition(plan, &keys),
                ExchangeMode::Merge => self.eval_merge(plan),
                ExchangeMode::Broadcast => self.eval_broadcast(plan),
            },
            _ => self.eval_segment(plan),
        }
    }

    /// Evaluate a non-exchange subtree: resolve its exchange frontier,
    /// then run the segment above it once (serial inputs) or once per
    /// bucket (bucketed inputs).
    fn eval_segment(&mut self, plan: &PhysPlan) -> Result<Stream> {
        let exchanges = frontier(plan);
        let mut streams = Vec::with_capacity(exchanges.len());
        for ex in &exchanges {
            streams.push(self.eval(ex)?);
        }
        let capture = new_capture();
        let bucketed = streams.iter().any(|s| matches!(s, Stream::Buckets(..)));
        if !bucketed {
            // Fully serial segment (possibly with no exchanges at all,
            // e.g. the child of a Broadcast): one run.
            let mut overrides = Overrides::new();
            for (ex, s) in exchanges.iter().zip(streams) {
                let rows = match s {
                    Stream::Serial(r) | Stream::Broadcast(r) => r,
                    Stream::Buckets(..) => unreachable!(),
                };
                overrides.insert(ex.id, Box::new(RowsExec::new(rows)));
            }
            let rows = self.run_unit(plan, overrides, &capture)?;
            self.finish_capture(&capture)?;
            return Ok(Stream::Serial(rows));
        }
        // At least one input is bucketed: run the segment per bucket.
        // The stage inherits the assignment of its dominant bucketed
        // input (most rows; first on ties) — that producer dictates
        // where each bucket's rows already sit.
        let assignment = streams
            .iter()
            .filter_map(|s| match s {
                Stream::Buckets(bs, asg) => {
                    Some((bs.iter().map(Vec::len).sum::<usize>(), asg.clone()))
                }
                _ => None,
            })
            .max_by_key(|(n, _)| *n)
            .map(|(_, asg)| asg)
            .expect("bucketed input present");
        let mut out_buckets = Vec::with_capacity(self.b);
        let mut times = Vec::with_capacity(self.b);
        for bucket in 0..self.b {
            let mut overrides = Overrides::new();
            for (ex, s) in exchanges.iter().zip(streams.iter_mut()) {
                let rows = match s {
                    Stream::Buckets(bs, _) => std::mem::take(&mut bs[bucket]),
                    Stream::Broadcast(r) => r.clone(),
                    Stream::Serial(_) => {
                        return Err(MqError::Internal(
                            "serial stream feeding a bucketed segment".into(),
                        ))
                    }
                };
                overrides.insert(ex.id, Box::new(RowsExec::new(rows)));
            }
            let t0 = self.ctx.clock.snapshot();
            let rows = self.run_unit(plan, overrides, &capture)?;
            times.push(self.ctx.clock.snapshot().since(&t0).time_ms(self.cfg));
            out_buckets.push(rows);
        }
        self.book_saved(&times, &assignment);
        self.finish_capture(&capture)?;
        Ok(Stream::Buckets(out_buckets, assignment))
    }

    /// `Repartition`: produce the child (as parallel scan chunks, from
    /// source buckets, or serially), route every row to bucket
    /// `hash(keys) % B`, then decide the bucket → partition assignment
    /// (skew check).
    fn eval_repartition(&mut self, ex: &PhysPlan, keys: &[usize]) -> Result<Stream> {
        let child = &ex.children[0];
        let mut buckets: Vec<Vec<Row>> = (0..self.b).map(|_| Vec::new()).collect();
        let mut times: Vec<f64> = Vec::new();
        let mut unit_assignment: Option<Vec<usize>> = None;
        let mut produced: u64 = 0;

        if let Some(ranges) = self.chunk_ranges(child)? {
            // Parallel producer: page-range chunks of the one scan.
            // Routing (1 cpu op/row) happens on the producing worker,
            // inside the measured window.
            let capture = new_capture();
            for (lo, hi) in ranges {
                let t0 = self.ctx.clock.snapshot();
                let rows = self.run_chunk(child, lo, hi, &capture)?;
                produced += rows.len() as u64;
                self.ctx.clock.add_cpu(rows.len() as u64);
                self.route(rows, keys, &mut buckets);
                times.push(self.ctx.clock.snapshot().since(&t0).time_ms(self.cfg));
            }
            self.finish_capture(&capture)?;
        } else {
            match self.eval(child)? {
                Stream::Serial(rows) => {
                    // Serial producer: routing is serial too; no saving.
                    produced = rows.len() as u64;
                    self.ctx.clock.add_cpu(produced);
                    self.route(rows, keys, &mut buckets);
                }
                Stream::Buckets(src, asg) => {
                    // Re-route an already-bucketed stream (key change
                    // between stages): each source bucket re-routes on
                    // its own worker under the source assignment.
                    for rows in src {
                        let t0 = self.ctx.clock.snapshot();
                        produced += rows.len() as u64;
                        self.ctx.clock.add_cpu(rows.len() as u64);
                        self.route(rows, keys, &mut buckets);
                        times.push(self.ctx.clock.snapshot().since(&t0).time_ms(self.cfg));
                    }
                    unit_assignment = Some(asg);
                }
                Stream::Broadcast(_) => {
                    return Err(MqError::Internal(
                        "broadcast stream feeding a repartition".into(),
                    ))
                }
            }
        }
        if !times.is_empty() {
            let asg = unit_assignment.unwrap_or_else(|| contiguous_assignment(times.len(), self.p));
            self.book_saved(&times, &asg);
        }
        let loads: Vec<u64> = buckets.iter().map(|b| b.len() as u64).collect();
        let assignment = self.skew_assign(ex.id, &loads);
        let per = fold_loads(&loads, &assignment, self.p);
        self.record_exchange(ex.id, "repartition", produced, per);
        Ok(Stream::Buckets(buckets, assignment))
    }

    /// `Merge`: concatenate buckets back into one serial stream in
    /// bucket order — or, for a chunkable serial child, run it as
    /// parallel chunks and concatenate those in chunk order.
    fn eval_merge(&mut self, ex: &PhysPlan) -> Result<Stream> {
        let child = &ex.children[0];
        if let Some(ranges) = self.chunk_ranges(child)? {
            let capture = new_capture();
            let mut out = Vec::new();
            let mut times = Vec::with_capacity(self.b);
            let mut chunk_rows = Vec::with_capacity(self.b);
            for (lo, hi) in ranges {
                let t0 = self.ctx.clock.snapshot();
                let rows = self.run_chunk(child, lo, hi, &capture)?;
                times.push(self.ctx.clock.snapshot().since(&t0).time_ms(self.cfg));
                chunk_rows.push(rows.len() as u64);
                out.extend(rows);
            }
            self.finish_capture(&capture)?;
            let asg = contiguous_assignment(times.len(), self.p);
            self.book_saved(&times, &asg);
            // The concatenation itself runs on the consumer's (serial)
            // side of the barrier.
            self.ctx.clock.add_cpu(out.len() as u64);
            let per = fold_loads(&chunk_rows, &asg, self.p);
            self.record_exchange(ex.id, "merge", out.len() as u64, per);
            return Ok(Stream::Serial(out));
        }
        match self.eval(child)? {
            Stream::Buckets(src, asg) => {
                let loads: Vec<u64> = src.iter().map(|b| b.len() as u64).collect();
                let total: u64 = loads.iter().sum();
                self.ctx.clock.add_cpu(total);
                let out: Vec<Row> = src.into_iter().flatten().collect();
                let per = fold_loads(&loads, &asg, self.p);
                self.record_exchange(ex.id, "merge", total, per);
                Ok(Stream::Serial(out))
            }
            // Degenerate: the input was already serial.
            Stream::Serial(rows) | Stream::Broadcast(rows) => {
                let n = rows.len() as u64;
                let mut per = vec![0; self.p];
                per[0] = n;
                self.record_exchange(ex.id, "merge", n, per);
                Ok(Stream::Serial(rows))
            }
        }
    }

    /// `Broadcast`: evaluate the child serially once and replicate the
    /// stream to every bucket run of the consuming segment.
    fn eval_broadcast(&mut self, ex: &PhysPlan) -> Result<Stream> {
        let rows = match self.eval(&ex.children[0])? {
            Stream::Serial(r) | Stream::Broadcast(r) => r,
            Stream::Buckets(bs, _) => bs.into_iter().flatten().collect(),
        };
        let n = rows.len() as u64;
        self.ctx.clock.add_cpu(n);
        self.record_exchange(ex.id, "broadcast", n, vec![n; self.p]);
        Ok(Stream::Broadcast(rows))
    }

    /// One unit of work: a bucket (or chunk) instantiation of a
    /// segment, run on a fresh bucket context with collector capture
    /// into `capture`. Per-bucket actuals are summed into the driver's
    /// merged view; artifacts and temp files are reclaimed whether the
    /// run succeeds or fails.
    fn run_unit(
        &mut self,
        plan: &PhysPlan,
        mut overrides: Overrides,
        capture: &Capture,
    ) -> Result<Vec<Row>> {
        let mut bctx = self.ctx.bucket_context();
        bctx.collector_capture = Some(Rc::clone(capture));
        let result = (|| {
            bctx.check_interrupt()?;
            let mut exec = build_executor_with(plan, &mut overrides)?;
            exec.open(&bctx)?;
            let mut out = Vec::new();
            while let Some(row) = exec.next(&bctx)? {
                out.push(row);
                if out.len() % INTERRUPT_STRIDE == 0 {
                    bctx.check_interrupt()?;
                }
            }
            exec.close(&bctx)?;
            Ok(out)
        })();
        // Cleanup backstop on both paths: a bucket's spills and
        // externalized state must never outlive its run (the fault
        // harness audits for leaked pages after every query).
        bctx.clear_artifacts();
        bctx.release_temp_files();
        for (node, a) in bctx.take_actuals() {
            let e = self.actuals.entry(node).or_default();
            e.rows += a.rows;
            e.cpu_ops += a.cpu_ops;
            e.io_pages += a.io_pages;
        }
        result
    }

    /// Run a chunkable subtree over one page range of its single scan.
    fn run_chunk(
        &mut self,
        child: &PhysPlan,
        lo: usize,
        hi: usize,
        capture: &Capture,
    ) -> Result<Vec<Row>> {
        let scan = chunkable(child).ok_or_else(|| {
            MqError::Internal("chunk run requested for a non-chunkable subtree".into())
        })?;
        let (spec, filter) = match &scan.op {
            PhysOp::SeqScan { spec, filter } => (spec.clone(), filter.clone()),
            _ => unreachable!("chunkable returns a SeqScan"),
        };
        let mut overrides = Overrides::new();
        overrides.insert(
            scan.id,
            Box::new(SeqScanExec::ranged(scan.id, spec, filter, lo, hi)),
        );
        self.run_unit(child, overrides, capture)
    }

    /// The `B` page ranges for a chunkable subtree, or `None` if the
    /// subtree is not chunkable. Ranges cover the file's *live* page
    /// count (the planning-time estimate may be stale).
    fn chunk_ranges(&self, child: &PhysPlan) -> Result<Option<Vec<(usize, usize)>>> {
        let Some(scan) = chunkable(child) else {
            return Ok(None);
        };
        let file = match &scan.op {
            PhysOp::SeqScan { spec, .. } => spec.file,
            _ => unreachable!("chunkable returns a SeqScan"),
        };
        let pages = self.ctx.storage.file_pages(file)?;
        let b = self.b;
        Ok(Some(
            (0..b)
                .map(|j| (j * pages / b, (j + 1) * pages / b))
                .collect(),
        ))
    }

    /// Route rows into buckets by key hash. One cpu op per row is
    /// charged by the caller (inside or outside the measured window,
    /// depending on which side of the exchange does the routing).
    fn route(&self, rows: Vec<Row>, keys: &[usize], buckets: &mut [Vec<Row>]) {
        for row in rows {
            let key: Vec<Value> = keys.iter().map(|&i| row.get(i).clone()).collect();
            let bucket = (hash_key(&key, ROUTE_SALT) % self.b as u64) as usize;
            buckets[bucket].push(row);
        }
    }

    /// Credit the parallel saving of one stage: total unit time minus
    /// the busiest partition's share under `assignment`. With one
    /// partition the saving is exactly zero.
    fn book_saved(&mut self, times: &[f64], assignment: &[usize]) {
        let mut per = vec![0.0f64; self.p];
        for (j, t) in times.iter().enumerate() {
            let w = assignment.get(j).copied().unwrap_or(0).min(self.p - 1);
            per[w] += t;
        }
        let total: f64 = times.iter().sum();
        let busiest = per.iter().cloned().fold(0.0f64, f64::max);
        let saved = total - busiest;
        if saved > 0.0 {
            self.ctx.clock.add_parallel_saved_ms(saved);
            self.report.saved_ms += saved;
        }
    }

    /// Decide the bucket → partition assignment after routing: start
    /// contiguous; if the max/mean per-partition load ratio exceeds
    /// `par_skew_theta`, emit a skew verdict and greedily re-balance
    /// (largest bucket first onto the least-loaded partition).
    /// Deterministic: ties break on lowest bucket / partition index.
    fn skew_assign(&mut self, node: NodeId, loads: &[u64]) -> Vec<usize> {
        let contiguous = contiguous_assignment(self.b, self.p);
        if self.p <= 1 {
            return contiguous;
        }
        let per = fold_loads(loads, &contiguous, self.p);
        let total: u64 = per.iter().sum();
        let mean = total as f64 / self.p as f64;
        let max = per.iter().copied().max().unwrap_or(0) as f64;
        let ratio = if mean > 0.0 { max / mean } else { 1.0 };
        let theta = self.cfg.par_skew_theta;
        if ratio <= theta {
            return contiguous;
        }
        let mut order: Vec<usize> = (0..loads.len()).collect();
        order.sort_by(|&a, &c| loads[c].cmp(&loads[a]).then(a.cmp(&c)));
        // LPT with a bucket-count cap: every bucket run carries a fixed
        // setup cost (hash tables, broadcast copies), so the re-balance
        // keeps per-partition bucket counts as equal as the contiguous
        // map (≤ ⌈B/P⌉) and only redistributes *which* buckets each
        // partition owns — the hot ones end up spread apart.
        let cap = loads.len().div_ceil(self.p);
        let mut part_load = vec![0u64; self.p];
        let mut part_count = vec![0usize; self.p];
        let mut assignment = vec![0usize; loads.len()];
        for i in order {
            let mut target = None;
            for (w, &l) in part_load.iter().enumerate() {
                if part_count[w] >= cap {
                    continue;
                }
                if target.is_none_or(|t: usize| l < part_load[t]) {
                    target = Some(w);
                }
            }
            let target = target.unwrap_or(0);
            assignment[i] = target;
            part_load[target] += loads[i];
            part_count[target] += 1;
        }
        let after = fold_loads(loads, &assignment, self.p);
        let after_max = after.iter().copied().max().unwrap_or(0) as f64;
        let after_ratio = if mean > 0.0 { after_max / mean } else { 1.0 };
        mq_obs::emit(|| ObsEvent::SkewVerdict {
            node: node.0 as u64,
            ratio,
            theta,
            action: "rebalance",
        });
        self.report.skew.push(SkewReport {
            node,
            ratio,
            theta,
            action: "rebalance",
            after_ratio,
        });
        assignment
    }

    /// Merge captured collector parts across bucket runs and deliver
    /// one report per collector site through the *job* context (the
    /// one with the monitor) — the exchange-barrier statistics merge.
    fn finish_capture(&mut self, capture: &Capture) -> Result<()> {
        let parts: Vec<CollectorParts> = capture.borrow_mut().drain(..).collect();
        let mut order: Vec<NodeId> = Vec::new();
        let mut merged: HashMap<NodeId, CollectorParts> = HashMap::new();
        for part in parts {
            match merged.entry(part.node) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&part),
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(part.node);
                    e.insert(part);
                }
            }
        }
        for node in order {
            let stats = merged[&node].finish(self.cfg);
            self.ctx.notify_collector(stats)?;
        }
        Ok(())
    }

    /// Emit the exchange trace event and fold the stage into the
    /// report and the actuals (exchange nodes have no executor under
    /// the driver, so their observed row counts are recorded here).
    fn record_exchange(
        &mut self,
        node: NodeId,
        mode: &'static str,
        rows: u64,
        per_partition_rows: Vec<u64>,
    ) {
        mq_obs::emit(|| ObsEvent::Exchange {
            node: node.0 as u64,
            mode,
            partitions: self.p as u64,
            buckets: self.b as u64,
            rows,
        });
        self.actuals.entry(node).or_default().rows += rows;
        self.report.exchanges.push(ExchangeReport {
            node,
            mode,
            rows,
            per_partition_rows,
        });
    }
}

type Overrides = HashMap<NodeId, Box<dyn Operator>>;
type Capture = Rc<RefCell<Vec<CollectorParts>>>;

fn new_capture() -> Capture {
    Rc::new(RefCell::new(Vec::new()))
}

/// The topmost exchange nodes strictly below `plan` (pre-order).
fn frontier(plan: &PhysPlan) -> Vec<&PhysPlan> {
    fn rec<'a>(p: &'a PhysPlan, out: &mut Vec<&'a PhysPlan>) {
        for c in &p.children {
            if matches!(c.op, PhysOp::Exchange { .. }) {
                out.push(c);
            } else {
                rec(c, out);
            }
        }
    }
    let mut out = Vec::new();
    rec(plan, &mut out);
    out
}

/// The default assignment: bucket `i` of `n` goes to partition
/// `i * p / n` — contiguous, near-equal ranges.
fn contiguous_assignment(n: usize, p: usize) -> Vec<usize> {
    (0..n).map(|i| i * p / n).collect()
}

/// Per-partition load totals under an assignment.
fn fold_loads(loads: &[u64], assignment: &[usize], p: usize) -> Vec<u64> {
    let mut per = vec![0u64; p];
    for (i, &l) in loads.iter().enumerate() {
        let w = assignment.get(i).copied().unwrap_or(0).min(p - 1);
        per[w] += l;
    }
    per
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_assignment_covers_all_partitions() {
        let asg = contiguous_assignment(64, 4);
        assert_eq!(asg.len(), 64);
        assert_eq!(asg[0], 0);
        assert_eq!(asg[63], 3);
        for w in 0..4 {
            assert_eq!(asg.iter().filter(|&&a| a == w).count(), 16);
        }
    }

    #[test]
    fn fold_loads_sums_by_partition() {
        let per = fold_loads(&[5, 1, 2, 8], &[0, 0, 1, 1], 2);
        assert_eq!(per, vec![6, 10]);
    }
}
