//! The parallelization pass: insert exchange operators into an
//! optimized, collector-instrumented physical plan.
//!
//! Rules (bottom-up; "partitioned" = the node's output is bucketed):
//!
//! * `HashJoin` — when the build side is estimated at or under
//!   `par_broadcast_rows`, the build child is wrapped in a `Broadcast`
//!   (merged first if it was partitioned) and the probe child is left
//!   as-is when already partitioned (no co-partitioning requirement
//!   under a broadcast) or wrapped in a `Repartition` on the probe keys
//!   otherwise. Larger builds get the classic hash-repartition join:
//!   `Repartition` on the build keys above the build child and on the
//!   probe keys above the probe child, making the sides co-partitioned.
//!   Either way the join output is partitioned.
//! * grouped `HashAggregate` — `Repartition` on the group columns above
//!   the input; every group lands in exactly one bucket, so per-bucket
//!   aggregation is exact. Output partitioned.
//! * scalar `HashAggregate`, `Sort`, `Limit`, `IndexNLJoin` outer —
//!   serial operators: a partitioned input is merged below them; a
//!   serial but *chunkable* input (a streaming chain over exactly one
//!   sequential scan) also gets a `Merge`, which the driver evaluates
//!   as parallel page-range chunks.
//! * Collectors, filters and projections are transparent — exchanges go
//!   **above** them, so they run per bucket inside segments (collectors
//!   in capture mode, merged at the barrier).
//! * A partitioned root is wrapped in a final `Merge`.
//!
//! Exchanges are inserted even for `partitions = 1` so that results and
//! metrics can be compared byte-for-byte across partition counts over
//! the identical plan shape.

use mq_common::{EngineConfig, Result};
use mq_plan::{ExchangeMode, PhysOp, PhysPlan};

use crate::ParSpec;

/// Insert exchange operators (see module docs), then re-assign node
/// ids. Runs after collector insertion and before memory allocation.
pub fn parallelize(plan: &mut PhysPlan, spec: &ParSpec, cfg: &EngineConfig) -> Result<()> {
    let (mut rewritten, partitioned) = rewrite(plan.clone(), spec, cfg);
    if partitioned {
        rewritten = wrap(rewritten, ExchangeMode::Merge, spec.partitions);
    }
    *plan = rewritten;
    plan.assign_ids();
    Ok(())
}

/// Wrap `child` in an exchange of the given mode. The exchange carries
/// its child's cardinality annotation (it reorders rows, it does not
/// change them); `recost` later derives its routing cost.
fn wrap(child: PhysPlan, mode: ExchangeMode, partitions: usize) -> PhysPlan {
    let schema = child.schema.clone();
    let annot = child.annot.clone();
    let mut ex = PhysPlan::new(PhysOp::Exchange { mode, partitions }, vec![child], schema);
    ex.annot = annot;
    ex
}

fn rewrite(mut plan: PhysPlan, spec: &ParSpec, cfg: &EngineConfig) -> (PhysPlan, bool) {
    let p = spec.partitions;
    match &plan.op {
        PhysOp::HashJoin {
            build_keys,
            probe_keys,
        } => {
            let build_keys = build_keys.clone();
            let probe_keys = probe_keys.clone();
            let mut ch = plan.children.drain(..);
            let build = ch.next().expect("hash join build child");
            let probe = ch.next().expect("hash join probe child");
            drop(ch);
            let (build, build_part) = rewrite(build, spec, cfg);
            let (probe, probe_part) = rewrite(probe, spec, cfg);
            if build.annot.est_rows <= cfg.par_broadcast_rows {
                // Tiny build: replicate it, keep the probe partitioning.
                let build = if build_part {
                    wrap(build, ExchangeMode::Merge, p)
                } else {
                    build
                };
                let build = wrap(build, ExchangeMode::Broadcast, p);
                let probe = if probe_part {
                    probe
                } else {
                    wrap(probe, ExchangeMode::Repartition { keys: probe_keys }, p)
                };
                plan.children = vec![build, probe];
            } else {
                // Hash-repartition join: co-partition on the join keys.
                let build = wrap(build, ExchangeMode::Repartition { keys: build_keys }, p);
                let probe = wrap(probe, ExchangeMode::Repartition { keys: probe_keys }, p);
                plan.children = vec![build, probe];
            }
            (plan, true)
        }
        PhysOp::HashAggregate { group, .. } if !group.is_empty() => {
            let keys = group.clone();
            let child = plan.children.pop().expect("aggregate child");
            let (child, _) = rewrite(child, spec, cfg);
            plan.children = vec![wrap(child, ExchangeMode::Repartition { keys }, p)];
            (plan, true)
        }
        // Serial consumers: merge a partitioned input below them; give
        // a chunkable serial input a Merge too, so the driver can run
        // it as parallel scan chunks.
        PhysOp::HashAggregate { .. } | PhysOp::Sort { .. } | PhysOp::Limit { .. } => {
            let child = plan.children.pop().expect("unary child");
            let (child, part) = rewrite(child, spec, cfg);
            let child = if part || chunkable(&child).is_some() {
                wrap(child, ExchangeMode::Merge, p)
            } else {
                child
            };
            plan.children = vec![child];
            (plan, false)
        }
        PhysOp::IndexNLJoin { .. } => {
            let outer = plan.children.pop().expect("inl outer child");
            let (outer, part) = rewrite(outer, spec, cfg);
            let outer = if part {
                wrap(outer, ExchangeMode::Merge, p)
            } else {
                outer
            };
            plan.children = vec![outer];
            (plan, false)
        }
        // Streaming unaries are transparent: exchanges go above them.
        PhysOp::Filter { .. } | PhysOp::Project { .. } | PhysOp::StatsCollector { .. } => {
            let child = plan.children.pop().expect("unary child");
            let (child, part) = rewrite(child, spec, cfg);
            plan.children = vec![child];
            (plan, part)
        }
        // Cached scans stay serial leaves like any other scan; the
        // driver reads the (small) cache table in one chunk.
        PhysOp::SeqScan { .. } | PhysOp::IndexScan { .. } | PhysOp::CachedScan { .. } => {
            (plan, false)
        }
        // Already-parallelized input (defensive): keep as-is.
        PhysOp::Exchange { mode, .. } => {
            let part = matches!(mode, ExchangeMode::Repartition { .. });
            (plan, part)
        }
    }
}

/// A subtree the driver can evaluate as parallel page-range chunks:
/// purely streaming operators over **exactly one** sequential scan
/// (filters, projections, collectors and index-nested-loops probes are
/// per-row, so running them per chunk and concatenating reproduces the
/// serial stream exactly; blocking operators would not).
pub(crate) fn chunkable(plan: &PhysPlan) -> Option<&PhysPlan> {
    fn walk<'a>(p: &'a PhysPlan, scan: &mut Option<&'a PhysPlan>, ok: &mut bool) {
        match &p.op {
            PhysOp::SeqScan { .. } => {
                if scan.is_some() {
                    *ok = false; // two scans: chunking one would be wrong
                } else {
                    *scan = Some(p);
                }
            }
            PhysOp::Filter { .. }
            | PhysOp::Project { .. }
            | PhysOp::StatsCollector { .. }
            | PhysOp::IndexNLJoin { .. } => {}
            _ => *ok = false,
        }
        if *ok {
            for c in &p.children {
                walk(c, scan, ok);
            }
        }
    }
    let mut scan = None;
    let mut ok = true;
    walk(plan, &mut scan, &mut ok);
    if ok {
        scan
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field, FileId, Schema};
    use mq_plan::ScanSpec;

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    fn scan(name: &str, rows: u64) -> PhysPlan {
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: name.into(),
                    file: FileId(0),
                    pages: 8,
                    rows,
                },
                filter: None,
            },
            vec![],
            Schema::new(vec![Field::qualified(name, "k", DataType::Int)]).unwrap(),
        );
        p.annot.est_rows = rows as f64;
        p
    }

    fn join(l: PhysPlan, r: PhysPlan) -> PhysPlan {
        let schema = l.schema.join(&r.schema);
        PhysPlan::new(
            PhysOp::HashJoin {
                build_keys: vec![0],
                probe_keys: vec![0],
            },
            vec![l, r],
            schema,
        )
    }

    fn count_exchanges(plan: &PhysPlan) -> (usize, usize, usize) {
        let (mut rep, mut mer, mut bro) = (0, 0, 0);
        plan.walk(&mut |n| {
            if let PhysOp::Exchange { mode, .. } = &n.op {
                match mode {
                    ExchangeMode::Repartition { .. } => rep += 1,
                    ExchangeMode::Merge => mer += 1,
                    ExchangeMode::Broadcast => bro += 1,
                }
            }
        });
        (rep, mer, bro)
    }

    #[test]
    fn large_join_gets_repartitions_and_root_merge() {
        let mut plan = join(scan("a", 10_000), scan("b", 10_000));
        plan.assign_ids();
        parallelize(&mut plan, &ParSpec::new(4), &cfg()).unwrap();
        let (rep, mer, bro) = count_exchanges(&plan);
        assert_eq!((rep, mer, bro), (2, 1, 0), "{plan}");
        // Root is the final merge.
        assert!(matches!(
            &plan.op,
            PhysOp::Exchange {
                mode: ExchangeMode::Merge,
                ..
            }
        ));
    }

    #[test]
    fn tiny_build_is_broadcast() {
        let mut plan = join(scan("a", 10), scan("b", 10_000));
        plan.assign_ids();
        parallelize(&mut plan, &ParSpec::new(4), &cfg()).unwrap();
        let (rep, mer, bro) = count_exchanges(&plan);
        assert_eq!((rep, mer, bro), (1, 1, 1), "{plan}");
    }

    #[test]
    fn grouped_aggregate_repartitions_on_group_keys() {
        let base = scan("a", 5_000);
        let schema = base.schema.clone();
        let mut plan = PhysPlan::new(
            PhysOp::HashAggregate {
                group: vec![0],
                aggs: vec![],
            },
            vec![base],
            schema,
        );
        plan.assign_ids();
        parallelize(&mut plan, &ParSpec::new(2), &cfg()).unwrap();
        let (rep, mer, _) = count_exchanges(&plan);
        assert_eq!((rep, mer), (1, 1), "{plan}");
        // The repartition routes on the group column.
        let mut saw = false;
        plan.walk(&mut |n| {
            if let PhysOp::Exchange {
                mode: ExchangeMode::Repartition { keys },
                ..
            } = &n.op
            {
                assert_eq!(keys, &vec![0]);
                saw = true;
            }
        });
        assert!(saw);
    }

    #[test]
    fn scalar_aggregate_over_scan_gets_chunked_merge() {
        let base = scan("a", 5_000);
        let schema = base.schema.clone();
        let mut plan = PhysPlan::new(
            PhysOp::HashAggregate {
                group: vec![],
                aggs: vec![],
            },
            vec![base],
            schema,
        );
        plan.assign_ids();
        parallelize(&mut plan, &ParSpec::new(4), &cfg()).unwrap();
        let (rep, mer, bro) = count_exchanges(&plan);
        assert_eq!((rep, mer, bro), (0, 1, 0), "{plan}");
        // The merge sits below the aggregate, not above it (the scalar
        // aggregate itself is serial, so no root merge either).
        assert!(matches!(&plan.op, PhysOp::HashAggregate { .. }));
    }

    #[test]
    fn chunkable_requires_exactly_one_seq_scan() {
        let single = scan("a", 100);
        assert!(chunkable(&single).is_some());
        let two = join(scan("a", 100), scan("b", 100));
        assert!(chunkable(&two).is_none());
    }

    #[test]
    fn exchanges_inserted_even_for_one_partition() {
        let mut plan = join(scan("a", 10_000), scan("b", 10_000));
        plan.assign_ids();
        parallelize(&mut plan, &ParSpec::new(1), &cfg()).unwrap();
        let (rep, mer, _) = count_exchanges(&plan);
        assert_eq!((rep, mer), (2, 1));
    }
}
