//! Snapshot container format: the byte-level half of `mq-persist`.
//!
//! A snapshot is one real file (the only real file the engine touches —
//! everything else lives on the simulated disk) holding a sequence of
//! named, length-prefixed, FNV-1a-checksummed sections:
//!
//! ```text
//! magic "MQSNAP01" (8 bytes)
//! section count    (u32 LE)
//! per section:
//!   name length    (u16 LE) + name bytes (UTF-8)
//!   payload length (u64 LE) + payload bytes
//!   checksum       (u64 LE, FNV-1a over name + payload)
//! ```
//!
//! Writers never touch the destination in place: the bytes go to
//! `<path>.tmp` and an atomic rename publishes them, so a crash at any
//! point leaves the previous snapshot loadable. Each section write and
//! the final rename are save points: [`mq_common::fault::on_segment_boundary`]
//! is consulted before each, so a seeded [`mq_common::fault::FaultKind::Crash`]
//! schedule can kill the save at every boundary and a counting run
//! (`ops_at(FaultSite::SegmentBoundary)`) can enumerate them.
//!
//! Section payload encoding is left to the caller; [`SectionWriter`]
//! and [`SectionReader`] provide the primitive codecs (integers, floats,
//! strings, [`Value`]s, [`Row`]s) both sides share.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use mq_common::fault::on_segment_boundary;
use mq_common::{MqError, Result, Row, Value};

/// Magic + format version. Bump the trailing digits on any layout
/// change; a reader seeing an unknown magic refuses the file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MQSNAP01";

/// FNV-1a over a byte slice — the same cheap, dependency-free digest
/// the chaos harness uses for result fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corrupt(msg: impl Into<String>) -> MqError {
    MqError::Storage(format!("snapshot corrupt: {}", msg.into()))
}

/// Append-only payload builder for one section.
#[derive(Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// Fresh empty payload.
    pub fn new() -> SectionWriter {
        SectionWriter::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte (tags, booleans).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` (counts), little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (versions, fingerprints), little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` (statistics), little-endian bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a [`Value`] in its page binary encoding.
    pub fn value(&mut self, v: &Value) {
        v.encode(&mut self.buf);
    }

    /// Append an optional [`Value`] (presence byte + encoding).
    pub fn opt_value(&mut self, v: &Option<Value>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.value(v);
            }
            None => self.u8(0),
        }
    }

    /// Append a [`Row`] in its page binary encoding.
    pub fn row(&mut self, r: &Row) {
        r.encode(&mut self.buf);
    }
}

/// Cursor over one section's payload; every read is bounds-checked and
/// reports a typed corruption error instead of panicking.
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> SectionReader<'a> {
        SectionReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated section"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8 in string"))
    }

    /// Read one [`Value`].
    pub fn value(&mut self) -> Result<Value> {
        let (v, used) = Value::decode(&self.buf[self.pos..])
            .map_err(|e| corrupt(format!("bad value encoding: {e}")))?;
        self.pos += used;
        Ok(v)
    }

    /// Read an optional [`Value`].
    pub fn opt_value(&mut self) -> Result<Option<Value>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.value()?)),
            t => Err(corrupt(format!("bad option tag {t}"))),
        }
    }

    /// Read one [`Row`].
    pub fn row(&mut self) -> Result<Row> {
        let (r, used) = Row::decode(&self.buf[self.pos..])
            .map_err(|e| corrupt(format!("bad row encoding: {e}")))?;
        self.pos += used;
        Ok(r)
    }
}

/// Serialize the sections into the container byte layout.
fn assemble(sections: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (name, payload) in sections {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        let mut digest = fnv1a(name.as_bytes());
        digest ^= fnv1a(payload).rotate_left(17);
        out.extend_from_slice(&digest.to_le_bytes());
    }
    out
}

/// Write a snapshot atomically: the bytes go to `<path>.tmp`, then one
/// rename publishes them. Every section and the rename itself are save
/// points — a [`FaultKind::Crash`](mq_common::fault::FaultKind) fired
/// at any of them (via a scoped [`FaultInjector`](mq_common::fault::FaultInjector))
/// aborts before the rename, so the previous snapshot at `path` stays
/// loadable. The abandoned temp file is the crash's only debris.
pub fn write_snapshot(path: &Path, sections: &[(String, Vec<u8>)]) -> Result<()> {
    let tmp = tmp_path(path);
    let io_err = |op: &str, e: std::io::Error| {
        MqError::Storage(format!("snapshot {op} {}: {e}", tmp.display()))
    };
    let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
    let mut header = Vec::new();
    header.extend_from_slice(SNAPSHOT_MAGIC);
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    file.write_all(&header).map_err(|e| io_err("write", e))?;
    // One assembled image, replayed section by section so each save
    // point sits between two sections (data-before-manifest discipline:
    // nothing at `path` changes until the whole image is on disk).
    let image = assemble(sections);
    let mut off = header.len();
    for (name, payload) in sections {
        // Save point: a scheduled crash kills the save here, before
        // this section's bytes reach even the temp file.
        on_segment_boundary()?;
        let len = 2 + name.len() + 8 + payload.len() + 8;
        file.write_all(&image[off..off + len])
            .map_err(|e| io_err("write", e))?;
        off += len;
    }
    file.sync_all().ok();
    drop(file);
    // Save point: the last kill site before the rename publishes the
    // new snapshot. Crashing here must leave the old file untouched.
    on_segment_boundary()?;
    fs::rename(&tmp, path)
        .map_err(|e| MqError::Storage(format!("snapshot rename to {}: {e}", path.display())))?;
    Ok(())
}

/// The temp-file path a [`write_snapshot`] stages into.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// Read and validate a snapshot: magic, section framing and per-section
/// checksums. Any mismatch is a typed [`MqError::Storage`] error — a
/// corrupted snapshot is refused whole, never half-loaded.
pub fn read_snapshot(path: &Path) -> Result<Vec<(String, Vec<u8>)>> {
    let bytes = fs::read(path)
        .map_err(|e| MqError::Storage(format!("snapshot read {}: {e}", path.display())))?;
    parse_snapshot(&bytes)
}

/// [`read_snapshot`] over an in-memory image (exposed for tests and
/// the chaos harness).
pub fn parse_snapshot(bytes: &[u8]) -> Result<Vec<(String, Vec<u8>)>> {
    if bytes.len() < 12 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic (not a snapshot, or unknown version)"));
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let mut pos = 12usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| corrupt("truncated section table"))?;
        let s = &bytes[pos..end];
        pos = end;
        Ok(s)
    };
    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = u16::from_le_bytes(take(2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(name_len)?.to_vec())
            .map_err(|_| corrupt("invalid utf-8 in section name"))?;
        let payload_len = u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize;
        let payload = take(payload_len)?.to_vec();
        let stored = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let mut digest = fnv1a(name.as_bytes());
        digest ^= fnv1a(&payload).rotate_left(17);
        if digest != stored {
            return Err(corrupt(format!("checksum mismatch in section '{name}'")));
        }
        sections.push((name, payload));
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after last section"));
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::fault::{FaultInjector, FaultKind, FaultSite, FaultSpec};

    fn tmp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mq_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}", std::process::id()))
    }

    fn sample_sections() -> Vec<(String, Vec<u8>)> {
        let mut w = SectionWriter::new();
        w.u64(42);
        w.str("hello");
        w.value(&Value::str("x"));
        w.row(&Row::new(vec![Value::Int(1), Value::Null]));
        vec![
            ("meta".to_string(), w.into_bytes()),
            ("data:t".to_string(), vec![1, 2, 3]),
        ]
    }

    #[test]
    fn roundtrip() {
        let path = tmp_file("roundtrip");
        write_snapshot(&path, &sample_sections()).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "meta");
        let mut r = SectionReader::new(&back[0].1);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.value().unwrap(), Value::str("x"));
        assert_eq!(r.row().unwrap().len(), 2);
        assert!(r.is_exhausted());
        assert_eq!(back[1].1, vec![1, 2, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_refused_with_typed_error() {
        let path = tmp_file("corrupt");
        write_snapshot(&path, &sample_sections()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = parse_snapshot(&bytes).unwrap_err();
        assert_eq!(err.kind(), "storage");
        assert!(err.to_string().contains("snapshot corrupt"), "{err}");
        // Truncation too.
        let err = parse_snapshot(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), "storage");
        // And a non-snapshot file.
        assert!(parse_snapshot(b"not a snapshot").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_mid_save_leaves_previous_snapshot_loadable() {
        let path = tmp_file("crash_save");
        write_snapshot(&path, &sample_sections()).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Counting run: how many save points does a save pass?
        let counter = FaultInjector::new(vec![], None);
        {
            let _scope = counter.enter_scope();
            write_snapshot(&path, &sample_sections()).unwrap();
        }
        let points = counter.ops_at(FaultSite::SegmentBoundary);
        assert!(points >= 3, "sections + rename, got {points}");

        for at in 1..=points {
            let inj = FaultInjector::new(
                vec![FaultSpec {
                    site: FaultSite::SegmentBoundary,
                    kind: FaultKind::Crash,
                    at,
                }],
                None,
            );
            let _scope = inj.enter_scope();
            let err = write_snapshot(&path, &sample_sections()).unwrap_err();
            assert!(matches!(err, MqError::Crash(_)), "kill point {at}: {err}");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                good,
                "kill point {at} damaged the published snapshot"
            );
            read_snapshot(&path).unwrap();
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp_path(&path)).ok();
    }
}
