//! Heap files: ordered lists of slotted pages holding encoded rows.
//!
//! Append-oriented, matching the workload (bulk load, scans, temp
//! spills). The page list and row count live in memory as file
//! metadata; page contents go through the buffer pool.

use mq_common::{MqError, PageId, Result, Rid, Row};

use crate::buffer::BufferPool;
use crate::page;

/// Metadata for one heap file.
#[derive(Debug, Clone, Default)]
pub struct HeapFile {
    pages: Vec<PageId>,
    rows: u64,
}

impl HeapFile {
    /// An empty heap file.
    pub fn new() -> HeapFile {
        HeapFile::default()
    }

    /// Pages in file order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Total rows appended.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Append a row, allocating a fresh page when the last one is full.
    pub fn append(&mut self, pool: &BufferPool, row: &Row) -> Result<Rid> {
        let bytes = row.to_bytes();
        if bytes.len() + 8 > pool.disk().page_size() {
            return Err(MqError::Storage(format!(
                "row of {} bytes exceeds page size {}",
                bytes.len(),
                pool.disk().page_size()
            )));
        }
        if let Some(&last) = self.pages.last() {
            let slot = pool.with_page_mut(last, |data| page::insert(data, &bytes))?;
            if let Some(slot) = slot {
                self.rows += 1;
                return Ok(Rid::new(last, slot));
            }
        }
        let pid = pool.alloc_page()?;
        let slot = match pool.with_page_mut(pid, |data| {
            page::init(data);
            page::insert(data, &bytes)
        }) {
            Ok(slot) => slot,
            Err(e) => {
                // The fresh page has no owner yet; return it to the
                // disk rather than orphaning it.
                pool.discard(pid);
                return Err(e);
            }
        };
        self.pages.push(pid);
        match slot {
            Some(slot) => {
                self.rows += 1;
                Ok(Rid::new(pid, slot))
            }
            None => Err(MqError::Storage(
                "row does not fit in a fresh page (bug)".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use mq_common::{SimClock, Value};
    use std::sync::Arc;

    fn pool() -> Arc<BufferPool> {
        let disk = Arc::new(SimDisk::new(512, SimClock::new()));
        Arc::new(BufferPool::new(disk, 16))
    }

    #[test]
    fn append_many_pages() {
        let pool = pool();
        let mut hf = HeapFile::new();
        for i in 0..200i64 {
            hf.append(
                &pool,
                &Row::new(vec![Value::Int(i), Value::str("xxxxxxxxxx")]),
            )
            .unwrap();
        }
        assert_eq!(hf.rows(), 200);
        assert!(hf.pages().len() > 1, "should have spilled to more pages");
    }

    #[test]
    fn oversized_row_rejected() {
        let pool = pool();
        let mut hf = HeapFile::new();
        let big = "x".repeat(600);
        let err = hf
            .append(&pool, &Row::new(vec![Value::str(big)]))
            .unwrap_err();
        assert_eq!(err.kind(), "storage");
    }

    #[test]
    fn rids_are_dense_per_page() {
        let pool = pool();
        let mut hf = HeapFile::new();
        let r0 = hf.append(&pool, &Row::new(vec![Value::Int(0)])).unwrap();
        let r1 = hf.append(&pool, &Row::new(vec![Value::Int(1)])).unwrap();
        assert_eq!(r0.page, r1.page);
        assert_eq!(r0.slot + 1, r1.slot);
    }
}
