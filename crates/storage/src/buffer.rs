//! The buffer pool: a fixed-capacity LRU page cache.
//!
//! Physical I/O happens only here — a miss reads from the
//! [`crate::disk::SimDisk`], an eviction of a dirty frame
//! writes back. The experiments' I/O counts therefore reflect real
//! locality: a table that fits in the pool scans for free the second
//! time (the paper's 32 MB pool behaved the same way).
//!
//! Access is closure-based (`with_page` / `with_page_mut`) so page
//! borrows can never outlive the pool lock, which keeps the API
//! misuse-proof without reference counting. A frame counts as pinned
//! exactly while its access closure runs; the counter only stays
//! non-zero if a closure unwinds, which `Engine::audit` flags.
//!
//! Fault injection hooks in here at the *logical* access level: every
//! `with_page`/`with_page_mut` consults the thread's scoped
//! [`mq_common::fault`] injector before touching pool state. Physical
//! reads/writes (misses, evictions, flushes) are deliberately not
//! instrumented — they depend on shared pool state and worker
//! interleaving, which would break schedule reproducibility.

use std::collections::HashMap;

use parking_lot::Mutex;
use std::sync::Arc;

use mq_common::{MqError, PageId, Result};

use crate::disk::SimDisk;

/// LRU page cache over the simulated disk.
#[derive(Debug)]
pub struct BufferPool {
    disk: Arc<SimDisk>,
    capacity: usize,
    inner: Mutex<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    frames: HashMap<PageId, Frame>,
    /// LRU order: front = coldest. Contains every resident page once.
    lru: Vec<PageId>,
    hits: u64,
    misses: u64,
    /// Frames currently inside an access closure. Non-zero at
    /// quiescence means an access unwound without unpinning.
    pins: u64,
}

#[derive(Debug)]
struct Frame {
    data: Box<[u8]>,
    dirty: bool,
}

impl BufferPool {
    /// Create a pool caching at most `capacity` pages.
    pub fn new(disk: Arc<SimDisk>, capacity: usize) -> BufferPool {
        assert!(capacity >= 2, "buffer pool needs at least 2 frames");
        BufferPool {
            disk,
            capacity,
            inner: Mutex::new(PoolInner::default()),
        }
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate a fresh page, resident and dirty (no disk I/O yet).
    pub fn alloc_page(&self) -> Result<PageId> {
        let pid = self.disk.alloc();
        let mut inner = self.inner.lock();
        if let Err(e) = self.make_room(&mut inner) {
            let _ = self.disk.free(pid);
            return Err(e);
        }
        inner.frames.insert(
            pid,
            Frame {
                data: vec![0u8; self.disk.page_size()].into_boxed_slice(),
                dirty: true,
            },
        );
        inner.lru.push(pid);
        Ok(pid)
    }

    /// Run `f` over the page's bytes (read-only).
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        mq_common::fault::on_page_read()?;
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, pid)?;
        Self::touch(&mut inner, pid);
        inner.pins += 1;
        let r = match inner.frames.get(&pid) {
            Some(frame) => f(&frame.data),
            None => {
                inner.pins -= 1;
                return Err(MqError::Storage(format!(
                    "page {} not resident after fault-in",
                    pid.0
                )));
            }
        };
        inner.pins -= 1;
        Ok(r)
    }

    /// Run `f` over the page's bytes mutably; marks the frame dirty.
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        mq_common::fault::on_page_write()?;
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, pid)?;
        Self::touch(&mut inner, pid);
        inner.pins += 1;
        let r = match inner.frames.get_mut(&pid) {
            Some(frame) => {
                frame.dirty = true;
                f(&mut frame.data)
            }
            None => {
                inner.pins -= 1;
                return Err(MqError::Storage(format!(
                    "page {} not resident after fault-in",
                    pid.0
                )));
            }
        };
        inner.pins -= 1;
        Ok(r)
    }

    /// Drop a page entirely: evict without write-back and free on disk.
    /// Used when temp files are destroyed.
    pub fn discard(&self, pid: PageId) {
        let mut inner = self.inner.lock();
        if inner.frames.remove(&pid).is_some() {
            inner.lru.retain(|&p| p != pid);
        }
        // Freeing an already-freed page is tolerated here because
        // discard is called from cleanup paths.
        let _ = self.disk.free(pid);
    }

    /// Write back every dirty frame (keeps them resident).
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let pids: Vec<PageId> = inner.frames.keys().copied().collect();
        for pid in pids {
            let Some(frame) = inner.frames.get_mut(&pid) else {
                continue; // evicted between listing and flush: nothing to write
            };
            if frame.dirty {
                self.disk.write(pid, &frame.data)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// (hits, misses) counters — diagnostics.
    pub fn hit_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Frames currently pinned by an access closure. At quiescence
    /// this must be zero; anything else means an access closure
    /// unwound mid-flight (`Engine::audit` checks this).
    pub fn pinned(&self) -> u64 {
        self.inner.lock().pins
    }

    fn ensure_resident(&self, inner: &mut PoolInner, pid: PageId) -> Result<()> {
        if inner.frames.contains_key(&pid) {
            inner.hits += 1;
            return Ok(());
        }
        inner.misses += 1;
        self.make_room(inner)?;
        let data = self.disk.read(pid)?;
        inner.frames.insert(pid, Frame { data, dirty: false });
        inner.lru.push(pid);
        Ok(())
    }

    fn make_room(&self, inner: &mut PoolInner) -> Result<()> {
        while inner.frames.len() >= self.capacity {
            let victim = match inner.lru.first().copied() {
                Some(v) => v,
                None => {
                    return Err(MqError::Storage(
                        "buffer pool full with empty LRU (bug)".into(),
                    ))
                }
            };
            // Write back *before* removing the frame: if the write
            // fails, the page contents stay resident instead of being
            // silently lost.
            if let Some(frame) = inner.frames.get_mut(&victim) {
                if frame.dirty {
                    self.disk.write(victim, &frame.data)?;
                    frame.dirty = false;
                }
            }
            inner.lru.remove(0);
            inner.frames.remove(&victim);
        }
        Ok(())
    }

    fn touch(inner: &mut PoolInner, pid: PageId) {
        if let Some(pos) = inner.lru.iter().position(|&p| p == pid) {
            inner.lru.remove(pos);
        }
        inner.lru.push(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::SimClock;

    fn pool(capacity: usize) -> (Arc<BufferPool>, SimClock) {
        let clock = SimClock::new();
        let disk = Arc::new(SimDisk::new(256, clock.clone()));
        (Arc::new(BufferPool::new(disk, capacity)), clock)
    }

    #[test]
    fn alloc_write_read_back() {
        let (p, _) = pool(4);
        let pid = p.alloc_page().unwrap();
        p.with_page_mut(pid, |d| d[0] = 42).unwrap();
        let v = p.with_page(pid, |d| d[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_writes_back_and_reload_reads() {
        let (p, clock) = pool(2);
        let a = p.alloc_page().unwrap();
        p.with_page_mut(a, |d| d[1] = 7).unwrap();
        // Fill past capacity to force eviction of `a`.
        let _b = p.alloc_page().unwrap();
        let _c = p.alloc_page().unwrap();
        let snap = clock.snapshot();
        assert!(snap.pages_written >= 1, "dirty eviction must write");
        // Reading `a` again must hit the disk and see the data.
        let before = clock.snapshot();
        let v = p.with_page(a, |d| d[1]).unwrap();
        assert_eq!(v, 7);
        let delta = clock.snapshot().since(&before);
        assert_eq!(delta.pages_read, 1);
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let (p, clock) = pool(3);
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        let c = p.alloc_page().unwrap();
        p.flush_all().unwrap();
        // Touch `a` so `b` is the LRU victim.
        p.with_page(a, |_| ()).unwrap();
        let _d = p.alloc_page().unwrap(); // evicts b
        let before = clock.snapshot();
        p.with_page(a, |_| ()).unwrap();
        p.with_page(c, |_| ()).unwrap();
        let delta = clock.snapshot().since(&before);
        assert_eq!(delta.pages_read, 0, "a and c stayed resident");
        let before = clock.snapshot();
        p.with_page(b, |_| ()).unwrap();
        let delta = clock.snapshot().since(&before);
        assert_eq!(delta.pages_read, 1, "b was evicted");
    }

    #[test]
    fn clean_eviction_does_not_write() {
        let (p, clock) = pool(2);
        let a = p.alloc_page().unwrap();
        p.flush_all().unwrap();
        let w0 = clock.snapshot().pages_written;
        // a is clean now; touch it read-only, then evict it.
        p.with_page(a, |_| ()).unwrap();
        let _b = p.alloc_page().unwrap();
        let _c = p.alloc_page().unwrap(); // evicts a (clean)
                                          // Evicting the clean frame must not write anything.
        let w1 = clock.snapshot().pages_written;
        assert_eq!(w1 - w0, 0);
    }

    #[test]
    fn hit_ratio_counters() {
        let (p, _) = pool(4);
        let a = p.alloc_page().unwrap();
        for _ in 0..10 {
            p.with_page(a, |_| ()).unwrap();
        }
        let (hits, misses) = p.hit_stats();
        assert_eq!(hits, 10);
        assert_eq!(misses, 0);
    }

    #[test]
    fn injected_fault_surfaces_before_pool_state_changes() {
        use mq_common::fault::{FaultInjector, FaultKind, FaultSite, FaultSpec};
        let (p, _) = pool(4);
        let a = p.alloc_page().unwrap();
        p.with_page_mut(a, |d| d[0] = 9).unwrap();
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::PageRead,
                kind: FaultKind::Permanent,
                at: 1,
            }],
            None,
        );
        let _scope = inj.enter_scope();
        let err = p.with_page(a, |d| d[0]).unwrap_err();
        assert_eq!(err.kind(), "storage");
        assert_eq!(p.pinned(), 0, "failed access leaves no pin");
        // The schedule has fired; the next read sees intact data.
        assert_eq!(p.with_page(a, |d| d[0]).unwrap(), 9);
    }

    #[test]
    fn pins_return_to_zero() {
        let (p, _) = pool(4);
        let a = p.alloc_page().unwrap();
        p.with_page(a, |_| ()).unwrap();
        p.with_page_mut(a, |_| ()).unwrap();
        assert_eq!(p.pinned(), 0);
    }

    #[test]
    fn discard_removes_page() {
        let (p, _) = pool(4);
        let a = p.alloc_page().unwrap();
        p.discard(a);
        assert!(p.with_page(a, |_| ()).is_err());
        assert_eq!(p.resident(), 0);
    }
}
