//! The buffer pool: a fixed-capacity LRU page cache.
//!
//! Physical I/O happens only here — a miss reads from the
//! [`crate::disk::SimDisk`], an eviction of a dirty frame
//! writes back. The experiments' I/O counts therefore reflect real
//! locality: a table that fits in the pool scans for free the second
//! time (the paper's 32 MB pool behaved the same way).
//!
//! Access is closure-based (`with_page` / `with_page_mut`) so page
//! borrows can never outlive the pool lock, which keeps the API
//! misuse-proof without reference counting.

use std::collections::HashMap;

use parking_lot::Mutex;
use std::sync::Arc;

use mq_common::{MqError, PageId, Result};

use crate::disk::SimDisk;

/// LRU page cache over the simulated disk.
#[derive(Debug)]
pub struct BufferPool {
    disk: Arc<SimDisk>,
    capacity: usize,
    inner: Mutex<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    frames: HashMap<PageId, Frame>,
    /// LRU order: front = coldest. Contains every resident page once.
    lru: Vec<PageId>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Frame {
    data: Box<[u8]>,
    dirty: bool,
}

impl BufferPool {
    /// Create a pool caching at most `capacity` pages.
    pub fn new(disk: Arc<SimDisk>, capacity: usize) -> BufferPool {
        assert!(capacity >= 2, "buffer pool needs at least 2 frames");
        BufferPool {
            disk,
            capacity,
            inner: Mutex::new(PoolInner::default()),
        }
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate a fresh page, resident and dirty (no disk I/O yet).
    pub fn alloc_page(&self) -> Result<PageId> {
        let pid = self.disk.alloc();
        let mut inner = self.inner.lock();
        self.make_room(&mut inner)?;
        inner.frames.insert(
            pid,
            Frame {
                data: vec![0u8; self.disk.page_size()].into_boxed_slice(),
                dirty: true,
            },
        );
        inner.lru.push(pid);
        Ok(pid)
    }

    /// Run `f` over the page's bytes (read-only).
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, pid)?;
        Self::touch(&mut inner, pid);
        let frame = inner.frames.get(&pid).expect("resident");
        Ok(f(&frame.data))
    }

    /// Run `f` over the page's bytes mutably; marks the frame dirty.
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, pid)?;
        Self::touch(&mut inner, pid);
        let frame = inner.frames.get_mut(&pid).expect("resident");
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Drop a page entirely: evict without write-back and free on disk.
    /// Used when temp files are destroyed.
    pub fn discard(&self, pid: PageId) {
        let mut inner = self.inner.lock();
        if inner.frames.remove(&pid).is_some() {
            inner.lru.retain(|&p| p != pid);
        }
        // Freeing an already-freed page is tolerated here because
        // discard is called from cleanup paths.
        let _ = self.disk.free(pid);
    }

    /// Write back every dirty frame (keeps them resident).
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let pids: Vec<PageId> = inner.frames.keys().copied().collect();
        for pid in pids {
            let frame = inner.frames.get_mut(&pid).expect("listed");
            if frame.dirty {
                self.disk.write(pid, &frame.data)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// (hits, misses) counters — diagnostics.
    pub fn hit_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }

    fn ensure_resident(&self, inner: &mut PoolInner, pid: PageId) -> Result<()> {
        if inner.frames.contains_key(&pid) {
            inner.hits += 1;
            return Ok(());
        }
        inner.misses += 1;
        self.make_room(inner)?;
        let data = self.disk.read(pid)?;
        inner.frames.insert(pid, Frame { data, dirty: false });
        inner.lru.push(pid);
        Ok(())
    }

    fn make_room(&self, inner: &mut PoolInner) -> Result<()> {
        while inner.frames.len() >= self.capacity {
            let victim = match inner.lru.first().copied() {
                Some(v) => v,
                None => {
                    return Err(MqError::Storage(
                        "buffer pool full with empty LRU (bug)".into(),
                    ))
                }
            };
            inner.lru.remove(0);
            if let Some(frame) = inner.frames.remove(&victim) {
                if frame.dirty {
                    self.disk.write(victim, &frame.data)?;
                }
            }
        }
        Ok(())
    }

    fn touch(inner: &mut PoolInner, pid: PageId) {
        if let Some(pos) = inner.lru.iter().position(|&p| p == pid) {
            inner.lru.remove(pos);
        }
        inner.lru.push(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::SimClock;

    fn pool(capacity: usize) -> (Arc<BufferPool>, SimClock) {
        let clock = SimClock::new();
        let disk = Arc::new(SimDisk::new(256, clock.clone()));
        (Arc::new(BufferPool::new(disk, capacity)), clock)
    }

    #[test]
    fn alloc_write_read_back() {
        let (p, _) = pool(4);
        let pid = p.alloc_page().unwrap();
        p.with_page_mut(pid, |d| d[0] = 42).unwrap();
        let v = p.with_page(pid, |d| d[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_writes_back_and_reload_reads() {
        let (p, clock) = pool(2);
        let a = p.alloc_page().unwrap();
        p.with_page_mut(a, |d| d[1] = 7).unwrap();
        // Fill past capacity to force eviction of `a`.
        let _b = p.alloc_page().unwrap();
        let _c = p.alloc_page().unwrap();
        let snap = clock.snapshot();
        assert!(snap.pages_written >= 1, "dirty eviction must write");
        // Reading `a` again must hit the disk and see the data.
        let before = clock.snapshot();
        let v = p.with_page(a, |d| d[1]).unwrap();
        assert_eq!(v, 7);
        let delta = clock.snapshot().since(&before);
        assert_eq!(delta.pages_read, 1);
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let (p, clock) = pool(3);
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        let c = p.alloc_page().unwrap();
        p.flush_all().unwrap();
        // Touch `a` so `b` is the LRU victim.
        p.with_page(a, |_| ()).unwrap();
        let _d = p.alloc_page().unwrap(); // evicts b
        let before = clock.snapshot();
        p.with_page(a, |_| ()).unwrap();
        p.with_page(c, |_| ()).unwrap();
        let delta = clock.snapshot().since(&before);
        assert_eq!(delta.pages_read, 0, "a and c stayed resident");
        let before = clock.snapshot();
        p.with_page(b, |_| ()).unwrap();
        let delta = clock.snapshot().since(&before);
        assert_eq!(delta.pages_read, 1, "b was evicted");
    }

    #[test]
    fn clean_eviction_does_not_write() {
        let (p, clock) = pool(2);
        let a = p.alloc_page().unwrap();
        p.flush_all().unwrap();
        let w0 = clock.snapshot().pages_written;
        // a is clean now; touch it read-only, then evict it.
        p.with_page(a, |_| ()).unwrap();
        let _b = p.alloc_page().unwrap();
        let _c = p.alloc_page().unwrap(); // evicts a (clean)
                                          // Evicting the clean frame must not write anything.
        let w1 = clock.snapshot().pages_written;
        assert_eq!(w1 - w0, 0);
    }

    #[test]
    fn hit_ratio_counters() {
        let (p, _) = pool(4);
        let a = p.alloc_page().unwrap();
        for _ in 0..10 {
            p.with_page(a, |_| ()).unwrap();
        }
        let (hits, misses) = p.hit_stats();
        assert_eq!(hits, 10);
        assert_eq!(misses, 0);
    }

    #[test]
    fn discard_removes_page() {
        let (p, _) = pool(4);
        let a = p.alloc_page().unwrap();
        p.discard(a);
        assert!(p.with_page(a, |_| ()).is_err());
        assert_eq!(p.resident(), 0);
    }
}
