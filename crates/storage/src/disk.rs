//! The simulated disk.
//!
//! Pages live in host memory, but every read and write charges the
//! shared [`SimClock`] — this is the root of the deterministic cost
//! accounting described in DESIGN.md. Freed pages go on a free list and
//! are reused, so temp-file churn (hash-join spills, sort runs,
//! materialized intermediates) does not grow the "disk" unboundedly.

use parking_lot::Mutex;

use mq_common::{MqError, PageId, Result, SimClock};

/// A growable array of fixed-size pages with I/O cost accounting.
#[derive(Debug)]
pub struct SimDisk {
    page_size: usize,
    clock: SimClock,
    state: Mutex<DiskState>,
}

#[derive(Debug, Default)]
struct DiskState {
    pages: Vec<Option<Box<[u8]>>>,
    free: Vec<u64>,
    reads: u64,
    writes: u64,
}

impl SimDisk {
    /// Create an empty disk with the given page size.
    pub fn new(page_size: usize, clock: SimClock) -> SimDisk {
        SimDisk {
            page_size,
            clock,
            state: Mutex::new(DiskState::default()),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Allocate a zeroed page. Allocation itself is not an I/O; the
    /// first write charges.
    pub fn alloc(&self) -> PageId {
        let mut st = self.state.lock();
        if let Some(idx) = st.free.pop() {
            st.pages[idx as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            PageId(idx)
        } else {
            st.pages
                .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
            PageId(st.pages.len() as u64 - 1)
        }
    }

    /// Return a page to the free list.
    pub fn free(&self, pid: PageId) -> Result<()> {
        let mut st = self.state.lock();
        let slot = st
            .pages
            .get_mut(pid.0 as usize)
            .ok_or_else(|| MqError::Storage(format!("free of unknown {pid}")))?;
        if slot.take().is_none() {
            return Err(MqError::Storage(format!("double free of {pid}")));
        }
        st.free.push(pid.0);
        Ok(())
    }

    /// Read a page into a fresh buffer, charging one physical read.
    pub fn read(&self, pid: PageId) -> Result<Box<[u8]>> {
        let mut st = self.state.lock();
        let data = st
            .pages
            .get(pid.0 as usize)
            .and_then(|p| p.as_ref())
            .ok_or_else(|| MqError::Storage(format!("read of unallocated {pid}")))?
            .clone();
        st.reads += 1;
        drop(st);
        self.clock.add_reads(1);
        Ok(data)
    }

    /// Write a page, charging one physical write.
    pub fn write(&self, pid: PageId, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(MqError::Storage(format!(
                "write of {} bytes to {pid} (page size {})",
                data.len(),
                self.page_size
            )));
        }
        let mut st = self.state.lock();
        let slot = st
            .pages
            .get_mut(pid.0 as usize)
            .ok_or_else(|| MqError::Storage(format!("write to unknown {pid}")))?;
        match slot {
            Some(p) => p.copy_from_slice(data),
            None => return Err(MqError::Storage(format!("write to freed {pid}"))),
        }
        st.writes += 1;
        drop(st);
        self.clock.add_writes(1);
        Ok(())
    }

    /// Number of currently allocated pages.
    pub fn allocated_pages(&self) -> usize {
        let st = self.state.lock();
        st.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Lifetime (reads, writes) counters.
    pub fn io_counts(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> (SimDisk, SimClock) {
        let clock = SimClock::new();
        (SimDisk::new(512, clock.clone()), clock)
    }

    #[test]
    fn write_read_roundtrip() {
        let (d, clock) = disk();
        let pid = d.alloc();
        let mut data = vec![0u8; 512];
        data[0] = 0xAB;
        data[511] = 0xCD;
        d.write(pid, &data).unwrap();
        let back = d.read(pid).unwrap();
        assert_eq!(&back[..], &data[..]);
        let snap = clock.snapshot();
        assert_eq!((snap.pages_read, snap.pages_written), (1, 1));
    }

    #[test]
    fn free_and_reuse() {
        let (d, _) = disk();
        let a = d.alloc();
        let b = d.alloc();
        assert_ne!(a, b);
        d.free(a).unwrap();
        assert_eq!(d.allocated_pages(), 1);
        let c = d.alloc();
        assert_eq!(c, a, "freed page id should be reused");
        // Reused page must be zeroed.
        d.write(c, &vec![7u8; 512]).unwrap();
        d.free(c).unwrap();
        let c2 = d.alloc();
        let back = d.read(c2).unwrap();
        assert!(back.iter().all(|&b| b == 0));
    }

    #[test]
    fn errors_on_bad_access() {
        let (d, _) = disk();
        assert!(d.read(PageId(5)).is_err());
        assert!(d.write(PageId(5), &vec![0; 512]).is_err());
        let p = d.alloc();
        assert!(d.write(p, &[0; 100]).is_err(), "short write");
        d.free(p).unwrap();
        assert!(d.free(p).is_err(), "double free");
        assert!(d.read(p).is_err(), "read after free");
    }

    #[test]
    fn alloc_is_free_of_charge() {
        let (d, clock) = disk();
        for _ in 0..100 {
            d.alloc();
        }
        let snap = clock.snapshot();
        assert_eq!(snap.io_total(), 0);
    }
}
