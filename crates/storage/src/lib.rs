//! # mq-storage — the storage substrate
//!
//! A single-node paged storage engine with *honest I/O accounting*: the
//! paper's experiments are driven by physical I/O (hash-join spill
//! passes, external-sort merge passes, materialization of intermediate
//! results), so this crate routes every page touch through a real LRU
//! buffer pool over a simulated disk, charging the shared
//! [`mq_common::SimClock`] on every physical read and write.
//!
//! Components:
//!
//! * [`disk::SimDisk`] — the simulated disk: stable page storage with
//!   alloc/free and per-access cost charging;
//! * [`page`] — slotted-page layout helpers (variable-length records);
//! * [`buffer::BufferPool`] — fixed-capacity LRU page cache with pin
//!   counts and dirty tracking;
//! * [`heap`] — append-oriented heap files holding encoded rows;
//! * [`btree::BTree`] — a paged B+-tree (non-unique, variable-length
//!   keys) powering index scans and indexed nested-loops joins;
//! * [`Storage`] — the facade the rest of the engine uses: files,
//!   indexes and temp files behind one handle.

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod heap;
pub mod page;
pub mod persist;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use mq_common::{
    EngineConfig, FileId, IndexId, MqError, PageId, Result, Rid, Row, SimClock, Value,
};

use btree::BTree;
use buffer::BufferPool;
use disk::SimDisk;
use heap::HeapFile;

/// The storage facade: owns the disk, the buffer pool, every heap file
/// and every B+-tree index. Cloning is cheap (shared handle).
#[derive(Debug, Clone)]
pub struct Storage {
    inner: Arc<StorageInner>,
}

#[derive(Debug)]
struct StorageInner {
    pool: Arc<BufferPool>,
    files: Mutex<HashMap<FileId, HeapFile>>,
    indexes: Mutex<HashMap<IndexId, BTree>>,
    /// Scratch tags: per-query ownership labels on in-flight temp
    /// files — the simulated equivalent of a per-query scratch
    /// directory. A crashed query's partial outputs are findable by
    /// tag even though nothing else references them; recovery sweeps
    /// exactly its own query's tag, so concurrent queries are safe.
    tags: Mutex<HashMap<FileId, String>>,
    next_file: Mutex<u32>,
    next_index: Mutex<u32>,
    page_size: usize,
}

impl Storage {
    /// Create a storage instance with the configured page size and
    /// buffer-pool capacity, charging `clock` for physical I/O.
    pub fn new(cfg: &EngineConfig, clock: SimClock) -> Storage {
        let disk = Arc::new(SimDisk::new(cfg.page_size, clock));
        let pool = Arc::new(BufferPool::new(disk, cfg.buffer_pool_pages));
        Storage {
            inner: Arc::new(StorageInner {
                pool,
                files: Mutex::new(HashMap::new()),
                indexes: Mutex::new(HashMap::new()),
                tags: Mutex::new(HashMap::new()),
                next_file: Mutex::new(0),
                next_index: Mutex::new(0),
                page_size: cfg.page_size,
            }),
        }
    }

    /// The buffer pool (exposed for diagnostics and tests).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.inner.pool
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    /// Create an empty heap file (table data or temp file).
    pub fn create_file(&self) -> FileId {
        let mut next = self.inner.next_file.lock();
        let id = FileId(*next);
        *next += 1;
        self.inner.files.lock().insert(id, HeapFile::new());
        id
    }

    /// Append a row to a heap file, returning its record id.
    pub fn append_row(&self, file: FileId, row: &Row) -> Result<Rid> {
        let mut files = self.inner.files.lock();
        let hf = files
            .get_mut(&file)
            .ok_or_else(|| MqError::NotFound(format!("{file}")))?;
        hf.append(&self.inner.pool, row)
    }

    /// Number of pages a file occupies.
    pub fn file_pages(&self, file: FileId) -> Result<usize> {
        let files = self.inner.files.lock();
        files
            .get(&file)
            .map(|hf| hf.pages().len())
            .ok_or_else(|| MqError::NotFound(format!("{file}")))
    }

    /// Number of rows in a file (tracked metadata, no I/O).
    pub fn file_rows(&self, file: FileId) -> Result<u64> {
        let files = self.inner.files.lock();
        files
            .get(&file)
            .map(HeapFile::rows)
            .ok_or_else(|| MqError::NotFound(format!("{file}")))
    }

    /// The page ids of a file, in order (for scans).
    pub fn file_page_list(&self, file: FileId) -> Result<Vec<PageId>> {
        let files = self.inner.files.lock();
        files
            .get(&file)
            .map(|hf| hf.pages().to_vec())
            .ok_or_else(|| MqError::NotFound(format!("{file}")))
    }

    /// Sequentially scan a heap file, decoding every row.
    pub fn scan_file(&self, file: FileId) -> Result<RowScan> {
        let pages = self.file_page_list(file)?;
        Ok(RowScan {
            storage: self.clone(),
            pages,
            page_idx: 0,
            buffered: Vec::new(),
            buf_idx: 0,
        })
    }

    /// Scan a contiguous slice of a heap file's pages: positions
    /// `page_lo..page_hi` of the file's page list (half-open, clamped
    /// to the file length). The partitioned driver carves a table scan
    /// into disjoint chunks with this; chunks concatenated in order
    /// replay exactly the rows of [`Storage::scan_file`].
    pub fn scan_file_range(&self, file: FileId, page_lo: usize, page_hi: usize) -> Result<RowScan> {
        let mut pages = self.file_page_list(file)?;
        let hi = page_hi.min(pages.len());
        let lo = page_lo.min(hi);
        pages.truncate(hi);
        pages.drain(..lo);
        Ok(RowScan {
            storage: self.clone(),
            pages,
            page_idx: 0,
            buffered: Vec::new(),
            buf_idx: 0,
        })
    }

    /// Fetch a single row by record id (used by index scans).
    pub fn fetch(&self, rid: Rid) -> Result<Row> {
        self.inner.pool.with_page(rid.page, |data| {
            let rec = page::get(data, rid.slot)
                .ok_or_else(|| MqError::Storage(format!("no record at {rid}")))?;
            Ok(Row::decode(rec)?.0)
        })?
    }

    /// Drop a heap file, returning its pages to the disk free list.
    pub fn drop_file(&self, file: FileId) -> Result<()> {
        let hf = self
            .inner
            .files
            .lock()
            .remove(&file)
            .ok_or_else(|| MqError::NotFound(format!("{file}")))?;
        self.inner.tags.lock().remove(&file);
        for pid in hf.pages() {
            self.inner.pool.discard(*pid);
        }
        Ok(())
    }

    /// Label a file with a scratch tag (per-query scratch ownership).
    /// Overwrites any previous tag. No-op if the file does not exist.
    pub fn tag_file(&self, file: FileId, tag: &str) {
        if self.inner.files.lock().contains_key(&file) {
            self.inner.tags.lock().insert(file, tag.to_string());
        }
    }

    /// Remove a file's scratch tag — called when ownership moves
    /// elsewhere (e.g. the file became a catalog-registered temp
    /// table, so it is no longer anonymous scratch).
    pub fn untag_file(&self, file: FileId) {
        self.inner.tags.lock().remove(&file);
    }

    /// Live files whose scratch tag starts with `prefix`, sorted by
    /// file id. Recovery uses this to find the partial outputs a
    /// crashed query abandoned mid-materialization.
    pub fn files_with_tag(&self, prefix: &str) -> Vec<FileId> {
        let tags = self.inner.tags.lock();
        let mut out: Vec<FileId> = tags
            .iter()
            .filter(|(_, t)| t.starts_with(prefix))
            .map(|(f, _)| *f)
            .collect();
        out.sort_by_key(|f| f.0);
        out
    }

    /// Live files whose scratch tag starts with `prefix`, with their
    /// tags, sorted by file id. The startup stale sweep uses the tag
    /// value to decide which query a leftover belongs to.
    pub fn tagged_files(&self, prefix: &str) -> Vec<(FileId, String)> {
        let tags = self.inner.tags.lock();
        let mut out: Vec<(FileId, String)> = tags
            .iter()
            .filter(|(_, t)| t.starts_with(prefix))
            .map(|(f, t)| (*f, t.clone()))
            .collect();
        out.sort_by_key(|(f, _)| f.0);
        out
    }

    /// Create an empty B+-tree index.
    pub fn create_index(&self) -> Result<IndexId> {
        let mut next = self.inner.next_index.lock();
        let id = IndexId(*next);
        *next += 1;
        let tree = BTree::create(&self.inner.pool)?;
        self.inner.indexes.lock().insert(id, tree);
        Ok(id)
    }

    /// Insert a key → rid pair into an index (duplicates allowed).
    pub fn index_insert(&self, index: IndexId, key: &Value, rid: Rid) -> Result<()> {
        let mut indexes = self.inner.indexes.lock();
        let tree = indexes
            .get_mut(&index)
            .ok_or_else(|| MqError::NotFound(format!("{index}")))?;
        tree.insert(&self.inner.pool, key, rid)
    }

    /// All rids whose key equals `key`.
    pub fn index_lookup(&self, index: IndexId, key: &Value) -> Result<Vec<Rid>> {
        let indexes = self.inner.indexes.lock();
        let tree = indexes
            .get(&index)
            .ok_or_else(|| MqError::NotFound(format!("{index}")))?;
        tree.lookup(&self.inner.pool, key)
    }

    /// All rids with `lo ≤ key ≤ hi` (either bound optional).
    pub fn index_range(
        &self,
        index: IndexId,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<Rid>> {
        let indexes = self.inner.indexes.lock();
        let tree = indexes
            .get(&index)
            .ok_or_else(|| MqError::NotFound(format!("{index}")))?;
        tree.range(&self.inner.pool, lo, hi)
    }

    /// Height of an index (root-to-leaf node count), for cost models.
    pub fn index_height(&self, index: IndexId) -> Result<usize> {
        let indexes = self.inner.indexes.lock();
        indexes
            .get(&index)
            .map(BTree::height)
            .ok_or_else(|| MqError::NotFound(format!("{index}")))
    }

    /// Number of live heap files.
    pub fn file_count(&self) -> usize {
        self.inner.files.lock().len()
    }

    /// Disk pages not owned by any live heap file or index. Metadata
    /// only — no I/O. At quiescence this must be zero: every allocated
    /// page is reachable from a file's page list or a B+-tree's page
    /// set, otherwise something leaked pages on an unwind path.
    pub fn orphan_pages(&self) -> usize {
        let owned_by_files: usize = {
            let files = self.inner.files.lock();
            files.values().map(|hf| hf.pages().len()).sum()
        };
        let owned_by_indexes: usize = {
            let indexes = self.inner.indexes.lock();
            indexes.values().map(BTree::page_count).sum()
        };
        self.inner
            .pool
            .disk()
            .allocated_pages()
            .saturating_sub(owned_by_files + owned_by_indexes)
    }
}

/// Iterator over a heap file's rows. Decodes one page's rows at a time
/// so page borrows never escape the buffer pool.
pub struct RowScan {
    storage: Storage,
    pages: Vec<PageId>,
    page_idx: usize,
    buffered: Vec<(Rid, Row)>,
    buf_idx: usize,
}

impl Iterator for RowScan {
    type Item = Result<(Rid, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.buf_idx < self.buffered.len() {
                let item = self.buffered[self.buf_idx].clone();
                self.buf_idx += 1;
                return Some(Ok(item));
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            self.buf_idx = 0;
            let decoded = self.storage.inner.pool.with_page(pid, |data| {
                let mut rows = Vec::new();
                for slot in 0..page::slot_count(data) {
                    if let Some(rec) = page::get(data, slot) {
                        match Row::decode(rec) {
                            Ok((row, _)) => rows.push((Rid::new(pid, slot), row)),
                            Err(e) => return Err(e),
                        }
                    }
                }
                Ok(rows)
            });
            match decoded {
                Ok(Ok(rows)) => self.buffered = rows,
                Ok(Err(e)) | Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> (Storage, SimClock, EngineConfig) {
        let cfg = EngineConfig::default();
        let clock = SimClock::new();
        (Storage::new(&cfg, clock.clone()), clock, cfg)
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::str(format!("payload-{i}"))])
    }

    #[test]
    fn append_and_scan_roundtrip() {
        let (s, _, _) = storage();
        let f = s.create_file();
        for i in 0..1000 {
            s.append_row(f, &row(i)).unwrap();
        }
        assert_eq!(s.file_rows(f).unwrap(), 1000);
        let rows: Vec<_> = s.scan_file(f).unwrap().map(|r| r.unwrap().1).collect();
        assert_eq!(rows.len(), 1000);
        assert_eq!(rows[0].get(0), &Value::Int(0));
        assert_eq!(rows[999].get(0), &Value::Int(999));
    }

    #[test]
    fn fetch_by_rid() {
        let (s, _, _) = storage();
        let f = s.create_file();
        let mut rids = Vec::new();
        for i in 0..100 {
            rids.push(s.append_row(f, &row(i)).unwrap());
        }
        let r = s.fetch(rids[42]).unwrap();
        assert_eq!(r.get(0), &Value::Int(42));
    }

    #[test]
    fn io_charged_on_cold_scan() {
        let cfg = EngineConfig {
            buffer_pool_pages: 8,
            ..EngineConfig::default()
        };
        let clock = SimClock::new();
        let s = Storage::new(&cfg, clock.clone());
        let f = s.create_file();
        for i in 0..5000 {
            s.append_row(f, &row(i)).unwrap();
        }
        let pages = s.file_pages(f).unwrap();
        assert!(pages > 8, "need more pages than the pool: {pages}");
        // Writing overflowed the pool, so evictions already wrote pages.
        let before = clock.snapshot();
        let n = s.scan_file(f).unwrap().count();
        assert_eq!(n, 5000);
        let delta = clock.snapshot().since(&before);
        // A cold scan must read nearly every page.
        assert!(
            delta.pages_read as usize >= pages - cfg.buffer_pool_pages,
            "reads {} vs pages {pages}",
            delta.pages_read
        );
    }

    #[test]
    fn hot_scan_is_free() {
        let (s, clock, _) = storage();
        let f = s.create_file();
        for i in 0..50 {
            s.append_row(f, &row(i)).unwrap();
        }
        let _ = s.scan_file(f).unwrap().count(); // warm the pool
        let before = clock.snapshot();
        let _ = s.scan_file(f).unwrap().count();
        let delta = clock.snapshot().since(&before);
        assert_eq!(delta.pages_read, 0, "hot scan should not touch disk");
    }

    #[test]
    fn drop_file_frees_pages() {
        let (s, _, _) = storage();
        let f = s.create_file();
        for i in 0..500 {
            s.append_row(f, &row(i)).unwrap();
        }
        s.drop_file(f).unwrap();
        assert!(s.scan_file(f).is_err());
        assert!(s.file_rows(f).is_err());
    }

    #[test]
    fn index_insert_lookup_range() {
        let (s, _, _) = storage();
        let f = s.create_file();
        let idx = s.create_index().unwrap();
        for i in 0..2000i64 {
            let rid = s.append_row(f, &row(i)).unwrap();
            s.index_insert(idx, &Value::Int(i % 100), rid).unwrap();
        }
        let hits = s.index_lookup(idx, &Value::Int(7)).unwrap();
        assert_eq!(hits.len(), 20);
        for rid in &hits {
            let r = s.fetch(*rid).unwrap();
            assert_eq!(r.get(0).as_i64().unwrap() % 100, 7);
        }
        let range = s
            .index_range(idx, Some(&Value::Int(10)), Some(&Value::Int(19)))
            .unwrap();
        assert_eq!(range.len(), 200);
        assert!(s.index_height(idx).unwrap() >= 1);
    }

    #[test]
    fn page_accounting_has_no_orphans() {
        let (s, _, _) = storage();
        let f = s.create_file();
        let idx = s.create_index().unwrap();
        for i in 0..2000i64 {
            let rid = s.append_row(f, &row(i)).unwrap();
            s.index_insert(idx, &Value::Int(i), rid).unwrap();
        }
        assert_eq!(s.orphan_pages(), 0);
        let g = s.create_file();
        for i in 0..500 {
            s.append_row(g, &row(i)).unwrap();
        }
        s.drop_file(g).unwrap();
        assert_eq!(s.orphan_pages(), 0, "dropping a file frees its pages");
    }

    #[test]
    fn failed_append_to_fresh_page_leaves_no_orphan() {
        use mq_common::fault::{FaultInjector, FaultKind, FaultSite, FaultSpec};
        let (s, _, _) = storage();
        let f = s.create_file();
        // Fault every write: the very first append allocates a page,
        // fails to write it, and must give the page back.
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::PageWrite,
                kind: FaultKind::Permanent,
                at: 1,
            }],
            None,
        );
        {
            let _scope = inj.enter_scope();
            assert!(s.append_row(f, &row(1)).is_err());
        }
        assert_eq!(s.orphan_pages(), 0);
        assert_eq!(s.file_pages(f).unwrap(), 0);
        // The schedule fired; the file works again afterwards.
        s.append_row(f, &row(2)).unwrap();
    }

    #[test]
    fn scratch_tags_track_ownership() {
        let (s, _, _) = storage();
        let a = s.create_file();
        let b = s.create_file();
        let c = s.create_file();
        s.tag_file(a, "tmp_reopt_q1_");
        s.tag_file(b, "tmp_reopt_q1_");
        s.tag_file(c, "tmp_reopt_q2_");
        assert_eq!(s.files_with_tag("tmp_reopt_q1_"), vec![a, b]);
        // Ownership handoff clears the tag.
        s.untag_file(a);
        assert_eq!(s.files_with_tag("tmp_reopt_q1_"), vec![b]);
        // Dropping a tagged file forgets the tag too.
        s.drop_file(b).unwrap();
        assert_eq!(s.files_with_tag("tmp_reopt_q1_"), Vec::<FileId>::new());
        assert_eq!(s.files_with_tag("tmp_reopt_q2_"), vec![c]);
        // Tagging a nonexistent file is a no-op.
        s.tag_file(FileId(999), "tmp_reopt_q9_");
        assert!(s.files_with_tag("tmp_reopt_q9_").is_empty());
    }

    #[test]
    fn missing_objects_error() {
        let (s, _, _) = storage();
        assert!(s.append_row(FileId(99), &row(1)).is_err());
        assert!(s.index_lookup(IndexId(99), &Value::Int(1)).is_err());
        assert!(s.drop_file(FileId(99)).is_err());
    }
}
