//! A paged B+-tree with variable-length keys and duplicate support.
//!
//! Backs index scans and the indexed nested-loops join the paper's
//! example plans use (Figure 1's `Indexed-Join`). Nodes are serialized
//! into buffer-pool pages, so every traversal pays honest I/O: a probe
//! costs `height` page touches, cached or not depending on pool state —
//! exactly the trade-off the optimizer's cost model must weigh against
//! hash joins.
//!
//! Implementation style: nodes are decoded into an in-memory
//! representation, modified, and re-encoded. Splits occur when the
//! encoded size would exceed the page. This favours obvious correctness
//! over in-place byte surgery; the I/O accounting is unaffected.

use mq_common::{MqError, PageId, Result, Rid, Value};

use crate::buffer::BufferPool;

/// B+-tree handle: root page and height. The tree's nodes live in the
/// buffer pool / disk.
#[derive(Debug, Clone)]
pub struct BTree {
    root: PageId,
    height: usize,
    /// Every page the tree has allocated, in allocation order. Lets
    /// owners account for (and reclaim) index pages — `Engine::audit`
    /// uses this to prove no disk page is orphaned.
    pages: Vec<PageId>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<Value>,
        rids: Vec<Rid>,
        next: PageId,
    },
    Internal {
        keys: Vec<Value>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn encoded_size(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => {
                11 + keys.iter().map(|k| k.encoded_len() + 10).sum::<usize>()
            }
            Node::Internal { keys, .. } => {
                11 + keys.iter().map(|k| k.encoded_len() + 8).sum::<usize>()
            }
        }
    }

    fn encode(&self, out: &mut [u8]) {
        let mut buf = Vec::with_capacity(self.encoded_size());
        match self {
            Node::Leaf { keys, rids, next } => {
                buf.push(1);
                buf.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                buf.extend_from_slice(&next.0.to_le_bytes());
                for (k, r) in keys.iter().zip(rids) {
                    k.encode(&mut buf);
                    buf.extend_from_slice(&r.page.0.to_le_bytes());
                    buf.extend_from_slice(&r.slot.to_le_bytes());
                }
            }
            Node::Internal { keys, children } => {
                buf.push(0);
                buf.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                buf.extend_from_slice(&children[0].0.to_le_bytes());
                for (k, c) in keys.iter().zip(&children[1..]) {
                    k.encode(&mut buf);
                    buf.extend_from_slice(&c.0.to_le_bytes());
                }
            }
        }
        debug_assert!(buf.len() <= out.len(), "node overflows page");
        out[..buf.len()].copy_from_slice(&buf);
    }

    fn decode(data: &[u8]) -> Result<Node> {
        let tag = need(data, 0, 1)?.first().copied().ok_or_else(|| {
            MqError::Storage("btree node truncated: missing leaf tag byte".to_string())
        })?;
        let is_leaf = tag == 1;
        let nk = need(data, 1, 2)?;
        let nkeys = u16::from_le_bytes([nk[0], nk[1]]) as usize;
        let first = read_u64(data, 3)?;
        let mut off = 11;
        if is_leaf {
            let mut keys = Vec::with_capacity(nkeys);
            let mut rids = Vec::with_capacity(nkeys);
            for _ in 0..nkeys {
                let (k, used) = Value::decode(&data[off..])?;
                off += used;
                let page = read_u64(data, off)?;
                let slot = read_u16(data, off + 8)?;
                off += 10;
                keys.push(k);
                rids.push(Rid::new(PageId(page), slot));
            }
            Ok(Node::Leaf {
                keys,
                rids,
                next: PageId(first),
            })
        } else {
            let mut keys = Vec::with_capacity(nkeys);
            let mut children = Vec::with_capacity(nkeys + 1);
            children.push(PageId(first));
            for _ in 0..nkeys {
                let (k, used) = Value::decode(&data[off..])?;
                off += used;
                let child = read_u64(data, off)?;
                off += 8;
                keys.push(k);
                children.push(PageId(child));
            }
            Ok(Node::Internal { keys, children })
        }
    }
}

/// `data[off..off+len]`, or a context-carrying storage error when the
/// page is shorter than the node header claims (torn or corrupt page).
fn need(data: &[u8], off: usize, len: usize) -> Result<&[u8]> {
    data.get(off..off + len).ok_or_else(|| {
        MqError::Storage(format!(
            "btree node truncated: need {len} bytes at offset {off} of a {}-byte page",
            data.len()
        ))
    })
}

fn read_u64(data: &[u8], off: usize) -> Result<u64> {
    let bytes: [u8; 8] = need(data, off, 8)?
        .try_into()
        .map_err(|_| MqError::Storage(format!("btree node: bad u64 slice at offset {off}")))?;
    Ok(u64::from_le_bytes(bytes))
}

fn read_u16(data: &[u8], off: usize) -> Result<u16> {
    let bytes: [u8; 2] = need(data, off, 2)?
        .try_into()
        .map_err(|_| MqError::Storage(format!("btree node: bad u16 slice at offset {off}")))?;
    Ok(u16::from_le_bytes(bytes))
}

impl BTree {
    /// Create an empty tree (a single empty leaf).
    pub fn create(pool: &BufferPool) -> Result<BTree> {
        let root = pool.alloc_page()?;
        let leaf = Node::Leaf {
            keys: Vec::new(),
            rids: Vec::new(),
            next: PageId::INVALID,
        };
        pool.with_page_mut(root, |d| leaf.encode(d))?;
        Ok(BTree {
            root,
            height: 1,
            pages: vec![root],
        })
    }

    /// Tree height (number of node levels).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Every page the tree occupies, in allocation order.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Number of pages the tree occupies.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn read_node(&self, pool: &BufferPool, pid: PageId) -> Result<Node> {
        pool.with_page(pid, Node::decode)?
    }

    fn write_node(&self, pool: &BufferPool, pid: PageId, node: &Node) -> Result<()> {
        if node.encoded_size() > pool.disk().page_size() {
            return Err(MqError::Internal(format!(
                "btree node of {} bytes exceeds page size (unsplit?)",
                node.encoded_size()
            )));
        }
        pool.with_page_mut(pid, |d| node.encode(d))
    }

    /// Insert `key → rid`. Duplicate keys are allowed.
    pub fn insert(&mut self, pool: &BufferPool, key: &Value, rid: Rid) -> Result<()> {
        if key.encoded_len() + 32 > pool.disk().page_size() / 4 {
            return Err(MqError::Storage(format!(
                "index key of {} bytes too large for page size {}",
                key.encoded_len(),
                pool.disk().page_size()
            )));
        }
        if let Some((sep, right)) = self.insert_rec(pool, self.root, key, rid)? {
            // Root split: grow the tree by one level.
            let new_root = pool.alloc_page()?;
            self.pages.push(new_root);
            let node = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.write_node(pool, new_root, &node)?;
            self.root = new_root;
            self.height += 1;
        }
        Ok(())
    }

    fn insert_rec(
        &mut self,
        pool: &BufferPool,
        pid: PageId,
        key: &Value,
        rid: Rid,
    ) -> Result<Option<(Value, PageId)>> {
        let mut node = self.read_node(pool, pid)?;
        match &mut node {
            Node::Leaf {
                keys,
                rids,
                next: _,
            } => {
                let pos = keys.partition_point(|k| k <= key);
                keys.insert(pos, key.clone());
                rids.insert(pos, rid);
                if node.encoded_size() <= pool.disk().page_size() {
                    self.write_node(pool, pid, &node)?;
                    return Ok(None);
                }
                // Split the leaf in half.
                let (keys, rids, next) = match node {
                    Node::Leaf { keys, rids, next } => (keys, rids, next),
                    _ => {
                        return Err(MqError::Storage(
                            "btree leaf changed variant during split".into(),
                        ))
                    }
                };
                let mid = keys.len() / 2;
                let right_keys = keys[mid..].to_vec();
                let right_rids = rids[mid..].to_vec();
                let right_pid = pool.alloc_page()?;
                self.pages.push(right_pid);
                let sep = right_keys[0].clone();
                let right = Node::Leaf {
                    keys: right_keys,
                    rids: right_rids,
                    next,
                };
                let left = Node::Leaf {
                    keys: keys[..mid].to_vec(),
                    rids: rids[..mid].to_vec(),
                    next: right_pid,
                };
                self.write_node(pool, right_pid, &right)?;
                self.write_node(pool, pid, &left)?;
                Ok(Some((sep, right_pid)))
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= key);
                let child = children[idx];
                if let Some((sep, new_child)) = self.insert_rec(pool, child, key, rid)? {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, new_child);
                    if node.encoded_size() <= pool.disk().page_size() {
                        self.write_node(pool, pid, &node)?;
                        return Ok(None);
                    }
                    // Split the internal node; the median key moves up.
                    let (keys, children) = match node {
                        Node::Internal { keys, children } => (keys, children),
                        _ => {
                            return Err(MqError::Storage(
                                "btree internal node changed variant during split".into(),
                            ))
                        }
                    };
                    let mid = keys.len() / 2;
                    let promote = keys[mid].clone();
                    let right = Node::Internal {
                        keys: keys[mid + 1..].to_vec(),
                        children: children[mid + 1..].to_vec(),
                    };
                    let left = Node::Internal {
                        keys: keys[..mid].to_vec(),
                        children: children[..=mid].to_vec(),
                    };
                    let right_pid = pool.alloc_page()?;
                    self.pages.push(right_pid);
                    self.write_node(pool, right_pid, &right)?;
                    self.write_node(pool, pid, &left)?;
                    Ok(Some((promote, right_pid)))
                } else {
                    Ok(None)
                }
            }
        }
    }

    fn find_leaf(&self, pool: &BufferPool, key: Option<&Value>) -> Result<PageId> {
        let mut pid = self.root;
        loop {
            match self.read_node(pool, pid)? {
                Node::Leaf { .. } => return Ok(pid),
                Node::Internal { keys, children } => {
                    let idx = match key {
                        // For lookups we must reach the *first* leaf that
                        // could contain the key, so descend left of equal
                        // separators (duplicates may span nodes).
                        Some(k) => keys.partition_point(|sep| sep < k),
                        None => 0,
                    };
                    // When separator == key, duplicates may live on both
                    // sides; start at the left edge of the equal run.
                    pid = children[idx];
                }
            }
        }
    }

    /// All rids with key exactly equal to `key`.
    pub fn lookup(&self, pool: &BufferPool, key: &Value) -> Result<Vec<Rid>> {
        let mut out = Vec::new();
        let mut pid = self.find_leaf(pool, Some(key))?;
        loop {
            let (keys, rids, next) = match self.read_node(pool, pid)? {
                Node::Leaf { keys, rids, next } => (keys, rids, next),
                _ => return Err(MqError::Internal("find_leaf returned internal".into())),
            };
            let start = keys.partition_point(|k| k < key);
            let mut i = start;
            while i < keys.len() && &keys[i] == key {
                out.push(rids[i]);
                i += 1;
            }
            if !next.is_valid() || i < keys.len() {
                break; // ran past the key within this leaf
            }
            // We consumed the leaf to its end. Continue right when the
            // run may extend (last key == key), or when `find_leaf`
            // descended left of an equal separator and the key actually
            // starts in a following leaf (every key here < key).
            let may_continue = keys.is_empty()
                || keys.last() == Some(key)
                || (out.is_empty() && keys.last().is_none_or(|k| k < key));
            if may_continue {
                pid = next;
                continue;
            }
            break;
        }
        Ok(out)
    }

    /// All rids with `lo ≤ key ≤ hi` (bounds optional), in key order.
    pub fn range(
        &self,
        pool: &BufferPool,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<Rid>> {
        let mut out = Vec::new();
        let mut pid = self.find_leaf(pool, lo)?;
        loop {
            let (keys, rids, next) = match self.read_node(pool, pid)? {
                Node::Leaf { keys, rids, next } => (keys, rids, next),
                _ => return Err(MqError::Internal("find_leaf returned internal".into())),
            };
            for (k, r) in keys.iter().zip(&rids) {
                if let Some(lo) = lo {
                    if k < lo {
                        continue;
                    }
                }
                if let Some(hi) = hi {
                    if k > hi {
                        return Ok(out);
                    }
                }
                out.push(*r);
            }
            if !next.is_valid() {
                return Ok(out);
            }
            pid = next;
        }
    }

    /// Walk the whole tree checking structural invariants; returns the
    /// total key count. Test/diagnostic helper.
    pub fn check_invariants(&self, pool: &BufferPool) -> Result<usize> {
        fn walk(
            tree: &BTree,
            pool: &BufferPool,
            pid: PageId,
            depth: usize,
            lo: Option<&Value>,
            hi: Option<&Value>,
        ) -> Result<(usize, usize)> {
            match tree.read_node(pool, pid)? {
                Node::Leaf { keys, rids, .. } => {
                    if keys.len() != rids.len() {
                        return Err(MqError::Internal("leaf arity mismatch".into()));
                    }
                    for w in keys.windows(2) {
                        if w[0] > w[1] {
                            return Err(MqError::Internal("leaf keys unsorted".into()));
                        }
                    }
                    for k in &keys {
                        if let Some(lo) = lo {
                            if k < lo {
                                return Err(MqError::Internal("key below subtree bound".into()));
                            }
                        }
                        if let Some(hi) = hi {
                            if k > hi {
                                return Err(MqError::Internal("key above subtree bound".into()));
                            }
                        }
                    }
                    Ok((keys.len(), depth))
                }
                Node::Internal { keys, children } => {
                    if children.len() != keys.len() + 1 {
                        return Err(MqError::Internal("internal arity mismatch".into()));
                    }
                    let mut count = 0;
                    let mut leaf_depth = None;
                    for (i, child) in children.iter().enumerate() {
                        let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                        let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                        let (c, d) = walk(tree, pool, *child, depth + 1, child_lo, child_hi)?;
                        count += c;
                        match leaf_depth {
                            None => leaf_depth = Some(d),
                            Some(ld) if ld != d => {
                                return Err(MqError::Internal("leaves at unequal depth".into()))
                            }
                            _ => {}
                        }
                    }
                    Ok((count, leaf_depth.unwrap_or(depth)))
                }
            }
        }
        let (count, _) = walk(self, pool, self.root, 1, None, None)?;
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use mq_common::{DetRng, SimClock};
    use std::sync::Arc;

    fn pool() -> Arc<BufferPool> {
        let disk = Arc::new(SimDisk::new(512, SimClock::new()));
        Arc::new(BufferPool::new(disk, 64))
    }

    fn rid(i: u64) -> Rid {
        Rid::new(PageId(i), (i % 7) as u16)
    }

    #[test]
    fn sequential_inserts_and_lookups() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        for i in 0..2000i64 {
            t.insert(&pool, &Value::Int(i), rid(i as u64)).unwrap();
        }
        assert!(t.height() > 1, "tree should have split");
        assert_eq!(t.check_invariants(&pool).unwrap(), 2000);
        for i in [0i64, 1, 999, 1999] {
            let hits = t.lookup(&pool, &Value::Int(i)).unwrap();
            assert_eq!(hits, vec![rid(i as u64)], "key {i}");
        }
        assert!(t.lookup(&pool, &Value::Int(5000)).unwrap().is_empty());
    }

    #[test]
    fn random_inserts_stay_sorted() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        let mut rng = DetRng::new(99);
        let mut keys: Vec<i64> = (0..3000).collect();
        rng.shuffle(&mut keys);
        for &k in &keys {
            t.insert(&pool, &Value::Int(k), rid(k as u64)).unwrap();
        }
        assert_eq!(t.check_invariants(&pool).unwrap(), 3000);
        let all = t.range(&pool, None, None).unwrap();
        assert_eq!(all.len(), 3000);
    }

    #[test]
    fn duplicates_across_leaves() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        // 500 copies of one key forces the run across several leaves.
        for i in 0..500u64 {
            t.insert(&pool, &Value::Int(42), rid(i)).unwrap();
        }
        for i in 0..100u64 {
            t.insert(&pool, &Value::Int(41), rid(1000 + i)).unwrap();
            t.insert(&pool, &Value::Int(43), rid(2000 + i)).unwrap();
        }
        let hits = t.lookup(&pool, &Value::Int(42)).unwrap();
        assert_eq!(hits.len(), 500);
        assert_eq!(t.lookup(&pool, &Value::Int(41)).unwrap().len(), 100);
        t.check_invariants(&pool).unwrap();
    }

    #[test]
    fn range_scans() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        for i in 0..1000i64 {
            t.insert(&pool, &Value::Int(i * 2), rid(i as u64)).unwrap();
        }
        // [100, 200] inclusive over even keys → 51 hits.
        let hits = t
            .range(&pool, Some(&Value::Int(100)), Some(&Value::Int(200)))
            .unwrap();
        assert_eq!(hits.len(), 51);
        // Open-ended ranges.
        assert_eq!(
            t.range(&pool, Some(&Value::Int(1900)), None).unwrap().len(),
            50
        );
        assert_eq!(
            t.range(&pool, None, Some(&Value::Int(99))).unwrap().len(),
            50
        );
        // Empty range.
        assert!(t
            .range(&pool, Some(&Value::Int(2001)), Some(&Value::Int(3000)))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn string_keys() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        let words = ["mexico", "brazil", "japan", "france", "india", "canada"];
        for (i, w) in words.iter().enumerate() {
            for j in 0..50u64 {
                t.insert(&pool, &Value::str(*w), rid(i as u64 * 100 + j))
                    .unwrap();
            }
        }
        assert_eq!(t.lookup(&pool, &Value::str("japan")).unwrap().len(), 50);
        assert!(t.lookup(&pool, &Value::str("peru")).unwrap().is_empty());
        t.check_invariants(&pool).unwrap();
    }

    #[test]
    fn empty_tree() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        assert!(t.lookup(&pool, &Value::Int(1)).unwrap().is_empty());
        assert!(t.range(&pool, None, None).unwrap().is_empty());
        assert_eq!(t.check_invariants(&pool).unwrap(), 0);
    }

    #[test]
    fn every_unique_key_findable() {
        // Regression: keys equal to internal separators live in the
        // *right* leaf; lookup must not lose them.
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        let n = 5000i64;
        for i in 0..n {
            t.insert(&pool, &Value::Int(i), rid(i as u64)).unwrap();
        }
        for i in 0..n {
            let hits = t.lookup(&pool, &Value::Int(i)).unwrap();
            assert_eq!(hits, vec![rid(i as u64)], "key {i} lost");
        }
    }

    #[test]
    fn truncated_node_is_an_error_not_a_panic() {
        assert_eq!(Node::decode(&[]).unwrap_err().kind(), "storage");
        // Header claims 5 keys but the body is missing.
        assert_eq!(Node::decode(&[1, 5, 0]).unwrap_err().kind(), "storage");
    }

    #[test]
    fn tracks_every_allocated_page() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        for i in 0..2000i64 {
            t.insert(&pool, &Value::Int(i), rid(i as u64)).unwrap();
        }
        assert!(t.page_count() > 1, "tree split across pages");
        // The tree is the only allocator on this disk, so its page
        // list must account for every allocated page.
        assert_eq!(t.page_count(), pool.disk().allocated_pages());
    }

    #[test]
    fn oversized_key_rejected() {
        let pool = pool();
        let mut t = BTree::create(&pool).unwrap();
        let huge = Value::str("k".repeat(400));
        assert!(t.insert(&pool, &huge, rid(0)).is_err());
    }
}
