//! Slotted-page layout.
//!
//! ```text
//! ┌──────────┬──────────┬───────────────┬───────┬──────────────┐
//! │ nslots u16│ rec_start u16│ slot array → │ free  │ ← records    │
//! └──────────┴──────────┴───────────────┴───────┴──────────────┘
//! ```
//!
//! Records are appended from the page end backwards; the slot array
//! (offset, length pairs) grows forward after the 4-byte header. A zero
//! length marks a dead slot. These are free functions over `&[u8]` /
//! `&mut [u8]` so the buffer pool can apply them to frames in place.

const HEADER: usize = 4;
const SLOT: usize = 4;

fn nslots(data: &[u8]) -> u16 {
    u16::from_le_bytes([data[0], data[1]])
}

fn rec_start(data: &[u8]) -> u16 {
    u16::from_le_bytes([data[2], data[3]])
}

fn set_nslots(data: &mut [u8], n: u16) {
    data[0..2].copy_from_slice(&n.to_le_bytes());
}

fn set_rec_start(data: &mut [u8], off: u16) {
    data[2..4].copy_from_slice(&off.to_le_bytes());
}

fn slot_at(data: &[u8], slot: u16) -> (u16, u16) {
    let base = HEADER + slot as usize * SLOT;
    (
        u16::from_le_bytes([data[base], data[base + 1]]),
        u16::from_le_bytes([data[base + 2], data[base + 3]]),
    )
}

/// Initialize an empty page. A freshly allocated (zeroed) page is
/// *almost* valid — `rec_start` must point at the page end.
pub fn init(data: &mut [u8]) {
    assert!(data.len() >= HEADER + SLOT && data.len() <= u16::MAX as usize);
    set_nslots(data, 0);
    set_rec_start(data, data.len() as u16);
}

/// Whether the page has been initialized (zeroed pages have
/// `rec_start == 0`, which is never valid).
pub fn is_initialized(data: &[u8]) -> bool {
    rec_start(data) as usize >= HEADER
}

/// Number of slots (including dead ones).
pub fn slot_count(data: &[u8]) -> u16 {
    nslots(data)
}

/// Free bytes available for one more record (accounting for its slot).
pub fn free_space(data: &[u8]) -> usize {
    let slots_end = HEADER + nslots(data) as usize * SLOT;
    (rec_start(data) as usize)
        .saturating_sub(slots_end)
        .saturating_sub(SLOT)
}

/// Insert a record; returns its slot or `None` when the page is full.
pub fn insert(data: &mut [u8], record: &[u8]) -> Option<u16> {
    if record.len() > free_space(data) {
        return None;
    }
    let n = nslots(data);
    let new_start = rec_start(data) as usize - record.len();
    data[new_start..new_start + record.len()].copy_from_slice(record);
    let base = HEADER + n as usize * SLOT;
    data[base..base + 2].copy_from_slice(&(new_start as u16).to_le_bytes());
    data[base + 2..base + 4].copy_from_slice(&(record.len() as u16).to_le_bytes());
    set_nslots(data, n + 1);
    set_rec_start(data, new_start as u16);
    Some(n)
}

/// Read the record in `slot`, or `None` for out-of-range/dead slots.
pub fn get(data: &[u8], slot: u16) -> Option<&[u8]> {
    if slot >= nslots(data) {
        return None;
    }
    let (off, len) = slot_at(data, slot);
    if len == 0 {
        return None;
    }
    data.get(off as usize..off as usize + len as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(size: usize) -> Vec<u8> {
        let mut p = vec![0u8; size];
        init(&mut p);
        p
    }

    #[test]
    fn insert_and_get() {
        let mut p = fresh(256);
        let s0 = insert(&mut p, b"hello").unwrap();
        let s1 = insert(&mut p, b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(get(&p, 0), Some(&b"hello"[..]));
        assert_eq!(get(&p, 1), Some(&b"world!"[..]));
        assert_eq!(get(&p, 2), None);
        assert_eq!(slot_count(&p), 2);
    }

    #[test]
    fn fills_until_full() {
        let mut p = fresh(128);
        let rec = [0xAAu8; 10];
        let mut inserted = 0;
        while insert(&mut p, &rec).is_some() {
            inserted += 1;
        }
        // 124 usable bytes, 14 per record (10 + 4 slot) → 8 records.
        assert_eq!(inserted, 8);
        for s in 0..inserted {
            assert_eq!(get(&p, s).unwrap(), &rec);
        }
    }

    #[test]
    fn rejects_oversized() {
        let mut p = fresh(64);
        assert!(insert(&mut p, &[0u8; 100]).is_none());
        assert!(insert(&mut p, &[0u8; 57]).is_none()); // 60 usable - 4 slot = 56 max
        assert!(insert(&mut p, &[0u8; 56]).is_some());
    }

    #[test]
    fn zeroed_page_is_uninitialized() {
        let z = vec![0u8; 128];
        assert!(!is_initialized(&z));
        let p = fresh(128);
        assert!(is_initialized(&p));
    }

    #[test]
    fn empty_record_allowed() {
        let mut p = fresh(64);
        let s = insert(&mut p, b"").unwrap();
        // Empty records read back as dead (len 0) — callers never store
        // empty rows (row encoding is ≥ 2 bytes).
        assert_eq!(get(&p, s), None);
    }
}
