//! Property tests: the B+-tree against a `BTreeMap` model, heap files
//! against a `Vec` model, and the buffer pool against direct storage.

use std::collections::BTreeMap;

use mq_common::{EngineConfig, Row, SimClock, Value};
use mq_storage::Storage;
use proptest::prelude::*;

fn storage() -> Storage {
    let cfg = EngineConfig {
        buffer_pool_pages: 16,
        page_size: 512,
        ..EngineConfig::default()
    };
    Storage::new(&cfg, SimClock::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A heap file returns exactly the rows appended, in order.
    #[test]
    fn heap_file_is_a_log(values in prop::collection::vec(any::<i64>(), 0..300)) {
        let st = storage();
        let f = st.create_file();
        for &v in &values {
            st.append_row(f, &Row::new(vec![Value::Int(v)])).unwrap();
        }
        let back: Vec<i64> = st
            .scan_file(f)
            .unwrap()
            .map(|r| r.unwrap().1.get(0).as_i64().unwrap())
            .collect();
        prop_assert_eq!(back, values);
    }

    /// B+-tree lookups and range scans agree with a BTreeMap model,
    /// including duplicate keys.
    #[test]
    fn btree_matches_model(
        keys in prop::collection::vec(-200i64..200, 1..400),
        probes in prop::collection::vec(-250i64..250, 1..30),
        ranges in prop::collection::vec((-250i64..250, -250i64..250), 1..10),
    ) {
        let st = storage();
        let f = st.create_file();
        let idx = st.create_index().unwrap();
        let mut model: BTreeMap<i64, Vec<mq_common::Rid>> = BTreeMap::new();
        for &k in &keys {
            let rid = st.append_row(f, &Row::new(vec![Value::Int(k)])).unwrap();
            st.index_insert(idx, &Value::Int(k), rid).unwrap();
            model.entry(k).or_default().push(rid);
        }
        for &p in &probes {
            let mut got = st.index_lookup(idx, &Value::Int(p)).unwrap();
            let mut expect = model.get(&p).cloned().unwrap_or_default();
            got.sort();
            expect.sort();
            prop_assert_eq!(got, expect, "lookup {}", p);
        }
        for &(a, b) in &ranges {
            let (lo, hi) = (a.min(b), a.max(b));
            let mut got = st
                .index_range(idx, Some(&Value::Int(lo)), Some(&Value::Int(hi)))
                .unwrap();
            let mut expect: Vec<_> = model
                .range(lo..=hi)
                .flat_map(|(_, rids)| rids.iter().copied())
                .collect();
            got.sort();
            expect.sort();
            prop_assert_eq!(got, expect, "range {}..={}", lo, hi);
        }
    }

    /// Every appended row is fetchable by rid even after heavy buffer
    /// pool churn from scanning other files.
    #[test]
    fn fetch_survives_pool_churn(n in 1usize..200) {
        let st = storage();
        let f = st.create_file();
        let mut rids = Vec::new();
        for i in 0..n {
            rids.push(
                st.append_row(f, &Row::new(vec![Value::Int(i as i64)])).unwrap(),
            );
        }
        // Churn: a second file big enough to evict everything.
        let g = st.create_file();
        for i in 0..500i64 {
            st.append_row(g, &Row::new(vec![Value::Int(i), Value::str("churnchurn")]))
                .unwrap();
        }
        let _ = st.scan_file(g).unwrap().count();
        for (i, rid) in rids.iter().enumerate() {
            let row = st.fetch(*rid).unwrap();
            prop_assert_eq!(row.get(0).as_i64(), Some(i as i64));
        }
    }

    /// String keys work in the tree and preserve lexicographic ranges.
    #[test]
    fn btree_string_ranges(words in prop::collection::vec("[a-z]{1,8}", 1..150)) {
        let st = storage();
        let f = st.create_file();
        let idx = st.create_index().unwrap();
        let mut sorted = words.clone();
        sorted.sort();
        for w in &words {
            let rid = st.append_row(f, &Row::new(vec![Value::str(w.as_str())])).unwrap();
            st.index_insert(idx, &Value::str(w.as_str()), rid).unwrap();
        }
        let all = st.index_range(idx, None, None).unwrap();
        prop_assert_eq!(all.len(), words.len());
        // Keys come back in sorted order.
        let keys: Vec<String> = all
            .iter()
            .map(|r| st.fetch(*r).unwrap().get(0).as_str().unwrap().to_string())
            .collect();
        prop_assert_eq!(keys, sorted);
    }
}
