//! Save-point crash campaign: kill the snapshot writer at every save
//! point and prove a crash mid-save can never cost more than the work
//! since the last successful save.
//!
//! Each seed grows the database (a fresh table, new `orders` rows, a
//! feedback correction), then:
//!
//! 1. **Count** — one fault-free save under a counting injector
//!    enumerates the save points: one per snapshot section plus the
//!    final publish (temp→rename) boundary.
//! 2. **Kill** — for every save point, rearm the previous good snapshot
//!    bytes and save with [`FaultKind::Crash`] injected at that point.
//!    The save must die with [`MqError::Crash`] and the published
//!    snapshot bytes must be untouched.
//! 3. **Survive** — the survivor still opens, audits clean, and its
//!    restored plan-cache template answers with zero optimizer work.
//! 4. **Land** — a fault-free save then publishes the growth: reopening
//!    sees the seed's table, rows, and feedback correction.
//!
//! [`FaultKind::Crash`]: midq::common::FaultKind::Crash
//! [`MqError::Crash`]: midq::MqError::Crash

use midq::common::{EngineConfig, FaultInjector, FaultKind, FaultSite, FaultSpec};
use midq::tpcd::TpcdConfig;
use midq::{Database, MqError, ReoptMode};

/// Cap on save points killed per seed (sampled evenly past the cap —
/// the point count grows with the table count, so late seeds have more
/// sections than early ones).
const MAX_KILLS_PER_SEED: u64 = 10;

/// One SQL family whose template the campaign keeps warm across every
/// crash/reopen cycle.
fn family(qty: i64, price: i64) -> String {
    format!(
        "SELECT o_orderstatus, count(*) AS n, max(o_totalprice) AS top \
         FROM orders, lineitem \
         WHERE o_orderkey = l_orderkey AND l_quantity < {qty} \
         AND o_totalprice > {price} \
         GROUP BY o_orderstatus ORDER BY o_orderstatus"
    )
}

/// Aggregate result of a save-crash campaign.
#[derive(Debug, Default)]
pub struct SaveCrashReport {
    /// Seeds exercised (growth + kill-sweep cycles).
    pub seeds: usize,
    /// Save points killed across all seeds.
    pub kill_points: usize,
    /// Injected kills that actually crashed the save.
    pub crashes: usize,
    /// Survivor snapshots that reopened and audited clean after a kill.
    pub survivor_reopens: usize,
    /// Invariant violations (empty = the campaign passed).
    pub violations: Vec<String>,
}

impl SaveCrashReport {
    /// Did the campaign uphold every invariant — and actually crash a
    /// save at least once?
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.crashes > 0
    }

    /// One-paragraph summary for logs and CI output.
    pub fn summary(&self) -> String {
        format!(
            "save-crash campaign: {} seeds, {} kill points — {} crashes, \
             {} survivor reopens — {} violation(s)",
            self.seeds,
            self.kill_points,
            self.crashes,
            self.survivor_reopens,
            self.violations.len()
        )
    }
}

/// Run the save-point crash campaign over `seeds` growth cycles.
/// `verbose` prints one line per seed.
pub fn run_save_crash_campaign(seeds: u64, verbose: bool) -> SaveCrashReport {
    let dir = std::env::temp_dir().join("midq_save_crash");
    std::fs::create_dir_all(&dir).expect("campaign dir");
    let path = dir.join(format!("campaign_{}.mqsnap", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cfg = EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        stats_feedback: false,
        plan_cache_enabled: true,
        ..EngineConfig::default()
    };
    let db = Database::open_with(cfg.clone(), &path).expect("open");
    db.load_tpcd(&TpcdConfig {
        scale: 0.002,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .expect("load");
    // Warm the template so every survivor snapshot carries it.
    db.query(&family(25, 1000))
        .mode(ReoptMode::Off)
        .run()
        .expect("warm pass");

    let mut report = SaveCrashReport::default();
    let violate = |violations: &mut Vec<String>, msg: String| {
        if violations.len() < 32 {
            violations.push(msg);
        }
    };

    for seed in 1..=seeds {
        report.seeds += 1;
        db.save().expect("good save");
        let good = std::fs::read(&path).expect("good bytes");

        // Grow the database so the next save writes different bytes:
        // a fresh table with a seed-derived row count, new dependency
        // rows in `orders`, and a feedback correction pinned to the
        // current `orders` data version.
        let rows = (seed % 5) + 2;
        let values: Vec<String> = (0..rows)
            .map(|i| format!("({}, {}.5)", i, seed * 100 + i))
            .collect();
        db.execute_sql(
            &format!("CREATE TABLE grow_{seed} (k INT, v FLOAT)"),
            ReoptMode::Off,
        )
        .expect("grow table");
        db.execute_sql(
            &format!("INSERT INTO grow_{seed} VALUES {}", values.join(", ")),
            ReoptMode::Off,
        )
        .expect("grow rows");
        db.execute_sql(
            &format!(
                "INSERT INTO orders VALUES ({}, 1, 'F', 9.5, DATE '1995-01-01', 0)",
                9_000_000 + seed
            ),
            ReoptMode::Off,
        )
        .expect("orders row");
        let fp = 0xBEEF_0000 + seed;
        let dep = db
            .engine()
            .catalog()
            .data_version("orders")
            .expect("orders version");
        db.engine()
            .feedback()
            .record(fp, seed as f64 * 10.0, vec![("orders".to_string(), dep)]);

        // Counting run: how many save points does this snapshot pass
        // through? Then rearm the previous good bytes for the kills.
        let counter = FaultInjector::new(vec![], None);
        {
            let _scope = counter.enter_scope();
            db.save().expect("counting save");
        }
        let points = counter.ops_at(FaultSite::SegmentBoundary);
        if points < 3 {
            violate(
                &mut report.violations,
                format!("seed {seed}: only {points} save points enumerated"),
            );
            continue;
        }
        std::fs::write(&path, &good).expect("rearm good bytes");

        let step = points.div_ceil(MAX_KILLS_PER_SEED).max(1);
        let mut kills: Vec<u64> = (1..=points).step_by(step as usize).collect();
        if kills.last() != Some(&points) {
            kills.push(points);
        }
        if verbose {
            println!(
                "seed {seed}: grew {rows} rows, {points} save points, killing {:?}",
                kills
            );
        }

        for at in kills {
            report.kill_points += 1;
            let inj = FaultInjector::new(
                vec![FaultSpec {
                    site: FaultSite::SegmentBoundary,
                    kind: FaultKind::Crash,
                    at,
                }],
                None,
            );
            let result = {
                let _scope = inj.enter_scope();
                db.save()
            };
            match result {
                Err(MqError::Crash(_)) => report.crashes += 1,
                Ok(_) => {
                    violate(
                        &mut report.violations,
                        format!("seed {seed} kill {at}: never fired"),
                    );
                    continue;
                }
                Err(e) => {
                    violate(
                        &mut report.violations,
                        format!("seed {seed} kill {at}: died dirty: {e}"),
                    );
                    continue;
                }
            }
            let published = std::fs::read(&path).expect("published bytes");
            if published != good {
                violate(
                    &mut report.violations,
                    format!("seed {seed} kill {at}: published snapshot damaged"),
                );
                continue;
            }
            // The survivor opens, audits clean, and its template is
            // warm: the restored family answers with zero opt work.
            match Database::open_with(cfg.clone(), &path) {
                Ok(back) => {
                    let audit = back.engine().audit();
                    if !audit.is_clean() {
                        violate(
                            &mut report.violations,
                            format!("seed {seed} kill {at}: {audit:?}"),
                        );
                        continue;
                    }
                    match back.query(&family(30, 2000)).mode(ReoptMode::Off).run() {
                        Ok(out) if out.cost.opt_work == 0 => report.survivor_reopens += 1,
                        Ok(out) => violate(
                            &mut report.violations,
                            format!(
                                "seed {seed} kill {at}: survivor template cold \
                                 (opt_work {})",
                                out.cost.opt_work
                            ),
                        ),
                        Err(e) => violate(
                            &mut report.violations,
                            format!("seed {seed} kill {at}: survivor query failed: {e}"),
                        ),
                    }
                }
                Err(e) => violate(
                    &mut report.violations,
                    format!("seed {seed} kill {at}: survivor failed to open: {e}"),
                ),
            }
        }

        // A fault-free save lands the growth: the reopened database
        // sees the seed's table, rows, and feedback correction.
        db.save().expect("landing save");
        match Database::open_with(cfg.clone(), &path) {
            Ok(landed) => {
                let count = landed
                    .query(&format!("SELECT count(*) AS n FROM grow_{seed}"))
                    .mode(ReoptMode::Off)
                    .run()
                    .map(|o| o.rows[0].get(0).to_string());
                if count.as_deref() != Ok(&rows.to_string()) {
                    violate(
                        &mut report.violations,
                        format!("seed {seed}: growth lost after landing save ({count:?})"),
                    );
                }
                let entry = landed.engine().feedback().get(fp);
                if entry.map(|e| e.deps) != Some(vec![("orders".to_string(), dep)]) {
                    violate(
                        &mut report.violations,
                        format!("seed {seed}: feedback correction lost after landing save"),
                    );
                }
            }
            Err(e) => violate(
                &mut report.violations,
                format!("seed {seed}: landing snapshot failed to open: {e}"),
            ),
        }
    }

    let _ = std::fs::remove_file(&path);
    report
}
