fn main() {
    let f = mq_bench::fig03_memory_realloc();
    println!("{f:?}");
}
