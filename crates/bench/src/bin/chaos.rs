//! Chaos campaign CLI: `cargo run --release -p mq-bench --bin chaos
//! -- [--seeds N | --seeds A..B] [--first-seed S] [--verbose]`.
//!
//! Runs the TPC-D mini-workload under seeded fault schedules at 1 and
//! 4 workers and exits nonzero if any robustness invariant is violated
//! (see `mq_bench::chaos`). `--seeds` accepts either a count (`50`) or
//! an explicit seed range (`10..60` exclusive, `10..=59` inclusive);
//! a range overrides `--first-seed`. `--plan-cache` runs the campaign
//! over SQL families on a warm plan-cache-enabled engine. `--crash`
//! runs the kill-point crash/recovery campaign instead (see
//! `mq_bench::recovery`); `--save-crash` runs the snapshot save-point
//! crash campaign (see `mq_bench::persist`), with `--seeds` as the
//! number of growth cycles.

use mq_bench::chaos::{run_chaos, run_chaos_partitioned, run_chaos_plancache};
use mq_bench::persist::run_save_crash_campaign;
use mq_bench::recovery::run_crash_campaign;

/// Parse a `--seeds` value: a plain count, or an `A..B` / `A..=B`
/// seed range returned as `(first_seed, count)`.
fn parse_seeds(v: &str) -> Option<(Option<u64>, u64)> {
    if let Some((a, b)) = v.split_once("..") {
        let first: u64 = a.parse().ok()?;
        let (last_text, inclusive) = match b.strip_prefix('=') {
            Some(rest) => (rest, true),
            None => (b, false),
        };
        let last: u64 = last_text.parse().ok()?;
        let end = if inclusive {
            last.checked_add(1)?
        } else {
            last
        };
        if end <= first {
            return None;
        }
        Some((Some(first), end - first))
    } else {
        Some((None, v.parse().ok()?))
    }
}

fn main() {
    let mut seeds: u64 = 50;
    let mut first_seed: u64 = 1;
    let mut seeds_range_start: Option<u64> = None;
    let mut verbose = false;
    let mut partitioned = false;
    let mut plan_cache = false;
    let mut crash = false;
    let mut save_crash = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = args.next().expect("--seeds N or --seeds A..B");
                let (start, count) =
                    parse_seeds(&v).unwrap_or_else(|| panic!("bad --seeds value: {v}"));
                seeds_range_start = start;
                seeds = count;
            }
            "--first-seed" => {
                first_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--first-seed S");
            }
            "--partitioned" => partitioned = true,
            "--plan-cache" => plan_cache = true,
            "--crash" => crash = true,
            "--save-crash" => save_crash = true,
            "--verbose" | "-v" => verbose = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: chaos [--seeds N | --seeds A..B] [--first-seed S] \
                     [--partitioned] [--plan-cache] [--crash] [--save-crash] [--verbose]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(start) = seeds_range_start {
        first_seed = start;
    }

    if save_crash {
        let report = run_save_crash_campaign(seeds, verbose);
        println!("{}", report.summary());
        for v in &report.violations {
            eprintln!("violation: {v}");
        }
        if !report.passed() {
            if report.violations.is_empty() {
                eprintln!("no save was ever crashed — the injector never fired");
            }
            std::process::exit(1);
        }
        return;
    }

    if crash {
        let report = run_crash_campaign(verbose);
        println!("{}", report.summary());
        for v in &report.violations {
            eprintln!("violation: {v}");
        }
        if !report.passed() {
            if report.violations.is_empty() {
                eprintln!(
                    "no salvaged recovery observed — the campaign never crashed past a checkpoint"
                );
            }
            std::process::exit(1);
        }
        return;
    }

    let report = if partitioned {
        run_chaos_partitioned(first_seed, seeds, verbose)
    } else if plan_cache {
        run_chaos_plancache(first_seed, seeds, verbose)
    } else {
        run_chaos(first_seed, seeds, verbose)
    };
    println!("{}", report.summary());
    for v in &report.violations {
        eprintln!("violation: {v}");
    }
    if !report.passed() {
        if report.violations.is_empty() {
            eprintln!("no transient recovery observed — widen the seed range");
        }
        std::process::exit(1);
    }
}
