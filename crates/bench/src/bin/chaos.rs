//! Chaos campaign CLI: `cargo run --release -p mq-bench --bin chaos
//! -- [--seeds N] [--first-seed S] [--verbose]`.
//!
//! Runs the TPC-D mini-workload under N seeded fault schedules at 1
//! and 4 workers and exits nonzero if any robustness invariant is
//! violated (see `mq_bench::chaos`).

use mq_bench::chaos::{run_chaos, run_chaos_partitioned};

fn main() {
    let mut seeds: u64 = 50;
    let mut first_seed: u64 = 1;
    let mut verbose = false;
    let mut partitioned = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args.next().and_then(|v| v.parse().ok()).expect("--seeds N");
            }
            "--first-seed" => {
                first_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--first-seed S");
            }
            "--partitioned" => partitioned = true,
            "--verbose" | "-v" => verbose = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: chaos [--seeds N] [--first-seed S] [--partitioned] [--verbose]");
                std::process::exit(2);
            }
        }
    }

    let report = if partitioned {
        run_chaos_partitioned(first_seed, seeds, verbose)
    } else {
        run_chaos(first_seed, seeds, verbose)
    };
    println!("{}", report.summary());
    for v in &report.violations {
        eprintln!("violation: {v}");
    }
    if !report.passed() {
        if report.violations.is_empty() {
            eprintln!("no transient recovery observed — widen the seed range");
        }
        std::process::exit(1);
    }
}
