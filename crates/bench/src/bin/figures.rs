//! Regenerate every figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p mq-bench --bin figures            # all figures
//! cargo run --release -p mq-bench --bin figures -- fig10   # one figure
//! ```

use mq_bench::recovery::recovery_figure;
use mq_bench::{
    ablation_histogram_class, ablation_realloc_headroom, ablation_switch_margin,
    cache_warm_vs_cold, est_vs_actual, fig03_memory_realloc, fig10, fig11, fig12, overhead,
    par_skew, par_speedup, plancache_arc, render_pairs, sensitivity, throughput_vs_budget,
    throughput_vs_workers, BenchSetup, Knob,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    // `par` accepts an optional partition list: `par=1,4` (CI smoke)
    // instead of the default 1,2,4,8 curve.
    let par_partitions: Vec<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("par="))
        .map(|list| {
            list.split(',')
                .map(|v| v.parse().expect("par=P1,P2,..."))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let want_par = want("par") || args.iter().any(|a| a.starts_with("par="));
    let setup = BenchSetup::default();

    if want("fig03") {
        let f = fig03_memory_realloc();
        println!("== FIG 3 (memory re-allocation worked example) ==");
        println!(
            "time without re-allocation : {:.1} ms ({} spill writes)",
            f.off_ms, f.off_writes
        );
        println!(
            "time with re-allocation    : {:.1} ms ({} spill writes)",
            f.mem_ms, f.mem_writes
        );
        println!("grant re-allocations       : {}", f.reallocs);
        println!();
    }

    if want("fig10") {
        let pairs = fig10(&setup);
        println!(
            "{}",
            render_pairs("FIG 10: normal vs re-optimized (uniform data)", &pairs)
        );
    }

    if want("fig11") {
        let rows = fig11(&setup);
        println!("== FIG 11: isolating memory management vs plan modification ==");
        println!(
            "{:<5} {:>12} {:>14} {:>14} {:>10} {:>10}",
            "query", "normal(ms)", "mem-only(ms)", "plan-only(ms)", "mem-gain%", "plan-gain%"
        );
        for (off, mem, plan) in rows {
            println!(
                "{:<5} {:>12.1} {:>14.1} {:>14.1} {:>10.1} {:>10.1}",
                off.query,
                off.time_ms,
                mem.time_ms,
                plan.time_ms,
                (off.time_ms - mem.time_ms) / off.time_ms * 100.0,
                (off.time_ms - plan.time_ms) / off.time_ms * 100.0,
            );
        }
        println!();
    }

    if want("fig12") {
        for z in [0.3, 0.6] {
            let pairs = fig12(&setup, z);
            println!("== FIG 12: skewed data, z = {z} (normalized reopt/normal) ==");
            println!(
                "{:<5} {:>10} {:>9} {:>9}",
                "query", "ratio", "switches", "reallocs"
            );
            for (off, full) in pairs {
                println!(
                    "{:<5} {:>10.3} {:>9} {:>9}",
                    off.query,
                    full.time_ms / off.time_ms,
                    full.switches,
                    full.reallocs
                );
            }
            println!();
        }
    }

    if want("overhead") {
        let pairs = overhead(&setup);
        println!(
            "{}",
            render_pairs("OVERHEAD: simple queries, collectors on", &pairs)
        );
    }

    if want("ablate") {
        println!("== ABLATION: switch acceptance margin (PlanOnly) ==");
        for (m, rows) in ablation_switch_margin(&setup, &[1.0, 1.5, 2.5]) {
            for (off, plan) in rows {
                println!(
                    "  margin={m:<4} {:<4} off={:>9.1} plan-only={:>9.1} gain={:>6.1}% switches={}",
                    off.query,
                    off.time_ms,
                    plan.time_ms,
                    (off.time_ms - plan.time_ms) / off.time_ms * 100.0,
                    plan.switches
                );
            }
        }
        println!();
        println!("== ABLATION: re-allocation demand headroom (MemoryOnly) ==");
        for (h, rows) in ablation_realloc_headroom(&setup, &[1.0, 1.5, 2.0]) {
            for (off, mem) in rows {
                println!(
                    "  headroom={h:<4} {:<4} off={:>9.1} mem-only={:>9.1} gain={:>6.1}% reallocs={}",
                    off.query,
                    off.time_ms,
                    mem.time_ms,
                    (off.time_ms - mem.time_ms) / off.time_ms * 100.0,
                    mem.reallocs
                );
            }
        }
        println!();
    }

    if want("hist") {
        // Uniform data renders the classes nearly indistinguishable
        // (bucket boundaries barely matter when frequencies are flat);
        // the z = 0.6 skew of Figure 12 is where they separate.
        let setup = BenchSetup {
            zipf_z: Some(0.6),
            ..setup.clone()
        };
        println!("== ABLATION: catalog histogram class (§2.5 potentials), Q5, skew z=0.6 ==");
        println!(
            "{:<12} {:>12} {:>12} {:>8} {:>9} {:>9}",
            "class", "off(ms)", "full(ms)", "gain%", "switches", "reallocs"
        );
        for (kind, off, full) in ablation_histogram_class(&setup, "Q5") {
            println!(
                "{:<12} {:>12.1} {:>12.1} {:>8.1} {:>9} {:>9}",
                kind.to_string(),
                off.time_ms,
                full.time_ms,
                (off.time_ms - full.time_ms) / off.time_ms * 100.0,
                full.switches,
                full.reallocs
            );
        }
        println!();
    }

    if want("conc") {
        println!("== CONCURRENT RUNTIME: throughput vs workers (28 queries, Full mode) ==");
        println!(
            "{:>7} {:>12} {:>14} {:>10} {:>8} {:>12} {:>12}",
            "workers", "ok/queries", "makespan(ms)", "q/sim-s", "speedup", "in-flight", "hwm(KiB)"
        );
        for p in throughput_vs_workers(&setup, &[1, 2, 4, 8]) {
            println!(
                "{:>7} {:>12} {:>14.1} {:>10.2} {:>8.2} {:>12} {:>12}",
                p.workers,
                format!("{}/{}", p.succeeded, p.queries),
                p.makespan_sim_ms,
                p.throughput_qps,
                p.speedup,
                p.max_in_flight,
                p.high_water_bytes / 1024
            );
        }
        println!();
        let qmb = setup.cfg.query_memory_bytes;
        println!("== CONCURRENT RUNTIME: throughput vs global budget (4 workers) ==");
        println!(
            "{:>12} {:>12} {:>14} {:>10} {:>12} {:>12}",
            "budget(KiB)", "ok/queries", "makespan(ms)", "q/sim-s", "in-flight", "hwm(KiB)"
        );
        // The smallest budget stays above the largest per-plan minimum
        // demand (~108 KiB for the join-heavy queries): below that a
        // query cannot run at all, with any amount of queueing.
        for p in throughput_vs_budget(&setup, 4, &[4 * qmb, 2 * qmb, qmb, qmb / 2, qmb / 4]) {
            println!(
                "{:>12} {:>12} {:>14.1} {:>10.2} {:>12} {:>12}",
                p.global_budget_bytes / 1024,
                format!("{}/{}", p.succeeded, p.queries),
                p.makespan_sim_ms,
                p.throughput_qps,
                p.max_in_flight,
                p.high_water_bytes / 1024
            );
        }
        println!();
    }

    if want_par {
        println!("== PAR (a): Q10 elapsed vs partition count (Off mode) ==");
        println!(
            "{:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>6}",
            "partitions",
            "elapsed(ms)",
            "speedup",
            "saved(ms)",
            "io-pages",
            "cpu-ops",
            "exchanges",
            "rows"
        );
        let points = par_speedup(&setup, "Q10", &par_partitions);
        let base = points.first().map(|p| p.time_ms).unwrap_or(0.0);
        for p in &points {
            println!(
                "{:>10} {:>12.1} {:>9.2}x {:>10.1} {:>10} {:>10} {:>9} {:>6}",
                p.partitions,
                p.time_ms,
                base / p.time_ms,
                p.saved_ms,
                p.io_pages,
                p.cpu_ops,
                p.exchanges,
                p.rows
            );
        }
        println!();
        let (stat, reb) = par_skew(&setup, 1.0, 4, setup.cfg.par_skew_theta.min(1.15));
        println!("== PAR (b): skewed Q10 (z=1.0, P=4) — static vs skew-aware assignment ==");
        println!(
            "{:<12} {:>12} {:>10} {:>14} {:>18} {:>6}",
            "assignment", "elapsed(ms)", "saved(ms)", "skew verdicts", "worst max/mean", "rows"
        );
        println!(
            "{:<12} {:>12.1} {:>10.1} {:>14} {:>18} {:>6}",
            "static", stat.time_ms, stat.saved_ms, stat.skew_verdicts, "(disabled)", stat.rows
        );
        println!(
            "{:<12} {:>12.1} {:>10.1} {:>14} {:>18} {:>6}",
            "rebalanced",
            reb.time_ms,
            reb.saved_ms,
            reb.skew_verdicts,
            format!("{:.2} -> {:.2}", reb.worst_skew.0, reb.worst_skew.1),
            reb.rows
        );
        println!(
            "re-partitioning: elapsed {:.1} -> {:.1} ms, same rows: {}",
            stat.time_ms,
            reb.time_ms,
            stat.rows == reb.rows
        );
        println!();
    }

    if want("trace") {
        // Skewed + stale: the regime where the optimizer's estimates go
        // wrong enough for Q10 to switch plans mid-flight.
        let setup = BenchSetup {
            scale: 0.005,
            zipf_z: Some(1.1),
            analyze_after_fraction: 0.2,
            ..setup.clone()
        };
        println!("== TRACE: est vs actual at every collector checkpoint (Q10, z=1.1) ==");
        println!(
            "{:<6} {:>14} {:>14} {:>12} {:>10}",
            "node", "est rows", "actual rows", "inaccuracy", "complete"
        );
        let (rows, verdicts) = est_vs_actual(&setup, "Q10");
        for r in &rows {
            println!(
                "{:<6} {:>14.0} {:>14} {:>12.2} {:>10}",
                r.node, r.estimated_rows, r.observed_rows, r.inaccuracy, r.complete
            );
        }
        println!("re-optimization decisions:");
        for v in &verdicts {
            println!("  {v}");
        }
        println!();
    }

    if want("cache") {
        println!("== CACHE: warm vs cold on a cache-enabled engine (PlanOnly, margin 1.0) ==");
        println!(
            "{:<5} {:>10} {:>10} {:>8} {:>10} {:>10} {:>6} {:>11}",
            "query", "cold(ms)", "warm(ms)", "ratio", "switches", "promoted", "hits", "saved(KiB)"
        );
        for p in cache_warm_vs_cold(&setup, &["Q3", "Q10", "Q5"]) {
            println!(
                "{:<5} {:>10.1} {:>10.1} {:>8.2} {:>10} {:>10} {:>6} {:>11}",
                p.query,
                p.cold_ms,
                p.warm_ms,
                p.cold_ms / p.warm_ms.max(f64::EPSILON),
                format!("{}->{}", p.cold_switches, p.warm_switches),
                p.promotions,
                p.hits,
                p.saved_bytes / 1024
            );
        }
        println!();
    }

    if want("plancache") {
        println!("== PLAN CACHE: one family, cold -> warm -> stale -> re-warmed (Off mode) ==");
        println!(
            "{:<18} {:>10} {:>9} {:>8} {:>6} {:>13}",
            "run (qty, price)", "time(ms)", "opt-work", "outcome", "rows", "rows==oracle"
        );
        for r in plancache_arc(&setup) {
            println!(
                "{:<18} {:>10.1} {:>9} {:>8} {:>6} {:>13}",
                r.label,
                r.time_ms,
                r.opt_work,
                r.outcome,
                r.rows,
                if r.rows_match_oracle { "yes" } else { "NO" }
            );
        }
        println!();
    }

    if want("recovery") {
        println!("== RECOVERY: crash at final checkpoint — salvaged resume vs cold re-run ==");
        println!(
            "{:<6} {:>11} {:>9} {:>11} {:>13} {:>7}",
            "query", "boundaries", "salvaged", "cold(ms)", "recover(ms)", "ratio"
        );
        for p in recovery_figure() {
            println!(
                "{:<6} {:>11} {:>9} {:>11.1} {:>13.1} {:>7.2}",
                p.query,
                p.boundaries,
                p.segments_salvaged,
                p.cold_ms,
                p.recovery_ms,
                p.recovery_ms / p.cold_ms
            );
        }
        println!();
    }

    if want("sens") {
        println!("== SENSITIVITY (Q5, Full mode) ==");
        for (knob, name, values) in [
            (Knob::Mu, "mu", vec![0.0, 0.01, 0.05, 0.1, 0.2]),
            (Knob::Theta1, "theta1", vec![0.0, 0.05, 0.2, 0.5]),
            (Knob::Theta2, "theta2", vec![0.0, 0.1, 0.2, 0.5, 1.0]),
        ] {
            println!("-- {name} --");
            for (v, m) in sensitivity(&setup, "Q5", knob, &values) {
                println!(
                    "  {name}={v:<5} time={:>10.1}ms switches={} reallocs={}",
                    m.time_ms, m.switches, m.reallocs
                );
            }
        }
    }
}
