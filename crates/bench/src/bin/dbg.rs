use midq::tpcd::queries;
use midq::ReoptMode;
use mq_bench::BenchSetup;
fn main() {
    let name = std::env::args().nth(1).unwrap_or("Q8".into());
    let mut setup = BenchSetup::default();
    if let Ok(v) = std::env::var("MQ_STALE") {
        setup.analyze_after_fraction = v.parse().unwrap();
    }
    if let Ok(v) = std::env::var("MQ_SCALE") {
        setup.scale = v.parse().unwrap();
    }
    let db = setup.database();
    let q = queries::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap()
        .1;
    let off = db.query_plan(&q).mode(ReoptMode::Off).run().unwrap();
    println!(
        "OFF time={:.0}ms io=({} r, {} w)",
        off.time_ms, off.cost.pages_read, off.cost.pages_written
    );
    println!("OFF plan:\n{}", off.final_plan);
    let full = db
        .query_plan(&q)
        .mode(if std::env::var("MQ_PLANONLY").is_ok() {
            ReoptMode::PlanOnly
        } else {
            ReoptMode::Full
        })
        .run()
        .unwrap();
    println!(
        "FULL time={:.0}ms io=({} r, {} w) switches={}",
        full.time_ms, full.cost.pages_read, full.cost.pages_written, full.plan_switches
    );
    for e in &full.events {
        println!("  {e}");
    }
    println!("FULL final plan:\n{}", full.final_plan);
}
