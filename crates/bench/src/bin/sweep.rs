use midq::common::EngineConfig;
use mq_bench::{fig10, BenchSetup};

fn main() {
    let scale: f64 = std::env::var("MQ_SCALE")
        .map(|v| v.parse().unwrap())
        .unwrap_or(0.008);
    let stale: f64 = std::env::var("MQ_STALE")
        .map(|v| v.parse().unwrap())
        .unwrap_or(0.5);
    let pool: usize = std::env::var("MQ_POOL")
        .map(|v| v.parse().unwrap())
        .unwrap_or(64);
    let mem: usize = std::env::var("MQ_MEM")
        .map(|v| v.parse().unwrap())
        .unwrap_or(512 * 1024);
    let hist = std::env::var("MQ_HIST").unwrap_or("maxdiff".into());
    let mut setup = BenchSetup {
        scale,
        analyze_after_fraction: stale,
        cfg: EngineConfig {
            buffer_pool_pages: pool,
            query_memory_bytes: mem,
            ..EngineConfig::default()
        },
        ..BenchSetup::default()
    };
    let _ = hist; // histogram kind plumbed through TpcdConfig default for now
    setup.zipf_z = std::env::var("MQ_ZIPF").ok().map(|v| v.parse().unwrap());
    println!(
        "scale={scale} stale={stale} pool={pool} mem={mem} zipf={:?}",
        setup.zipf_z
    );
    for (off, full) in fig10(&setup) {
        println!(
            "{:<4} off={:>9.0} full={:>9.0} gain={:>6.1}% sw={} re={}",
            off.query,
            off.time_ms,
            full.time_ms,
            (off.time_ms - full.time_ms) / off.time_ms * 100.0,
            full.switches,
            full.reallocs
        );
    }
}
