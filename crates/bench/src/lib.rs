//! # mq-bench — the experiment harness
//!
//! Regenerates every quantitative figure of the paper's evaluation
//! (§3.2). Each experiment is a pure function of its parameters —
//! deterministic data, deterministic simulated costs — so the output
//! tables in EXPERIMENTS.md can be reproduced bit-for-bit with
//! `cargo run --release -p mq-bench --bin figures`.
//!
//! | Paper figure | Function |
//! |---|---|
//! | Figure 3 (worked example) | [`fig03_memory_realloc`] |
//! | Figure 10 (normal vs re-optimized) | [`fig10`] |
//! | Figure 11 (isolating the mechanisms) | [`fig11`] |
//! | Figure 12 (skew z = 0.3, 0.6) | [`fig12`] |
//! | §2.5 overhead claim | [`overhead`] |
//! | sensitivity to μ, θ1, θ2 (cited to \[12\]) | [`sensitivity`] |
//! | §2.2 est-vs-actual trace table | [`est_vs_actual`] |

pub mod chaos;
pub mod persist;
pub mod recovery;

use midq::common::EngineConfig;
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, QueryOutcome, ReoptMode};

/// The experiment scale and error regime, shared by all figures.
///
/// The paper ran a 3 GB database against a 32 MB buffer pool
/// (ratio ≈ 1%) on an optimizer whose estimates suffered from catalog
/// staleness and error compounding over 4+ joins. We scale both sides
/// down together and recreate the error sources honestly: the catalog
/// is analyzed part-way through the load (stale), and errors compound
/// through the join estimates exactly as \[9\] describes.
#[derive(Debug, Clone)]
pub struct BenchSetup {
    /// TPC-D scale factor.
    pub scale: f64,
    /// Zipf skew (None = uniform).
    pub zipf_z: Option<f64>,
    /// Fraction loaded before ANALYZE (the staleness knob).
    pub analyze_after_fraction: f64,
    /// Engine configuration.
    pub cfg: EngineConfig,
}

impl Default for BenchSetup {
    fn default() -> Self {
        // Pool/data ratio ≈ 2% (the paper ran 32 MB against 3 GB ≈ 1%):
        // caching must stay marginal or the cost model's cold-I/O
        // assumptions — and with them the re-optimization decisions —
        // drift from reality.
        let cfg = EngineConfig {
            buffer_pool_pages: 64,
            query_memory_bytes: 512 * 1024,
            ..EngineConfig::default()
        };
        BenchSetup {
            scale: 0.008,
            zipf_z: None,
            analyze_after_fraction: 0.5,
            cfg,
        }
    }
}

impl BenchSetup {
    /// Build and load a database for this setup.
    pub fn database(&self) -> Database {
        let db = Database::new(self.cfg.clone()).expect("engine");
        db.load_tpcd(&TpcdConfig {
            scale: self.scale,
            zipf_z: self.zipf_z,
            analyze_after_fraction: self.analyze_after_fraction,
            ..TpcdConfig::default()
        })
        .expect("load");
        db
    }
}

/// One measured query execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Query name (Q1, Q3, ...).
    pub query: &'static str,
    /// Mode it ran under.
    pub mode: ReoptMode,
    /// Simulated time (ms).
    pub time_ms: f64,
    /// Plan switches performed.
    pub switches: u32,
    /// Memory re-allocations performed.
    pub reallocs: u32,
    /// Result cardinality (sanity).
    pub rows: usize,
}

/// Run one named query under one mode.
pub fn run_query(db: &Database, name: &'static str, mode: ReoptMode) -> Measurement {
    let q = queries::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown query {name}"))
        .1;
    let out: QueryOutcome = db
        .query_plan(&q)
        .mode(mode)
        .run()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    Measurement {
        query: name,
        mode,
        time_ms: out.time_ms,
        switches: out.plan_switches,
        reallocs: out.memory_reallocs,
        rows: out.rows.len(),
    }
}

/// The paper's query set, in reporting order.
pub const QUERIES: [&str; 7] = ["Q1", "Q3", "Q5", "Q6", "Q7", "Q8", "Q10"];

/// Figure 10: every query under Normal (Off) and Re-Optimized (Full).
pub fn fig10(setup: &BenchSetup) -> Vec<(Measurement, Measurement)> {
    let db = setup.database();
    QUERIES
        .iter()
        .map(|q| {
            (
                run_query(&db, q, ReoptMode::Off),
                run_query(&db, q, ReoptMode::Full),
            )
        })
        .collect()
}

/// Figure 11: medium and complex queries under MemoryOnly and PlanOnly.
pub fn fig11(setup: &BenchSetup) -> Vec<(Measurement, Measurement, Measurement)> {
    let db = setup.database();
    ["Q3", "Q10", "Q5", "Q7", "Q8"]
        .iter()
        .map(|q| {
            (
                run_query(&db, q, ReoptMode::Off),
                run_query(&db, q, ReoptMode::MemoryOnly),
                run_query(&db, q, ReoptMode::PlanOnly),
            )
        })
        .collect()
}

/// Figure 12: normalized Full/Off time under Zipfian skew.
pub fn fig12(setup: &BenchSetup, z: f64) -> Vec<(Measurement, Measurement)> {
    let skewed = BenchSetup {
        zipf_z: Some(z),
        ..setup.clone()
    };
    let db = skewed.database();
    ["Q3", "Q10", "Q5", "Q7", "Q8"]
        .iter()
        .map(|q| {
            (
                run_query(&db, q, ReoptMode::Off),
                run_query(&db, q, ReoptMode::Full),
            )
        })
        .collect()
}

/// §2.5 overhead study: the simple queries with collection forced on.
pub fn overhead(setup: &BenchSetup) -> Vec<(Measurement, Measurement)> {
    let db = setup.database();
    ["Q1", "Q6"]
        .iter()
        .map(|q| {
            (
                run_query(&db, q, ReoptMode::Off),
                run_query(&db, q, ReoptMode::Full),
            )
        })
        .collect()
}

/// Sensitivity sweep over one knob for one query; returns
/// (knob value, Full time, switches).
pub fn sensitivity(
    setup: &BenchSetup,
    query: &'static str,
    knob: Knob,
    values: &[f64],
) -> Vec<(f64, Measurement)> {
    values
        .iter()
        .map(|&v| {
            let mut s = setup.clone();
            match knob {
                Knob::Mu => s.cfg.mu = v,
                Knob::Theta1 => s.cfg.theta1 = v,
                Knob::Theta2 => s.cfg.theta2 = v,
            }
            let db = s.database();
            (v, run_query(&db, query, ReoptMode::Full))
        })
        .collect()
}

/// The Dynamic Re-Optimization knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// μ — collection-overhead budget.
    Mu,
    /// θ1 — Equation 1 threshold.
    Theta1,
    /// θ2 — Equation 2 threshold.
    Theta2,
}

/// Figure 3 (worked example): the optimizer *under*-estimates a
/// correlated filter 4x, so the second hash join is granted a quarter
/// of the memory it needs and would run "in two passes" (spill). The
/// collector on the filter reveals the truth when the first join's
/// build completes; re-allocation re-sizes the unstarted join into the
/// unused budget and it runs in one pass.
pub fn fig03_memory_realloc() -> Fig03 {
    use midq::common::{DataType, Row, Value};
    use midq::expr::{and, cmp, col, lit, CmpOp};
    use midq::plan::{AggExpr, AggFunc};
    use midq::LogicalPlan;
    let cfg = EngineConfig {
        query_memory_bytes: 256 * 1024,
        buffer_pool_pages: 32,
        ..EngineConfig::default()
    };
    let db = Database::new(cfg).expect("engine");
    db.create_table(
        "r",
        vec![
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
            ("k", DataType::Int),
        ],
    )
    .unwrap();
    db.create_table("s", vec![("k", DataType::Int), ("m", DataType::Int)])
        .unwrap();
    db.create_table("t", vec![("m", DataType::Int), ("z", DataType::Int)])
        .unwrap();
    // a, b and c are perfectly correlated: the three-way conjunction
    // below actually keeps 50% of r, but independence predicts 12.5%,
    // so every operator downstream of the filter is sized 4x too small.
    for i in 0..4_000i64 {
        let a = i % 1_000;
        db.insert(
            "r",
            Row::new(vec![
                Value::Int(a),
                Value::Int(a),
                Value::Int(a),
                Value::Int(i % 2_000),
            ]),
        )
        .unwrap();
    }
    // s covers only 60% of the key domain: the actual join
    // multiplicity (0.35 for the filtered rows) is *below* the
    // estimated one, so the ratio-scaled correction over-provisions
    // rather than undershooting.
    for i in 0..1_200i64 {
        db.insert("s", Row::new(vec![Value::Int(i), Value::Int(i % 50)]))
            .unwrap();
    }
    for i in 0..50i64 {
        db.insert("t", Row::new(vec![Value::Int(i), Value::Int(i % 10)]))
            .unwrap();
    }
    for name in ["r", "s", "t"] {
        db.engine()
            .catalog()
            .analyze(
                db.engine().storage(),
                name,
                midq::stats::HistogramKind::MaxDiff,
                16,
                512,
                5,
            )
            .unwrap();
    }

    let q = LogicalPlan::scan_filtered(
        "r",
        and(vec![
            cmp(CmpOp::Lt, col("r.a"), lit(500i64)),
            cmp(CmpOp::Lt, col("r.b"), lit(500i64)),
            cmp(CmpOp::Lt, col("r.c"), lit(500i64)),
        ]),
    )
    .join(LogicalPlan::scan("s"), vec![("r.k", "s.k")])
    .join(LogicalPlan::scan("t"), vec![("s.m", "t.m")])
    .aggregate(
        vec!["t.z"],
        vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "n".into(),
        }],
    );

    let off = db.query_plan(&q).mode(ReoptMode::Off).run().unwrap();
    let mem = db.query_plan(&q).mode(ReoptMode::MemoryOnly).run().unwrap();
    Fig03 {
        off_ms: off.time_ms,
        mem_ms: mem.time_ms,
        off_writes: off.cost.pages_written,
        mem_writes: mem.cost.pages_written,
        reallocs: mem.memory_reallocs,
        events: mem.events,
    }
}

/// Figure 3 measurements.
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// Simulated time without re-optimization.
    pub off_ms: f64,
    /// Simulated time in MemoryOnly mode.
    pub mem_ms: f64,
    /// Spill writes without re-optimization.
    pub off_writes: u64,
    /// Spill writes with memory re-allocation.
    pub mem_writes: u64,
    /// Grant re-allocations performed.
    pub reallocs: u32,
    /// Controller event log of the MemoryOnly run.
    pub events: Vec<String>,
}

/// Render a Figure-10-style table as text.
pub fn render_pairs(title: &str, pairs: &[(Measurement, Measurement)]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "{:<5} {:>12} {:>12} {:>8} {:>9} {:>9} {:>7}\n",
        "query", "normal(ms)", "reopt(ms)", "gain%", "switches", "reallocs", "rows"
    ));
    for (off, full) in pairs {
        let gain = (off.time_ms - full.time_ms) / off.time_ms * 100.0;
        out.push_str(&format!(
            "{:<5} {:>12.1} {:>12.1} {:>8.1} {:>9} {:>9} {:>7}\n",
            off.query, off.time_ms, full.time_ms, gain, full.switches, full.reallocs, full.rows
        ));
    }
    out
}

/// One query family's warm-vs-cold cache measurement: the cold run
/// pays the mid-query switch and promotes its materialization; the
/// warm run plans from the feedback store and splices the cached
/// sub-plan back in.
#[derive(Debug, Clone)]
pub struct CachePoint {
    /// Query family.
    pub query: &'static str,
    /// Simulated time of the first (cold-cache) run.
    pub cold_ms: f64,
    /// Simulated time of the repeat (warm-cache) run.
    pub warm_ms: f64,
    /// Plan switches the cold run accepted.
    pub cold_switches: u32,
    /// Plan switches the warm run accepted (feedback should drive
    /// this to zero for a repeated family).
    pub warm_switches: u32,
    /// Cache promotions the cold run made.
    pub promotions: u64,
    /// Cache hits the warm run scored.
    pub hits: u64,
    /// Bytes of intermediates the warm run read instead of recomputed.
    pub saved_bytes: u64,
}

/// The cross-query cache experiment: each family runs twice on one
/// cache-enabled database (bare acceptance margin, PlanOnly — the
/// regime where stale statistics force mid-query switches). Cold pays
/// the switch and promotes; warm replans from feedback and reuses.
pub fn cache_warm_vs_cold(setup: &BenchSetup, names: &[&'static str]) -> Vec<CachePoint> {
    let mut s = setup.clone();
    s.cfg.cache_enabled = true;
    s.cfg.switch_margin = 1.0;
    let db = s.database();
    names
        .iter()
        .map(|q| {
            let before = db.cache_stats();
            let cold = run_query(&db, q, ReoptMode::PlanOnly);
            let mid = db.cache_stats();
            let warm = run_query(&db, q, ReoptMode::PlanOnly);
            let after = db.cache_stats();
            CachePoint {
                query: q,
                cold_ms: cold.time_ms,
                warm_ms: warm.time_ms,
                cold_switches: cold.switches,
                warm_switches: warm.switches,
                promotions: mid.promotions - before.promotions,
                hits: after.hits - mid.hits,
                saved_bytes: after.saved_bytes - mid.saved_bytes,
            }
        })
        .collect()
}

/// One run in the plan-cache experiment arc (cold → warm → stale →
/// re-warmed).
#[derive(Debug, Clone)]
pub struct PlanCacheRun {
    /// What this run demonstrates (cold, warm, stale, ...).
    pub label: String,
    /// Simulated time (ms).
    pub time_ms: f64,
    /// Optimizer work units this run paid (join enumeration); a
    /// plan-cache hit pays exactly zero.
    pub opt_work: u64,
    /// Plan-cache outcome pulled from the controller event log:
    /// `hit`, `miss`, or `stale`.
    pub outcome: &'static str,
    /// Result cardinality.
    pub rows: usize,
    /// Whether the rows are byte-identical to the same statement run
    /// on a plan-cache-off oracle database with identical contents.
    pub rows_match_oracle: bool,
}

/// Canonical row rendering for the oracle comparison.
fn rendered_rows(out: &QueryOutcome) -> Vec<String> {
    out.rows.iter().map(|r| r.to_string()).collect()
}

fn plancache_outcome(out: &QueryOutcome) -> &'static str {
    if out.events.iter().any(|e| e.starts_with("plancache: stale")) {
        "stale"
    } else if out.events.iter().any(|e| e.starts_with("plancache: hit")) {
        "hit"
    } else if out.events.iter().any(|e| e.starts_with("plancache: miss")) {
        "miss"
    } else {
        "-"
    }
}

/// The plan-cache experiment: one query family (same shape, different
/// literals) runs through a plan-cache-enabled database. The cold run
/// pays join enumeration and enters a template; warm runs rebind the
/// literals and pay zero optimizer work; an insert into a base table
/// bumps its data version and forces exactly one stale re-enumeration
/// before the family re-warms. Every run is checked byte-for-byte
/// against a plan-cache-off oracle kept at identical contents.
pub fn plancache_arc(setup: &BenchSetup) -> Vec<PlanCacheRun> {
    use midq::common::{Row, Value};

    let mut s = setup.clone();
    s.cfg.plan_cache_enabled = true;
    let db = s.database();
    let oracle = setup.database(); // plan cache off

    let family = |qty: i64, price: i64| {
        format!(
            "SELECT o_orderstatus, count(*) AS n, max(o_totalprice) AS top \
             FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_quantity < {qty} \
             AND o_totalprice > {price} \
             GROUP BY o_orderstatus ORDER BY o_orderstatus"
        )
    };

    let mut runs = Vec::new();
    let mut measure = |label: String, sql: &str| {
        let out = db
            .query(sql)
            .mode(ReoptMode::Off)
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let oracle_out = oracle
            .query(sql)
            .mode(ReoptMode::Off)
            .run()
            .unwrap_or_else(|e| panic!("oracle {label}: {e}"));
        runs.push(PlanCacheRun {
            label,
            time_ms: out.time_ms,
            opt_work: out.cost.opt_work,
            outcome: plancache_outcome(&out),
            rows: out.rows.len(),
            rows_match_oracle: rendered_rows(&out) == rendered_rows(&oracle_out),
        });
    };

    measure("cold (25, 1000)".into(), &family(25, 1000));
    measure("warm (30, 1000)".into(), &family(30, 1000));
    measure("warm (25, 2500)".into(), &family(25, 2500));
    measure("warm (40, 500)".into(), &family(40, 500));

    // A write to a base table bumps its data version: the next probe
    // of the family must fall through to one full re-enumeration.
    let extra = Row::new(vec![
        Value::Int(1),
        Value::Int(1),
        Value::Int(1),
        Value::Int(1),
        Value::Float(100.0),
        Value::Float(0.01),
        Value::Float(0.01),
        Value::str("N"),
        Value::str("O"),
        midq::common::value::date(1996, 1, 1),
        midq::common::value::date(1996, 1, 15),
        midq::common::value::date(1996, 2, 1),
    ]);
    db.insert("lineitem", extra.clone()).expect("insert");
    oracle.insert("lineitem", extra).expect("oracle insert");

    measure("stale (25, 1000)".into(), &family(25, 1000));
    measure("re-warm (30, 1000)".into(), &family(30, 1000));
    runs
}

/// Ablation: the plan-switch acceptance margin. `switch_margin = 1.0`
/// reproduces the paper's bare `<` acceptance; the default hedges the
/// winner's-curse bias. Returns (margin, per-query Full-mode
/// measurements) so EXPERIMENTS.md can show why the margin exists.
pub fn ablation_switch_margin(
    setup: &BenchSetup,
    margins: &[f64],
) -> Vec<(f64, Vec<(Measurement, Measurement)>)> {
    margins
        .iter()
        .map(|&m| {
            let mut s = setup.clone();
            s.cfg.switch_margin = m;
            let db = s.database();
            let rows = ["Q5", "Q7", "Q8"]
                .iter()
                .map(|q| {
                    (
                        run_query(&db, q, ReoptMode::Off),
                        run_query(&db, q, ReoptMode::PlanOnly),
                    )
                })
                .collect();
            (m, rows)
        })
        .collect()
}

/// Ablation: re-allocation demand headroom (1.0 = trust the improved
/// estimates exactly).
pub fn ablation_realloc_headroom(
    setup: &BenchSetup,
    headrooms: &[f64],
) -> Vec<(f64, Vec<(Measurement, Measurement)>)> {
    headrooms
        .iter()
        .map(|&h| {
            let mut s = setup.clone();
            s.cfg.realloc_headroom = h;
            let db = s.database();
            let rows = ["Q3", "Q5", "Q8"]
                .iter()
                .map(|q| {
                    (
                        run_query(&db, q, ReoptMode::Off),
                        run_query(&db, q, ReoptMode::MemoryOnly),
                    )
                })
                .collect();
            (h, rows)
        })
        .collect()
}

/// Ablation: the histogram class stored in the catalog (§2.5's
/// inaccuracy-potential driver). Serial-class histograms (MaxDiff,
/// end-biased, V-optimal) start estimates at low potential; bucket-class
/// ones (equi-width/depth) at medium; the class also changes the
/// optimizer's estimates themselves. Returns per-kind (Off, Full)
/// measurements for the given query.
pub fn ablation_histogram_class(
    setup: &BenchSetup,
    query: &'static str,
) -> Vec<(midq::stats::HistogramKind, Measurement, Measurement)> {
    use midq::stats::HistogramKind;
    [
        HistogramKind::EquiWidth,
        HistogramKind::EquiDepth,
        HistogramKind::MaxDiff,
        HistogramKind::EndBiased,
        HistogramKind::VOptimal,
    ]
    .into_iter()
    .map(|kind| {
        let db = Database::new(setup.cfg.clone()).expect("engine");
        db.load_tpcd(&TpcdConfig {
            scale: setup.scale,
            zipf_z: setup.zipf_z,
            analyze_after_fraction: setup.analyze_after_fraction,
            histogram: kind,
            ..TpcdConfig::default()
        })
        .expect("load");
        (
            kind,
            run_query(&db, query, ReoptMode::Off),
            run_query(&db, query, ReoptMode::Full),
        )
    })
    .collect()
}

/// One point of the concurrent-runtime throughput experiment.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Worker threads.
    pub workers: usize,
    /// Global memory budget the broker enforced.
    pub global_budget_bytes: usize,
    /// Queries in the workload.
    pub queries: usize,
    /// Completed queries.
    pub succeeded: usize,
    /// Simulated makespan (max per-worker sum).
    pub makespan_sim_ms: f64,
    /// Queries per simulated second.
    pub throughput_qps: f64,
    /// Simulated speedup over one worker running the same jobs.
    pub speedup: f64,
    /// Peak queries simultaneously in flight.
    pub max_in_flight: usize,
    /// Peak bytes the broker had outstanding.
    pub high_water_bytes: usize,
}

/// The workload for the throughput experiments: every paper query,
/// `rounds` times, under Full re-optimization.
fn throughput_workload(workers: usize, rounds: usize) -> midq::Workload {
    let mut wl = midq::Workload::new(workers);
    for round in 0..rounds {
        for (name, plan) in queries::all() {
            wl.queries
                .push(midq::WorkloadQuery::plan(format!("{name}.r{round}"), plan));
        }
    }
    wl
}

fn throughput_point(db: &Database, wl: &midq::Workload) -> ThroughputPoint {
    let report = db.run_concurrent(wl);
    ThroughputPoint {
        workers: report.workers,
        global_budget_bytes: report.global_budget_bytes,
        queries: report.results.len(),
        succeeded: report.succeeded(),
        makespan_sim_ms: report.makespan_sim_ms,
        throughput_qps: report.throughput_qps(),
        speedup: report.speedup(),
        max_in_flight: report.max_in_flight,
        high_water_bytes: report.broker_high_water,
    }
}

/// Throughput vs worker count: the same multi-query workload on 1, 2,
/// 4, ... workers, each against a freshly loaded database. The global
/// budget scales with the workers (`workers × query_memory_bytes`), so
/// this isolates the parallelism axis.
pub fn throughput_vs_workers(setup: &BenchSetup, workers: &[usize]) -> Vec<ThroughputPoint> {
    workers
        .iter()
        .map(|&w| {
            let db = setup.database();
            throughput_point(&db, &throughput_workload(w, 4))
        })
        .collect()
}

/// Throughput vs global memory budget at a fixed worker count: as the
/// broker's budget shrinks below `workers × query_memory_bytes`,
/// admission starts queueing queries and leases get squeezed (more
/// spills), trading memory for throughput.
pub fn throughput_vs_budget(
    setup: &BenchSetup,
    workers: usize,
    budgets: &[usize],
) -> Vec<ThroughputPoint> {
    budgets
        .iter()
        .map(|&b| {
            let db = setup.database();
            let wl = throughput_workload(workers, 4).with_global_memory(b);
            throughput_point(&db, &wl)
        })
        .collect()
}

/// One point of the intra-query partitioned execution experiment.
#[derive(Debug, Clone)]
pub struct ParPoint {
    /// Partition (simulated worker) count.
    pub partitions: usize,
    /// Simulated elapsed time (overlap-adjusted).
    pub time_ms: f64,
    /// Simulated time the overlap absorbed.
    pub saved_ms: f64,
    /// Total I/O pages (reads + writes) — partition-count invariant.
    pub io_pages: u64,
    /// Total CPU ops — partition-count invariant (modulo routing).
    pub cpu_ops: u64,
    /// Exchange stages in the executed plan.
    pub exchanges: usize,
    /// Skew verdicts the driver emitted.
    pub skew_verdicts: usize,
    /// Worst observed max/mean per-partition load ratio before and
    /// after re-balancing (both 1.0 when no verdict fired).
    pub worst_skew: (f64, f64),
    /// Result cardinality (sanity).
    pub rows: usize,
}

fn par_point(db: &Database, query: &'static str, partitions: usize) -> ParPoint {
    let q = queries::all()
        .into_iter()
        .find(|(n, _)| *n == query)
        .unwrap_or_else(|| panic!("unknown query {query}"))
        .1;
    let out = db
        .query_plan(&q)
        .mode(ReoptMode::Off)
        .partitions(partitions)
        .run()
        .unwrap_or_else(|e| panic!("{query} P={partitions}: {e}"));
    let par = out.par.expect("partitioned outcome carries a report");
    let worst = par
        .skew
        .iter()
        .max_by(|a, b| a.ratio.total_cmp(&b.ratio))
        .map(|s| (s.ratio, s.after_ratio))
        .unwrap_or((1.0, 1.0));
    ParPoint {
        partitions,
        time_ms: out.time_ms,
        saved_ms: par.saved_ms,
        io_pages: out.cost.pages_read + out.cost.pages_written,
        cpu_ops: out.cost.cpu_ops,
        exchanges: par.exchanges.len(),
        skew_verdicts: par.skew.len(),
        worst_skew: worst,
        rows: out.rows.len(),
    }
}

/// PAR figure, panel (a): one query's simulated elapsed time as the
/// partition count grows. Each point runs on a freshly loaded database
/// (identical pool state), so the io/cpu columns demonstrate that only
/// the overlap — never the work — changes with the partition count.
pub fn par_speedup(setup: &BenchSetup, query: &'static str, partitions: &[usize]) -> Vec<ParPoint> {
    partitions
        .iter()
        .map(|&p| par_point(&setup.database(), query, p))
        .collect()
}

/// PAR figure, panel (b): skewed Q10 under a static bucket → partition
/// assignment (skew verdict disabled via an effectively infinite θ)
/// versus the skew-aware driver (verdict fires, hot buckets get spread
/// by the capped re-balance). Returns `(static, rebalanced)`.
pub fn par_skew(setup: &BenchSetup, z: f64, partitions: usize, theta: f64) -> (ParPoint, ParPoint) {
    let run = |theta: f64| {
        let mut s = setup.clone();
        s.zipf_z = Some(z);
        s.cfg.par_skew_theta = theta;
        par_point(&s.database(), "Q10", partitions)
    };
    (run(1e18), run(theta))
}

/// One collector checkpoint pulled out of a JSONL trace: the paper's
/// est-vs-actual evidence row (§2.2 — "detecting suboptimality").
#[derive(Debug, Clone)]
pub struct EstActualRow {
    /// Plan node id of the statistics collector.
    pub node: u64,
    /// Optimizer's cardinality estimate at that point.
    pub estimated_rows: f64,
    /// Rows the collector actually observed.
    pub observed_rows: u64,
    /// `max(obs/est, est/obs)` — the paper's inaccuracy factor.
    pub inaccuracy: f64,
    /// Whether the operator beneath had completed (end-of-segment
    /// checkpoint) or was still mid-flight (progress checkpoint).
    pub complete: bool,
}

/// The trace-derived experiment: run one named query under Full
/// re-optimization with a JSONL sink attached and distill the trace
/// into (a) the est-vs-actual table and (b) the re-opt verdict lines.
/// This is the machine-checked version of the paper's Table 1-style
/// narrative: which estimate was wrong, by how much, and what the
/// re-optimizer decided about it.
pub fn est_vs_actual(setup: &BenchSetup, name: &'static str) -> (Vec<EstActualRow>, Vec<String>) {
    use midq::obs::{json_f64, json_str, json_u64, JsonlSink, Obs};

    let db = setup.database();
    let q = queries::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown query {name}"))
        .1;
    let sink = std::sync::Arc::new(JsonlSink::new());
    let obs = Obs::none().with_sink(sink.clone()).for_job(1, name);
    db.query_plan(&q)
        .mode(ReoptMode::Full)
        .observed(&obs)
        .run()
        .unwrap_or_else(|e| panic!("{name}: {e}"));

    let mut rows = Vec::new();
    let mut verdicts = Vec::new();
    for line in sink.lines() {
        match json_str(&line, "event").as_deref() {
            Some("collector") => rows.push(EstActualRow {
                node: json_u64(&line, "node").unwrap_or(0),
                estimated_rows: json_f64(&line, "estimated_rows").unwrap_or(0.0),
                observed_rows: json_u64(&line, "observed_rows").unwrap_or(0),
                inaccuracy: json_f64(&line, "inaccuracy").unwrap_or(0.0),
                complete: json_raw_bool(&line),
            }),
            Some("reopt") => {
                let verdict = json_str(&line, "verdict").unwrap_or_default();
                let t_cur = json_f64(&line, "t_cur_ms").unwrap_or(0.0);
                let t_new = json_f64(&line, "t_new_ms").unwrap_or(0.0);
                verdicts.push(format!("{verdict}: t_cur={t_cur:.1}ms t_new={t_new:.1}ms"));
            }
            _ => {}
        }
    }
    (rows, verdicts)
}

/// `complete` is an unquoted JSON bool; [`midq::obs::json_str`] only
/// reads quoted strings, so fall back to the raw token.
fn json_raw_bool(line: &str) -> bool {
    midq::obs::json_raw(line, "complete") == Some("true")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchSetup {
        // Small enough to load in well under a second; the harness
        // mechanics (not the figure magnitudes) are under test here.
        BenchSetup {
            scale: 0.001,
            ..BenchSetup::default()
        }
    }

    #[test]
    fn render_pairs_formats_gain() {
        let m = |t: f64, mode| Measurement {
            query: "Q5",
            mode,
            time_ms: t,
            switches: 1,
            reallocs: 2,
            rows: 7,
        };
        let text = render_pairs(
            "Fig X",
            &[(m(200.0, ReoptMode::Off), m(100.0, ReoptMode::Full))],
        );
        assert!(text.contains("== Fig X =="));
        assert!(text.contains("50.0"), "gain column: {text}");
        assert!(text.contains("200.0") && text.contains("100.0"));
        // One header + one data row.
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn default_setup_is_paper_regime() {
        let s = BenchSetup::default();
        assert!(s.zipf_z.is_none());
        assert_eq!(s.analyze_after_fraction, 0.5);
        // Pool must stay small relative to data or re-optimization
        // decisions stop mattering.
        assert!(s.cfg.buffer_pool_pages <= 64);
        s.cfg.validate().expect("default bench config is valid");
    }

    #[test]
    fn database_loads_and_runs_every_query() {
        let db = tiny().database();
        for q in QUERIES {
            let m = run_query(&db, q, ReoptMode::Off);
            assert!(m.time_ms > 0.0, "{q} took no time");
            assert_eq!(m.switches, 0, "{q}: Off mode never switches");
            assert_eq!(m.reallocs, 0, "{q}: Off mode never reallocates");
        }
    }

    #[test]
    fn cache_experiment_promotes_and_reuses() {
        let points = cache_warm_vs_cold(&BenchSetup::default(), &["Q10"]);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.cold_switches >= 1, "cold Q10 must switch: {p:?}");
        assert!(p.promotions >= 1, "the switch temp must promote: {p:?}");
        assert!(p.hits >= 1, "the warm run must reuse it: {p:?}");
        assert!(
            p.warm_switches < p.cold_switches,
            "feedback must reduce repeat re-optimization: {p:?}"
        );
        assert!(
            p.warm_ms < p.cold_ms,
            "warm must be cheaper than cold: {p:?}"
        );
    }

    /// Two databases built from the same setup give bit-identical
    /// measurements. (Re-running on the *same* database legitimately
    /// differs — the buffer pool is warm — which is why every figure
    /// runs its modes in a fixed order.)
    #[test]
    fn measurements_are_deterministic() {
        let a = run_query(&tiny().database(), "Q3", ReoptMode::Full);
        let b = run_query(&tiny().database(), "Q3", ReoptMode::Full);
        assert_eq!(a.time_ms, b.time_ms);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.reallocs, b.reallocs);
    }

    #[test]
    #[should_panic(expected = "unknown query")]
    fn unknown_query_panics() {
        let db = tiny().database();
        let _ = run_query(&db, "Q99", ReoptMode::Off);
    }

    #[test]
    fn throughput_experiment_overlaps_queries_and_respects_budget() {
        let points = throughput_vs_workers(&tiny(), &[1, 4]);
        assert_eq!(points.len(), 2);
        let serial = &points[0];
        let pool = &points[1];
        assert_eq!(serial.succeeded, serial.queries);
        assert_eq!(pool.succeeded, pool.queries);
        assert_eq!(serial.max_in_flight, 1);
        assert!(pool.max_in_flight > 1, "4-worker pool never overlapped");
        assert!(pool.high_water_bytes <= pool.global_budget_bytes);
        assert!(pool.makespan_sim_ms <= serial.makespan_sim_ms + 1e-9);
    }
}
