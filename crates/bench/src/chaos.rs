//! Chaos harness: the TPC-D mini-workload under seeded fault
//! schedules.
//!
//! Each seed derives one deterministic [`FaultInjector`] per query
//! (transient/permanent I/O faults, grant denials, cancellation
//! triggers) and runs the workload three times — twice at 1 worker,
//! once at 4 workers. The invariants checked after every run are the
//! robustness contract of the engine:
//!
//! 1. **Correct or cleanly failed** — every query either returns the
//!    fault-free oracle result (transient faults are absorbed by
//!    segment retries) or fails with a clean typed error (permanent
//!    faults, injected cancellation, exhausted retry budget);
//! 2. **Leak-proof** — after each run [`Engine::audit`] is clean (no
//!    surviving `tmp_reopt_*` tables, no orphaned disk pages, no stuck
//!    buffer pins), the broker has zero bytes outstanding and no
//!    cleanup operation failed;
//! 3. **Deterministic** — the three runs of a seed produce identical
//!    per-query fingerprints *and* byte-identical per-query stable
//!    metrics snapshots ([`MetricsSnapshot::stable_text`]: segments,
//!    collector reports, re-opt verdicts, retries, cleanup — everything
//!    except physical-cost metrics, which legitimately vary with pool
//!    warmth). Faults fire on the Nth *logical* buffer access of the
//!    faulted query, so schedules replay byte-identically regardless of
//!    worker interleaving or pool warmth.
//!
//! Determinism across worker counts additionally requires that the runs
//! themselves are replayable: the harness therefore disables
//! statistics feedback (its catalog write-back order depends on query
//! completion order) and gives the broker an ample budget so
//! opportunistic lease growth never depends on what other queries
//! transiently hold. Fault-injected grant denials still exercise the
//! denial path — they clamp regardless of availability.
//!
//! [`Engine::audit`]: midq::Engine::audit
//! [`FaultInjector`]: midq::common::FaultInjector
//! [`MetricsSnapshot::stable_text`]: midq::obs::MetricsSnapshot::stable_text

use midq::common::{EngineConfig, FaultInjector, FaultProfile};
use midq::obs::{MetricsRegistry, Obs};
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, QueryOutcome, ReoptMode, Result, Runtime, Workload, WorkloadQuery};

/// The chaos query set: two pipeline-heavy single-table queries and two
/// multi-join queries (plan switches under fault are the interesting
/// unwinding paths).
pub const CHAOS_QUERIES: [&str; 4] = ["Q1", "Q3", "Q6", "Q10"];

/// Worker counts every seed is replayed at.
pub const WORKER_CONFIGS: [usize; 2] = [1, 4];

/// Intra-query partition counts the partitioned campaign replays every
/// seed at. Bucket composition is partition-count invariant, so the
/// fault schedules (Nth logical buffer access) — and with them the
/// fingerprints and stable metrics — must replay byte-identically.
pub const PARTITION_CONFIGS: [usize; 2] = [1, 4];

/// A broker budget large enough that lease growth is never contended:
/// pure accounting, no actual allocation behind it.
const AMPLE_BUDGET: usize = 1 << 30;

/// Build the chaos database: a small TPC-D load with statistics
/// feedback disabled (see the module docs on determinism).
pub fn chaos_database() -> Database {
    chaos_database_with(false)
}

/// [`chaos_database`] with the normalized-SQL plan cache toggled.
pub fn chaos_database_with(plan_cache: bool) -> Database {
    let cfg = EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        stats_feedback: false,
        plan_cache_enabled: plan_cache,
        ..EngineConfig::default()
    };
    let db = Database::new(cfg).expect("engine");
    db.load_tpcd(&TpcdConfig {
        scale: 0.002,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .expect("load");
    db
}

/// How a chaos query is submitted: a built-in logical plan, or SQL
/// text (which routes through the plan cache when it is enabled).
#[derive(Debug, Clone)]
pub enum ChaosQuery {
    /// A built-in TPC-D plan.
    Plan(midq::LogicalPlan),
    /// A SQL statement.
    Sql(String),
}

/// Order-insensitive fingerprint of one query outcome: `ok:<rows>:<hash>`
/// over the sorted row renderings, or `err:<kind>`. Deliberately
/// excludes timings (pool warmth varies across runs) and row order
/// (memory-dependent for hash operators).
pub fn fingerprint(outcome: &Result<QueryOutcome>) -> String {
    match outcome {
        Ok(o) => {
            let mut rows: Vec<String> = o.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for r in &rows {
                for b in r.bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h = h.wrapping_mul(0x100_0000_01b3) ^ 0xff;
            }
            format!("ok:{}:{h:016x}", rows.len())
        }
        Err(e) => format!("err:{}", e.kind()),
    }
}

/// Error kinds a faulted query may legitimately fail with.
fn is_clean_failure(kind: &str) -> bool {
    matches!(kind, "storage" | "cancelled" | "oom")
}

/// Aggregate result of a chaos campaign.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Seeds exercised.
    pub seeds: usize,
    /// Total query executions across all runs.
    pub executions: usize,
    /// Queries that completed with at least one segment retry (a
    /// transient fault was absorbed, and the rows still matched the
    /// oracle).
    pub transient_recoveries: u64,
    /// Queries that failed with a clean typed error.
    pub clean_failures: u64,
    /// Injected faults that actually fired, by class.
    pub fired_transient: u64,
    /// Permanent I/O faults fired.
    pub fired_permanent: u64,
    /// Grant denials fired.
    pub fired_denials: u64,
    /// Cancellation triggers fired.
    pub fired_cancels: u64,
    /// Invariant violations (empty = the campaign passed).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Did the campaign uphold every invariant — and actually exercise
    /// the recovery path at least once?
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.transient_recoveries > 0
    }

    /// One-paragraph summary for logs and CI output.
    pub fn summary(&self) -> String {
        format!(
            "chaos: {} seeds, {} executions — {} transient recoveries, {} clean failures \
             (fired: {} transient, {} permanent, {} denials, {} cancels) — {} violation(s)",
            self.seeds,
            self.executions,
            self.transient_recoveries,
            self.clean_failures,
            self.fired_transient,
            self.fired_permanent,
            self.fired_denials,
            self.fired_cancels,
            self.violations.len()
        )
    }
}

/// One run of the workload under a seed's fault schedules.
struct RunOutcome {
    fingerprints: Vec<String>,
    retries: Vec<u32>,
    /// Per-query stable metrics expositions, compared byte-for-byte
    /// across a seed's runs (invariant 3).
    stable_metrics: Vec<String>,
    fired: (u64, u64, u64, u64),
}

fn run_once(
    db: &Database,
    specs: &[(&'static str, ChaosQuery)],
    seed: u64,
    workers: usize,
    partitions: Option<usize>,
) -> RunOutcome {
    let mut wl = Workload::new(workers);
    wl.partitions = partitions;
    let mut injectors = Vec::new();
    for (qi, (name, q)) in specs.iter().enumerate() {
        // Alternate modes so fault unwinding is exercised both with and
        // without the re-optimization machinery in the path.
        let mode = if qi % 2 == 0 {
            ReoptMode::Full
        } else {
            ReoptMode::Off
        };
        let inj = FaultInjector::from_seed(
            seed.wrapping_mul(1000).wrapping_add(qi as u64),
            &FaultProfile::default(),
        );
        injectors.push(inj.clone());
        let query = match q {
            ChaosQuery::Plan(plan) => WorkloadQuery::plan(*name, plan.clone()),
            ChaosQuery::Sql(sql) => WorkloadQuery::sql(*name, sql.clone()),
        };
        wl.queries.push(query.with_mode(mode).with_faults(inj));
    }
    wl.obs = Some(Obs::none().with_metrics(MetricsRegistry::new()));
    let runtime = Runtime::new(db.engine_arc(), AMPLE_BUDGET);
    let report = runtime.run_workload(&wl);
    let lease_leak = runtime.broker().in_use();

    let mut out = RunOutcome {
        fingerprints: report
            .results
            .iter()
            .map(|r| fingerprint(&r.outcome))
            .collect(),
        retries: report
            .results
            .iter()
            .map(|r| r.outcome.as_ref().map(|o| o.segment_retries).unwrap_or(0))
            .collect(),
        stable_metrics: report
            .results
            .iter()
            .map(|r| r.metrics.stable_text())
            .collect(),
        fired: (0, 0, 0, 0),
    };
    for inj in &injectors {
        let f = inj.fired();
        out.fired.0 += f.transient;
        out.fired.1 += f.permanent;
        out.fired.2 += f.denials;
        out.fired.3 += f.cancels;
    }
    if lease_leak != 0 {
        out.fingerprints
            .push(format!("VIOLATION: {lease_leak} bytes still leased"));
    }
    out
}

/// The chaos query set as campaign specs (built-in logical plans).
fn builtin_specs() -> Vec<(&'static str, ChaosQuery)> {
    let all = queries::all();
    CHAOS_QUERIES
        .iter()
        .map(|name| {
            all.iter()
                .find(|(n, _)| n == name)
                .map(|(n, p)| (*n, ChaosQuery::Plan(p.clone())))
                .unwrap_or_else(|| panic!("unknown chaos query {name}"))
        })
        .collect()
}

/// Fault-free oracle fingerprint of one spec on `db`.
fn oracle_fingerprint(db: &Database, q: &ChaosQuery, partitioned: bool) -> String {
    match q {
        ChaosQuery::Plan(p) if partitioned => {
            fingerprint(&db.query_plan(p).mode(ReoptMode::Off).partitions(1).run())
        }
        ChaosQuery::Plan(p) => fingerprint(&db.query_plan(p).mode(ReoptMode::Off).run()),
        ChaosQuery::Sql(s) => fingerprint(&db.query(s).mode(ReoptMode::Off).run()),
    }
}

/// Run the chaos campaign over `seeds` consecutive seeds starting at
/// `first_seed`. `verbose` prints one line per seed.
pub fn run_chaos(first_seed: u64, seeds: u64, verbose: bool) -> ChaosReport {
    // Replays: twice at 1 worker (same-config determinism), once at 4.
    let configs = [(1, None, 2), (4, None, 1)];
    let db = chaos_database();
    let specs = builtin_specs();
    let oracle: Vec<String> = specs
        .iter()
        .map(|(_, q)| oracle_fingerprint(&db, q, false))
        .collect();
    run_campaign(first_seed, seeds, verbose, &configs, &db, &specs, &oracle)
}

/// The plan-cache chaos campaign: the same robustness invariants with
/// the normalized-SQL plan cache enabled and warm. Queries arrive as
/// SQL (two literal-variant families), so every seeded run probes the
/// cache; the oracle comes from an independent plan-cache-off database
/// with identical contents, so a wrong rebind can never self-certify.
/// A fault-free warm pass precedes the campaign: plan-cache traffic is
/// part of the stable metrics compared across reps and worker counts,
/// and a warm cache makes it a function of the query sequence alone.
pub fn run_chaos_plancache(first_seed: u64, seeds: u64, verbose: bool) -> ChaosReport {
    let configs = [(1, None, 2), (4, None, 1)];
    let db = chaos_database_with(true);
    let oracle_db = chaos_database();
    let join_family = |qty: i64, price: i64| {
        format!(
            "SELECT o_orderstatus, count(*) AS n, max(o_totalprice) AS top \
             FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_quantity < {qty} \
             AND o_totalprice > {price} \
             GROUP BY o_orderstatus ORDER BY o_orderstatus"
        )
    };
    let agg_family = |qty: i64| {
        format!(
            "SELECT l_returnflag, count(*) AS n, max(l_extendedprice) AS top \
             FROM lineitem WHERE l_quantity < {qty} \
             GROUP BY l_returnflag ORDER BY l_returnflag"
        )
    };
    let specs = vec![
        ("j0", ChaosQuery::Sql(join_family(25, 1000))),
        ("a0", ChaosQuery::Sql(agg_family(30))),
        ("j1", ChaosQuery::Sql(join_family(40, 500))),
        ("a1", ChaosQuery::Sql(agg_family(45))),
    ];
    let oracle: Vec<String> = specs
        .iter()
        .map(|(_, q)| oracle_fingerprint(&oracle_db, q, false))
        .collect();
    for (name, q) in &specs {
        if let ChaosQuery::Sql(s) = q {
            db.query(s)
                .mode(ReoptMode::Off)
                .run()
                .unwrap_or_else(|e| panic!("warm pass {name}: {e}"));
        }
    }
    assert!(
        db.plan_cache_stats().entries > 0,
        "warm pass entered no plan-cache template"
    );
    run_campaign(first_seed, seeds, verbose, &configs, &db, &specs, &oracle)
}

/// The partitioned chaos campaign: the same seeded fault schedules,
/// but every query runs through the intra-query partitioned driver
/// (`mq-par`), so faults now fire inside partition bucket runs — mid
/// hash-join build, mid chunked scan — and the unwinding path crosses
/// the exchange barriers. Invariants are unchanged: oracle rows or a
/// clean typed error, a clean audit after every run, and byte-identical
/// fingerprints *and* stable metrics across partition counts (bucket
/// composition does not depend on the partition count).
pub fn run_chaos_partitioned(first_seed: u64, seeds: u64, verbose: bool) -> ChaosReport {
    // Replays: twice at P=1 (same-config determinism), once at P=4 on
    // two workers (group lease admission + partitioned execution).
    let configs = [
        (1, Some(PARTITION_CONFIGS[0]), 2),
        (2, Some(PARTITION_CONFIGS[1]), 1),
    ];
    let db = chaos_database();
    let specs = builtin_specs();
    // The partitioned campaign computes its oracle through the
    // partitioned driver too: bucketed execution sums floats in bucket
    // order, which differs from serial order at the ulp level — but is
    // invariant across partition counts, so one fault-free P=1 run
    // anchors every configuration.
    let oracle: Vec<String> = specs
        .iter()
        .map(|(_, q)| oracle_fingerprint(&db, q, true))
        .collect();
    run_campaign(first_seed, seeds, verbose, &configs, &db, &specs, &oracle)
}

/// The shared campaign loop: replay every seed under each
/// `(workers, partitions, repetitions)` configuration and check the
/// three robustness invariants. The oracle: every query fault-free, in
/// both modes' row sets (modes agree on rows; the fingerprint is
/// order-insensitive).
fn run_campaign(
    first_seed: u64,
    seeds: u64,
    verbose: bool,
    configs: &[(usize, Option<usize>, usize)],
    db: &Database,
    specs: &[(&'static str, ChaosQuery)],
    oracle: &[String],
) -> ChaosReport {
    let mut report = ChaosReport {
        seeds: seeds as usize,
        ..ChaosReport::default()
    };
    let violate = |violations: &mut Vec<String>, msg: String| {
        if violations.len() < 32 {
            violations.push(msg);
        }
    };

    for seed in first_seed..first_seed + seeds {
        let mut runs: Vec<(String, RunOutcome)> = Vec::new();
        for &(workers, partitions, reps) in configs {
            for rep in 0..reps {
                let label = match partitions {
                    Some(p) => format!("seed {seed} w{workers} p{p} rep{rep}"),
                    None => format!("seed {seed} w{workers} rep{rep}"),
                };
                let run = run_once(db, specs, seed, workers, partitions);
                report.executions += run.fingerprints.len().min(specs.len());
                report.fired_transient += run.fired.0;
                report.fired_permanent += run.fired.1;
                report.fired_denials += run.fired.2;
                report.fired_cancels += run.fired.3;

                // Invariant 2: leak-proof after every run.
                let audit = db.engine().audit();
                if !audit.is_clean() {
                    violate(&mut report.violations, format!("{label}: {audit}"));
                }
                if db.engine().cleanup_failure_count() != 0 {
                    violate(
                        &mut report.violations,
                        format!(
                            "{label}: {} cleanup failure(s)",
                            db.engine().cleanup_failure_count()
                        ),
                    );
                }

                // Invariant 1: oracle result or clean typed error.
                for (qi, fp) in run.fingerprints.iter().enumerate() {
                    if qi >= specs.len() {
                        violate(&mut report.violations, format!("{label}: {fp}"));
                        continue;
                    }
                    if let Some(kind) = fp.strip_prefix("err:") {
                        if !is_clean_failure(kind) {
                            violate(
                                &mut report.violations,
                                format!("{label} {}: dirty failure {fp}", specs[qi].0),
                            );
                        }
                        report.clean_failures += 1;
                    } else if *fp != oracle[qi] {
                        violate(
                            &mut report.violations,
                            format!(
                                "{label} {}: rows diverged from oracle ({fp} vs {})",
                                specs[qi].0, oracle[qi]
                            ),
                        );
                    } else if run.retries[qi] > 0 {
                        report.transient_recoveries += 1;
                    }
                }
                runs.push((label, run));
            }
        }

        // Invariant 3: the seed's runs are byte-identical — result
        // fingerprints and per-query stable metrics alike.
        let (first_label, first) = &runs[0];
        for (label, run) in &runs[1..] {
            if run.fingerprints != first.fingerprints {
                violate(
                    &mut report.violations,
                    format!(
                        "seed {seed}: outcome diverged between {first_label} {:?} and {label} {:?}",
                        first.fingerprints, run.fingerprints
                    ),
                );
            }
            if run.stable_metrics != first.stable_metrics {
                let qi = first
                    .stable_metrics
                    .iter()
                    .zip(&run.stable_metrics)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                violate(
                    &mut report.violations,
                    format!(
                        "seed {seed}: stable metrics diverged between {first_label} and \
                         {label} (first at query {qi})"
                    ),
                );
            }
        }
        if verbose {
            println!(
                "seed {seed}: {:?} (retries {:?})",
                first.fingerprints, first.retries
            );
        }
    }
    report
}
