//! Crash campaign: kill the engine at every checkpoint boundary (and
//! at sampled mid-materialization page writes), recover, and verify
//! the recovery contract.
//!
//! For each chaos query × execution config (serial, 4-way partitioned)
//! the campaign first runs fault-free under a *counting* injector to
//! learn the query's kill points — how many segment boundaries and
//! page writes the deterministic execution passes through — and its
//! cold cost. Then, for every enumerated kill point `k`:
//!
//! 1. **Crash** — run with a single injected [`FaultKind::Crash`] at
//!    `k`; the engine must die with [`MqError::Crash`], abandoning its
//!    in-flight state (no `CleanupGuard`).
//! 2. **Recover** — [`Engine::recover_with`] validates the checkpoint
//!    manifest, sweeps the orphans, and resumes the remainder. The
//!    recovered rows must be identical to the fault-free oracle.
//! 3. **Clean** — [`Engine::audit`] must be clean afterwards and no
//!    manifest may stay open: every crash is fully reabsorbed.
//! 4. **Cheaper** — when the crash landed after at least one completed
//!    segment (`segments_salvaged > 0`), the recovery's total
//!    simulated cost (validation re-scans + sweep + resumed
//!    execution) must be *strictly below* the cold fault-free cost:
//!    salvaged checkpoints are capital, not overhead.
//!
//! [`Engine::audit`]: midq::Engine::audit
//! [`Engine::recover_with`]: midq::Engine::recover_with
//! [`FaultKind::Crash`]: midq::common::FaultKind::Crash
//! [`MqError::Crash`]: midq::MqError::Crash

use midq::common::{EngineConfig, FaultInjector, FaultKind, FaultSite, FaultSpec, SimClock};
use midq::reopt::{JobEnv, ParSpec};
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, Engine, LogicalPlan, MqError, ReoptMode};

use crate::chaos::{fingerprint, CHAOS_QUERIES};

/// Cap on boundary kill points exercised per query × config (sampled
/// evenly when the execution has more boundaries than this).
const MAX_BOUNDARY_KILLS: u64 = 12;

/// Extra switch-prone complex queries beyond the chaos set: these
/// reliably complete at least one segment before finishing, so kills
/// late in their execution exercise the salvage path hard.
const EXTRA_QUERIES: [&str; 2] = ["Q5", "Q7"];

/// The crash-campaign database: the bench-scale load (the chaos scale
/// is too small for the optimizer to ever mispredict badly enough to
/// switch plans) with the paper's bare-improvement switch acceptance
/// (`switch_margin = 1.0`), so Q1/Q3/Q10 all switch — i.e. complete
/// checkpointable segments — and statistics feedback disabled so
/// repeated runs on the shared database stay deterministic.
fn crash_database() -> Database {
    let cfg = EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        stats_feedback: false,
        switch_margin: 1.0,
        ..EngineConfig::default()
    };
    let db = Database::new(cfg).expect("engine");
    db.load_tpcd(&TpcdConfig {
        scale: 0.008,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })
    .expect("load");
    db
}

/// Aggregate result of a crash campaign.
#[derive(Debug, Default)]
pub struct CrashReport {
    /// Kill points exercised (crash + recover cycles attempted).
    pub kill_points: usize,
    /// Injected kills that actually crashed the query.
    pub crashes: usize,
    /// Recoveries that completed the query.
    pub recoveries: usize,
    /// Recoveries that salvaged at least one checkpointed segment.
    pub salvaged_recoveries: usize,
    /// Total segments salvaged across all recoveries.
    pub total_salvaged: u64,
    /// Invariant violations (empty = the campaign passed).
    pub violations: Vec<String>,
}

impl CrashReport {
    /// Did the campaign uphold every invariant — and actually salvage
    /// checkpointed work at least once?
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.salvaged_recoveries > 0
    }

    /// One-paragraph summary for logs and CI output.
    pub fn summary(&self) -> String {
        format!(
            "crash campaign: {} kill points — {} crashes, {} recoveries \
             ({} salvaged ≥1 segment, {} segments total) — {} violation(s)",
            self.kill_points,
            self.crashes,
            self.recoveries,
            self.salvaged_recoveries,
            self.total_salvaged,
            self.violations.len()
        )
    }
}

/// One row of the `figures -- recovery` panel: a crash injected at the
/// query's *last* segment boundary (the point of maximum salvage),
/// recovered, and compared against the fault-free cold cost.
#[derive(Debug)]
pub struct RecoveryPoint {
    /// Query label.
    pub query: &'static str,
    /// Segment boundaries the fault-free execution passes through.
    pub boundaries: u64,
    /// Checkpointed segments the recovery validated and reused.
    pub segments_salvaged: u32,
    /// Fault-free cold cost (simulated ms).
    pub cold_ms: f64,
    /// Total recovery cost: validation re-scans + orphan sweep +
    /// resumed execution (simulated ms).
    pub recovery_ms: f64,
}

/// Crash each chaos query (serial) at its final segment boundary and
/// recover it — the headline demonstration that salvaged checkpoints
/// make recovery strictly cheaper than re-running from scratch.
pub fn recovery_figure() -> Vec<RecoveryPoint> {
    let db = crash_database();
    let engine = db.engine();
    let cfg = engine.config().clone();
    let all = queries::all();
    let mut out = Vec::new();
    for name in CHAOS_QUERIES.iter().chain(EXTRA_QUERIES.iter()) {
        let Some(plan) = all.iter().find(|(n, _)| n == name).map(|(_, p)| p.clone()) else {
            continue;
        };

        let counter = FaultInjector::none();
        let (mut env, cold_clock) = child_env(engine, None);
        env.fault = Some(counter.clone());
        if engine.run_with(&plan, ReoptMode::PlanOnly, env).is_err() {
            continue;
        }
        let cold_ms = cold_clock.elapsed_ms(&cfg);
        let boundaries = counter.ops_at(FaultSite::SegmentBoundary);
        if boundaries == 0 {
            continue;
        }

        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::SegmentBoundary,
                kind: FaultKind::Crash,
                at: boundaries,
            }],
            None,
        );
        let (mut env, _) = child_env(engine, None);
        env.fault = Some(inj);
        let query_id = env.query_id;
        if !matches!(
            engine.run_with(&plan, ReoptMode::PlanOnly, env),
            Err(MqError::Crash(_))
        ) {
            continue;
        }
        let (env, _) = child_env(engine, None);
        let Ok(rec) = engine.recover_with(query_id, env) else {
            continue;
        };
        out.push(RecoveryPoint {
            query: name,
            boundaries,
            segments_salvaged: rec.segments_salvaged,
            cold_ms,
            recovery_ms: rec.recovery_ms,
        });
    }
    out
}

/// A job environment on a fresh child clock, so each run's simulated
/// cost is measured in isolation while still feeding the engine total.
fn child_env(engine: &Engine, partitions: Option<usize>) -> (JobEnv, SimClock) {
    let mut env = engine.default_env();
    let clock = engine.clock().child();
    env.clock = clock.clone();
    env.par = partitions.map(ParSpec::new);
    (env, clock)
}

/// Run the crash campaign over every chaos query under both execution
/// configs. `verbose` prints one line per query × config.
pub fn run_crash_campaign(verbose: bool) -> CrashReport {
    let db = crash_database();
    let engine = db.engine();
    let cfg = engine.config().clone();
    let all = queries::all();
    let plans: Vec<(&'static str, LogicalPlan)> = CHAOS_QUERIES
        .iter()
        .chain(EXTRA_QUERIES.iter())
        .map(|name| {
            all.iter()
                .find(|(n, _)| n == name)
                .map(|(n, p)| (*n, p.clone()))
                .unwrap_or_else(|| panic!("unknown chaos query {name}"))
        })
        .collect();

    let mut report = CrashReport::default();
    let violate = |violations: &mut Vec<String>, msg: String| {
        if violations.len() < 32 {
            violations.push(msg);
        }
    };

    for (name, plan) in &plans {
        for (cfg_label, partitions) in [("serial", None), ("p4", Some(4))] {
            let label = format!("{name} {cfg_label}");

            // Counting run: fault-free, but every fault site's logical
            // op counter advances — afterwards the injector knows how
            // many kill points this deterministic execution has.
            let counter = FaultInjector::none();
            let (mut env, cold_clock) = child_env(engine, partitions);
            env.fault = Some(counter.clone());
            let cold = match engine.run_with(plan, ReoptMode::PlanOnly, env) {
                Ok(o) => o,
                Err(e) => {
                    violate(
                        &mut report.violations,
                        format!("{label}: cold run failed: {e}"),
                    );
                    continue;
                }
            };
            let cold_ms = cold_clock.elapsed_ms(&cfg);
            let cold_switches = cold.plan_switches;
            let oracle = fingerprint(&Ok(cold));
            let boundaries = counter.ops_at(FaultSite::SegmentBoundary);
            let writes = counter.ops_at(FaultSite::PageWrite);

            // Every segment boundary is a kill point (sampled evenly
            // past the cap); page writes are sampled at quartiles to
            // land kills mid-materialization and mid-spill.
            let mut points: Vec<(FaultSite, u64)> = Vec::new();
            if boundaries > 0 {
                let step = boundaries.div_ceil(MAX_BOUNDARY_KILLS).max(1);
                points.extend(
                    (1..=boundaries)
                        .step_by(step as usize)
                        .map(|k| (FaultSite::SegmentBoundary, k)),
                );
                if points.last() != Some(&(FaultSite::SegmentBoundary, boundaries)) {
                    points.push((FaultSite::SegmentBoundary, boundaries));
                }
            }
            for at in [writes / 4, writes / 2, (3 * writes) / 4] {
                if at > 0 && !points.contains(&(FaultSite::PageWrite, at)) {
                    points.push((FaultSite::PageWrite, at));
                }
            }
            if verbose {
                println!(
                    "{label}: {} boundaries, {} writes, {} switches -> {} kill points \
                     (cold {cold_ms:.1} ms)",
                    boundaries,
                    writes,
                    cold_switches,
                    points.len()
                );
            }

            for (site, at) in points {
                report.kill_points += 1;
                let inj = FaultInjector::new(
                    vec![FaultSpec {
                        site,
                        kind: FaultKind::Crash,
                        at,
                    }],
                    None,
                );
                let (mut env, _crash_clock) = child_env(engine, partitions);
                env.fault = Some(inj);
                let query_id = env.query_id;
                match engine.run_with(plan, ReoptMode::PlanOnly, env) {
                    Err(MqError::Crash(_)) => report.crashes += 1,
                    Ok(_) => {
                        violate(
                            &mut report.violations,
                            format!("{label}: kill at {site:?} #{at} never fired"),
                        );
                        continue;
                    }
                    Err(e) => {
                        violate(
                            &mut report.violations,
                            format!("{label}: kill at {site:?} #{at} died dirty: {e}"),
                        );
                        continue;
                    }
                }

                let (env, _recovery_clock) = child_env(engine, partitions);
                match engine.recover_with(query_id, env) {
                    Ok(recovery) => {
                        report.recoveries += 1;
                        let salvaged = recovery.segments_salvaged;
                        let recovery_ms = recovery.recovery_ms;
                        let fp = fingerprint(&Ok(recovery.outcome));
                        if fp != oracle {
                            violate(
                                &mut report.violations,
                                format!(
                                    "{label} kill {site:?} #{at}: recovered rows diverged \
                                     ({fp} vs {oracle})"
                                ),
                            );
                        }
                        if salvaged > 0 {
                            report.salvaged_recoveries += 1;
                            report.total_salvaged += u64::from(salvaged);
                            if recovery_ms >= cold_ms {
                                violate(
                                    &mut report.violations,
                                    format!(
                                        "{label} kill {site:?} #{at}: salvaged recovery not \
                                         cheaper ({recovery_ms:.1} >= {cold_ms:.1} sim-ms)"
                                    ),
                                );
                            }
                        }
                    }
                    Err(e) => {
                        violate(
                            &mut report.violations,
                            format!("{label} kill {site:?} #{at}: recovery failed: {e}"),
                        );
                    }
                }

                let audit = engine.audit();
                if !audit.is_clean() {
                    violate(
                        &mut report.violations,
                        format!("{label} kill {site:?} #{at}: {audit}"),
                    );
                }
                if !engine.manifests().open_queries().is_empty() {
                    violate(
                        &mut report.violations,
                        format!(
                            "{label} kill {site:?} #{at}: manifest(s) left open: {:?}",
                            engine.manifests().open_queries()
                        ),
                    );
                }
            }
        }
    }
    report
}
