//! Criterion benches: one group per paper figure.
//!
//! Each bench measures the *simulated* execution time of the relevant
//! query/mode pair on a freshly loaded (small) TPC-D instance, so the
//! numbers Criterion reports are wall-clock proxies for the
//! deterministic simulated costs the `figures` binary prints. Run the
//! binary for the paper-style tables; run these benches to track
//! regressions in the engine itself:
//!
//! ```text
//! cargo bench -p mq-bench
//! cargo run --release -p mq-bench --bin figures
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use midq::common::EngineConfig;
use midq::ReoptMode;
use mq_bench::{fig03_memory_realloc, run_query, BenchSetup};

/// Small, fast setup for criterion iterations.
fn bench_setup() -> BenchSetup {
    BenchSetup {
        scale: 0.002,
        analyze_after_fraction: 0.5,
        cfg: EngineConfig {
            buffer_pool_pages: 64,
            query_memory_bytes: 256 * 1024,
            ..EngineConfig::default()
        },
        ..BenchSetup::default()
    }
}

/// Figure 10: Normal vs Re-Optimized per query.
fn bench_fig10(c: &mut Criterion) {
    let setup = bench_setup();
    let db = setup.database();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for query in ["Q1", "Q3", "Q5", "Q6", "Q7", "Q8", "Q10"] {
        for (mode, name) in [(ReoptMode::Off, "normal"), (ReoptMode::Full, "reopt")] {
            group.bench_with_input(
                BenchmarkId::new(query, name),
                &(query, mode),
                |b, &(q, m)| b.iter(|| run_query(&db, q, m).time_ms),
            );
        }
    }
    group.finish();
}

/// Figure 11: the mode ablation on the medium/complex queries.
fn bench_fig11(c: &mut Criterion) {
    let setup = bench_setup();
    let db = setup.database();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for query in ["Q3", "Q10", "Q5", "Q7", "Q8"] {
        for (mode, name) in [
            (ReoptMode::MemoryOnly, "memory_only"),
            (ReoptMode::PlanOnly, "plan_only"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(query, name),
                &(query, mode),
                |b, &(q, m)| b.iter(|| run_query(&db, q, m).time_ms),
            );
        }
    }
    group.finish();
}

/// Figure 12: skewed data (z = 0.3 and 0.6), Full mode.
fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for z in [0.3f64, 0.6] {
        let setup = BenchSetup {
            zipf_z: Some(z),
            ..bench_setup()
        };
        let db = setup.database();
        for query in ["Q5", "Q8"] {
            group.bench_with_input(BenchmarkId::new(query, format!("z{z}")), &query, |b, &q| {
                b.iter(|| run_query(&db, q, ReoptMode::Full).time_ms)
            });
        }
    }
    group.finish();
}

/// Figure 3 worked example: memory re-allocation avoiding spill passes.
fn bench_fig03(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03");
    group.sample_size(10);
    group.bench_function("memory_realloc", |b| {
        b.iter(|| fig03_memory_realloc().mem_ms)
    });
    group.finish();
}

/// §2.5 overhead bound: simple queries with collectors forced on.
fn bench_overhead(c: &mut Criterion) {
    let setup = bench_setup();
    let db = setup.database();
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);
    for query in ["Q1", "Q6"] {
        for (mode, name) in [(ReoptMode::Off, "off"), (ReoptMode::Full, "full")] {
            group.bench_with_input(
                BenchmarkId::new(query, name),
                &(query, mode),
                |b, &(q, m)| b.iter(|| run_query(&db, q, m).time_ms),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig03,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_overhead
);
criterion_main!(benches);
