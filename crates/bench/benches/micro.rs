//! Operator- and substrate-level microbenchmarks.
//!
//! The `figures` benches track end-to-end query behaviour; these track
//! the building blocks — B+-tree operations, hash join build/probe,
//! external sort, histogram construction (including the O(D²B)
//! V-optimal dynamic program), and expression evaluation — so a
//! regression can be localized before it shows up as a smeared Fig. 10.
//!
//! ```text
//! cargo bench -p mq-bench --bench micro
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use midq::common::{DataType, DetRng, EngineConfig, Row, SimClock, Value};
use midq::expr::{and, cmp, col, lit, CmpOp};
use midq::stats::{Histogram, HistogramKind, Reservoir};
use midq::storage::Storage;
use midq::{Database, ReoptMode};

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(20);
    for n in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = EngineConfig::default();
                let st = Storage::new(&cfg, SimClock::new());
                let idx = st.create_index().unwrap();
                let mut rng = DetRng::new(7);
                for i in 0..n {
                    let k = rng.gen_range(n * 4) as i64;
                    st.index_insert(idx, &Value::Int(k), mq_common_rid(i))
                        .unwrap();
                }
                black_box(idx)
            })
        });
        group.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, &n| {
            let cfg = EngineConfig::default();
            let st = Storage::new(&cfg, SimClock::new());
            let idx = st.create_index().unwrap();
            for i in 0..n {
                st.index_insert(idx, &Value::Int(i as i64), mq_common_rid(i))
                    .unwrap();
            }
            let mut rng = DetRng::new(11);
            b.iter(|| {
                let k = rng.gen_range(n) as i64;
                black_box(st.index_lookup(idx, &Value::Int(k)).unwrap())
            })
        });
    }
    group.finish();
}

/// RIDs for index benches: fabricate distinct page/slot pairs.
fn mq_common_rid(i: u64) -> midq::common::Rid {
    midq::common::Rid {
        page: midq::common::PageId(i / 64),
        slot: (i % 64) as u16,
    }
}

fn join_db(rows: i64) -> (Database, midq::LogicalPlan) {
    let db = Database::new(EngineConfig::default()).unwrap();
    db.create_table("r", vec![("k", DataType::Int), ("v", DataType::Int)])
        .unwrap();
    db.create_table("s", vec![("k", DataType::Int), ("w", DataType::Int)])
        .unwrap();
    for i in 0..rows {
        db.insert(
            "r",
            Row::new(vec![Value::Int(i % (rows / 4)), Value::Int(i)]),
        )
        .unwrap();
    }
    for i in 0..rows / 4 {
        db.insert("s", Row::new(vec![Value::Int(i), Value::Int(i * 2)]))
            .unwrap();
    }
    for t in ["r", "s"] {
        db.analyze(t).unwrap();
    }
    let q = midq::LogicalPlan::scan("s").join(midq::LogicalPlan::scan("r"), vec![("s.k", "r.k")]);
    (db, q)
}

fn bench_hash_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_join");
    group.sample_size(10);
    for rows in [4_000i64, 16_000] {
        let (db, q) = join_db(rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    db.query_plan(&q)
                        .mode(ReoptMode::Off)
                        .run()
                        .unwrap()
                        .rows
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("external_sort");
    group.sample_size(10);
    for rows in [5_000i64, 20_000] {
        let db = Database::new(EngineConfig {
            query_memory_bytes: 128 * 1024, // force multi-run merging at 20k
            ..EngineConfig::default()
        })
        .unwrap();
        db.create_table("t", vec![("a", DataType::Int), ("b", DataType::Int)])
            .unwrap();
        let mut rng = DetRng::new(3);
        for _ in 0..rows {
            db.insert(
                "t",
                Row::new(vec![
                    Value::Int(rng.gen_range(1 << 30) as i64),
                    Value::Int(1),
                ]),
            )
            .unwrap();
        }
        db.analyze("t").unwrap();
        let q = midq::LogicalPlan::scan("t").sort(vec![("t.a", true)]);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    db.query_plan(&q)
                        .mode(ReoptMode::Off)
                        .run()
                        .unwrap()
                        .rows
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_histograms(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_build");
    // A realistic ANALYZE input: one reservoir's worth of skewed ranks.
    let mut rng = DetRng::new(5);
    let sample: Vec<f64> = (0..1024)
        .map(|_| (rng.gen_range(10_000) as f64).sqrt().floor())
        .collect();
    for kind in [
        HistogramKind::EquiWidth,
        HistogramKind::EquiDepth,
        HistogramKind::MaxDiff,
        HistogramKind::EndBiased,
        HistogramKind::VOptimal,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind}")),
            &kind,
            |b, &kind| b.iter(|| black_box(Histogram::build(kind, &sample, 32, 0.0, 100.0))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("reservoir");
    group.bench_function("observe_100k", |b| {
        b.iter(|| {
            let mut r: Reservoir<i64> = Reservoir::new(1024, 9);
            for i in 0..100_000i64 {
                r.observe(i);
            }
            black_box(r.items().len())
        })
    });
    group.finish();
}

fn bench_expr_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("expr_eval");
    let schema = midq::common::Schema::new(vec![
        midq::common::Field::qualified("t", "a", DataType::Int),
        midq::common::Field::qualified("t", "b", DataType::Int),
        midq::common::Field::qualified("t", "c", DataType::Float),
    ])
    .unwrap();
    let pred = and(vec![
        cmp(CmpOp::Lt, col("t.a"), lit(500i64)),
        cmp(CmpOp::Ge, col("t.b"), lit(10i64)),
        cmp(CmpOp::Lt, col("t.c"), lit(0.75)),
    ]);
    let bound = pred.bind(&schema).unwrap();
    let rows: Vec<Row> = (0..1000)
        .map(|i| {
            Row::new(vec![
                Value::Int(i % 1000),
                Value::Int(i % 37),
                Value::Float((i % 100) as f64 / 100.0),
            ])
        })
        .collect();
    group.bench_function("conjunction_1k_rows", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for r in &rows {
                if bound.eval_predicate(r).unwrap_or(false) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_btree,
    bench_hash_join,
    bench_sort,
    bench_histograms,
    bench_expr_eval
);
criterion_main!(micro);
