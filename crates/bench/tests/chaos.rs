//! Chaos harness smoke test: a reduced seed range of the same campaign
//! the `chaos` binary (and the CI chaos job) runs at 50 seeds.

use mq_bench::chaos::{run_chaos, run_chaos_partitioned};
use mq_bench::persist::run_save_crash_campaign;

#[test]
fn chaos_campaign_small_seed_range() {
    let report = run_chaos(1, 12, false);
    assert!(
        report.violations.is_empty(),
        "chaos violations: {:#?}",
        report.violations
    );
    assert!(
        report.transient_recoveries > 0,
        "no transient fault was absorbed by a segment retry: {}",
        report.summary()
    );
    // The fault profile must actually exercise the machinery: across
    // 12 seeds × 4 queries × 3 runs some faults of each I/O class fire.
    assert!(report.fired_transient > 0, "{}", report.summary());
    assert!(report.fired_permanent > 0, "{}", report.summary());
}

/// The same campaign through the partitioned driver: faults fire
/// inside bucket runs, unwinding crosses exchange barriers, and the
/// results must still be oracle-or-clean-error with a clean audit and
/// byte-identical replays across partition counts.
#[test]
fn partitioned_chaos_campaign_small_seed_range() {
    let report = run_chaos_partitioned(1, 12, false);
    assert!(
        report.violations.is_empty(),
        "partitioned chaos violations: {:#?}",
        report.violations
    );
    assert!(
        report.transient_recoveries > 0,
        "no transient fault was absorbed under partitioned execution: {}",
        report.summary()
    );
    assert!(report.fired_transient > 0, "{}", report.summary());
}

/// A reduced run of the snapshot save-point crash campaign the CI
/// chaos job runs via `chaos --save-crash`: every save point killed,
/// the previous good snapshot must survive and reopen warm.
#[test]
fn save_crash_campaign_smoke() {
    let report = run_save_crash_campaign(2, false);
    assert!(
        report.violations.is_empty(),
        "save-crash violations: {:#?}",
        report.violations
    );
    assert!(report.crashes > 0, "{}", report.summary());
    assert!(report.survivor_reopens > 0, "{}", report.summary());
}
