//! Generalized Zipfian distribution (\[27\], as used in §3.2 / Figure 12).
//!
//! The paper skews all non-key TPC-D attributes with a generalized Zipf
//! distribution at `z ∈ {0.3, 0.6}` (z = 0 is uniform). Item `k` (1-based
//! rank) has probability proportional to `1 / k^z`. Draws use an inverse
//! CDF table with binary search; an optional deterministic scramble
//! decorrelates rank from value so skew does not accidentally sort the
//! domain.

use mq_common::DetRng;

/// A Zipfian sampler over `n` items.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    scramble: Option<Vec<u32>>,
}

impl Zipf {
    /// Create a sampler over `n` items with skew parameter `z ≥ 0`.
    pub fn new(n: usize, z: f64) -> Zipf {
        assert!(n > 0, "domain must be non-empty");
        assert!(z >= 0.0 && z.is_finite(), "z must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf {
            cdf,
            scramble: None,
        }
    }

    /// Permute the rank→item mapping deterministically so the heavy
    /// hitters are spread across the domain rather than clustered at
    /// the smallest values.
    pub fn scrambled(mut self, seed: u64) -> Zipf {
        let n = self.cdf.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = DetRng::new(seed);
        rng.shuffle(&mut perm);
        self.scramble = Some(perm);
        self
    }

    /// Number of items in the domain.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one item index in `[0, n)`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.gen_f64();
        let rank = match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i,
        }
        .min(self.cdf.len() - 1);
        match &self.scramble {
            Some(p) => p[rank] as usize,
            None => rank,
        }
    }

    /// Theoretical probability of rank `k` (0-based, pre-scramble).
    pub fn prob_of_rank(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(z: f64, n: usize, draws: usize) -> Vec<f64> {
        let zipf = Zipf::new(n, z);
        let mut rng = DetRng::new(1234);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn zero_skew_is_uniform() {
        let freqs = empirical(0.0, 10, 100_000);
        for f in freqs {
            assert!((f - 0.1).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let freqs = empirical(1.0, 100, 200_000);
        assert!(freqs[0] > freqs[10] && freqs[10] > freqs[50]);
        // Rank-1 frequency for z=1, n=100 is 1/H_100 ≈ 0.1928.
        assert!((freqs[0] - 0.1928).abs() < 0.01, "rank1 {}", freqs[0]);
    }

    #[test]
    fn moderate_skew_matches_theory() {
        let n = 50;
        let zipf = Zipf::new(n, 0.6);
        let freqs = empirical(0.6, n, 300_000);
        for k in [0usize, 4, 20, 49] {
            let p = zipf.prob_of_rank(k);
            assert!(
                (freqs[k] - p).abs() < 0.01,
                "rank {k}: {} vs {}",
                freqs[k],
                p
            );
        }
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let zipf = Zipf::new(1000, 0.3);
        for w in zipf.cdf.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!((zipf.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scramble_is_a_permutation_and_preserves_marginals() {
        let n = 20;
        let plain = Zipf::new(n, 0.8);
        let scrambled = Zipf::new(n, 0.8).scrambled(7);
        let mut rng = DetRng::new(5);
        let mut counts = vec![0usize; n];
        for _ in 0..100_000 {
            counts[scrambled.sample(&mut rng)] += 1;
        }
        // Every item still reachable.
        assert!(counts.iter().all(|&c| c > 0));
        // Sorted frequencies match the unscrambled distribution shape.
        let mut freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / 100_000.0).collect();
        freqs.sort_by(|a, b| b.total_cmp(a));
        assert!((freqs[0] - plain.prob_of_rank(0)).abs() < 0.015);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 0.5);
    }
}
