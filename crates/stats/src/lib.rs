//! # mq-stats — the statistics substrate
//!
//! Everything the optimizer and the Dynamic Re-Optimization machinery
//! know about data distributions comes from this crate:
//!
//! * [`reservoir::Reservoir`] — Vitter's Algorithm R, the single-pass
//!   sampler the paper cites (\[24\]) for building runtime histograms
//!   without I/O (§2.2, §3.1);
//! * [`histogram::Histogram`] — equi-width, equi-depth, MaxDiff(V,A)
//!   and end-biased ("serial") histograms with equality, range and join
//!   selectivity estimation. The SCIA's inaccuracy-potential rules
//!   (§2.5) key off exactly these histogram classes;
//! * [`distinct::FmSketch`] — Flajolet–Martin probabilistic counting
//!   (\[6\]), used to estimate the number of unique values of group-by
//!   attributes at run time;
//! * [`zipf::Zipf`] — the generalized Zipfian generator used to skew
//!   the TPC-D data for the Figure 12 experiment;
//! * [`accumulator::ColumnAccumulator`] — the one-pass per-column
//!   observer shared by ANALYZE and the runtime statistics-collector
//!   operator.

pub mod accumulator;
pub mod distinct;
pub mod histogram;
pub mod reservoir;
pub mod zipf;

pub use accumulator::{ColumnAccumulator, ObservedColumn};
pub use distinct::FmSketch;
pub use histogram::{Bucket, Histogram, HistogramKind};
pub use reservoir::Reservoir;
pub use zipf::Zipf;
