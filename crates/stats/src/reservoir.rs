//! Reservoir sampling (Vitter's Algorithm R, \[24\] in the paper).
//!
//! The statistics-collector operator must observe a tuple stream in a
//! single pass with bounded memory (§2.2: "one database page is
//! allocated to hold a reservoir sample"). Algorithm R keeps a uniform
//! random sample of fixed capacity regardless of stream length.

use mq_common::DetRng;

/// A fixed-capacity uniform sample over a stream.
///
/// ```
/// use mq_stats::Reservoir;
/// let mut r = Reservoir::new(8, 42);
/// for i in 0..1000 {
///     r.observe(i);
/// }
/// assert_eq!(r.items().len(), 8);
/// assert_eq!(r.seen(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: DetRng,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` items.
    pub fn new(capacity: usize, seed: u64) -> Reservoir<T> {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: DetRng::new(seed),
        }
    }

    /// Observe one stream element.
    pub fn observe(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            // Replace a random slot with probability capacity/seen.
            let j = self.rng.gen_range(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Merge another reservoir into this one, as if this reservoir had
    /// observed both streams. When the union of the kept items fits the
    /// capacity (neither side overflowed) the merge is **exact** — the
    /// result holds every item of both streams. Otherwise each side
    /// contributes a deterministic without-replacement draw sized
    /// proportionally to the stream length it represents (the standard
    /// weighted reservoir-merge; this reservoir's own [`DetRng`] drives
    /// the draw, so merging is reproducible).
    pub fn merge(&mut self, other: &Reservoir<T>)
    where
        T: Clone,
    {
        if other.seen == 0 {
            return;
        }
        let total = self.seen + other.seen;
        if self.items.len() + other.items.len() <= self.capacity {
            self.items.extend(other.items.iter().cloned());
            self.seen = total;
            return;
        }
        let k = self.capacity;
        let mut ka = ((k as u128 * self.seen as u128) / total as u128) as usize;
        ka = ka.clamp(k.saturating_sub(other.items.len()), self.items.len().min(k));
        let kb = (k - ka).min(other.items.len());
        let mut merged = Vec::with_capacity(ka + kb);
        sample_into(&mut merged, &mut self.rng, &self.items, ka);
        sample_into(&mut merged, &mut self.rng, &other.items, kb);
        self.items = merged;
        self.seen = total;
    }

    /// Number of elements observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sample capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current sample (order unspecified).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume into the sampled items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// The fraction of the stream captured (1.0 while the stream is
    /// shorter than the capacity).
    pub fn sampling_fraction(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else {
            (self.items.len() as f64 / self.seen as f64).min(1.0)
        }
    }
}

/// Append a uniform without-replacement draw of `k` items (partial
/// Fisher–Yates over indices; deterministic given the rng state).
fn sample_into<T: Clone>(out: &mut Vec<T>, rng: &mut DetRng, items: &[T], k: usize) {
    if k >= items.len() {
        out.extend(items.iter().cloned());
        return;
    }
    let mut idx: Vec<usize> = (0..items.len()).collect();
    for i in 0..k {
        let j = i + rng.gen_range((idx.len() - i) as u64) as usize;
        idx.swap(i, j);
        out.push(items[idx[i]].clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_stream_is_kept_entirely() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.observe(i);
        }
        assert_eq!(r.items().len(), 50);
        assert_eq!(r.seen(), 50);
        assert!((r.sampling_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_stream_caps_at_capacity() {
        let mut r = Reservoir::new(64, 2);
        for i in 0..10_000 {
            r.observe(i);
        }
        assert_eq!(r.items().len(), 64);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Mean of a uniform sample over 0..n should be near n/2.
        let n = 100_000u64;
        let mut r = Reservoir::new(1000, 3);
        for i in 0..n {
            r.observe(i);
        }
        let mean: f64 = r.items().iter().map(|&x| x as f64).sum::<f64>() / 1000.0;
        let expected = (n as f64 - 1.0) / 2.0;
        // Standard error ≈ n/sqrt(12*1000) ≈ 913; allow 4 sigma.
        assert!(
            (mean - expected).abs() < 4000.0,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn every_element_can_appear() {
        // Over many trials with a tiny reservoir, both early and late
        // elements should be retained sometimes.
        let mut kept_first = 0;
        let mut kept_last = 0;
        for seed in 0..200 {
            let mut r = Reservoir::new(4, seed);
            for i in 0..40 {
                r.observe(i);
            }
            if r.items().contains(&0) {
                kept_first += 1;
            }
            if r.items().contains(&39) {
                kept_last += 1;
            }
        }
        assert!(kept_first > 5, "first element kept {kept_first}/200");
        assert!(kept_last > 5, "last element kept {kept_last}/200");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Reservoir::<u32>::new(0, 0);
    }

    #[test]
    fn merge_of_unsaturated_splits_is_exact() {
        let mut a = Reservoir::new(100, 7);
        let mut b = Reservoir::new(100, 8);
        for i in 0..30 {
            a.observe(i);
        }
        for i in 30..70 {
            b.observe(i);
        }
        a.merge(&b);
        assert_eq!(a.seen(), 70);
        let mut items = a.items().to_vec();
        items.sort_unstable();
        assert_eq!(items, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn merge_of_saturated_sides_caps_and_weights() {
        let mut a = Reservoir::new(64, 9);
        let mut b = Reservoir::new(64, 10);
        for i in 0..9000u64 {
            a.observe(i);
        }
        for i in 9000..12000u64 {
            b.observe(i);
        }
        a.merge(&b);
        assert_eq!(a.seen(), 12_000);
        assert_eq!(a.items().len(), 64);
        // Contribution proportional to stream length: 9000/12000 → 48.
        let from_a = a.items().iter().filter(|&&x| x < 9000).count();
        assert_eq!(from_a, 48, "weighted split {from_a}/64");
    }

    #[test]
    fn merge_is_deterministic() {
        let run = || {
            let mut a = Reservoir::new(32, 11);
            let mut b = Reservoir::new(32, 12);
            for i in 0..500u64 {
                a.observe(i);
            }
            for i in 500..900u64 {
                b.observe(i);
            }
            a.merge(&b);
            a.items().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Reservoir::new(16, 13);
        for i in 0..10 {
            a.observe(i);
        }
        let before = a.items().to_vec();
        let b: Reservoir<i32> = Reservoir::new(16, 14);
        a.merge(&b);
        assert_eq!(a.items(), &before[..]);
        assert_eq!(a.seen(), 10);
    }
}
