//! Reservoir sampling (Vitter's Algorithm R, \[24\] in the paper).
//!
//! The statistics-collector operator must observe a tuple stream in a
//! single pass with bounded memory (§2.2: "one database page is
//! allocated to hold a reservoir sample"). Algorithm R keeps a uniform
//! random sample of fixed capacity regardless of stream length.

use mq_common::DetRng;

/// A fixed-capacity uniform sample over a stream.
///
/// ```
/// use mq_stats::Reservoir;
/// let mut r = Reservoir::new(8, 42);
/// for i in 0..1000 {
///     r.observe(i);
/// }
/// assert_eq!(r.items().len(), 8);
/// assert_eq!(r.seen(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: DetRng,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` items.
    pub fn new(capacity: usize, seed: u64) -> Reservoir<T> {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: DetRng::new(seed),
        }
    }

    /// Observe one stream element.
    pub fn observe(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            // Replace a random slot with probability capacity/seen.
            let j = self.rng.gen_range(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of elements observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sample capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current sample (order unspecified).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume into the sampled items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// The fraction of the stream captured (1.0 while the stream is
    /// shorter than the capacity).
    pub fn sampling_fraction(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else {
            (self.items.len() as f64 / self.seen as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_stream_is_kept_entirely() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.observe(i);
        }
        assert_eq!(r.items().len(), 50);
        assert_eq!(r.seen(), 50);
        assert!((r.sampling_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_stream_caps_at_capacity() {
        let mut r = Reservoir::new(64, 2);
        for i in 0..10_000 {
            r.observe(i);
        }
        assert_eq!(r.items().len(), 64);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Mean of a uniform sample over 0..n should be near n/2.
        let n = 100_000u64;
        let mut r = Reservoir::new(1000, 3);
        for i in 0..n {
            r.observe(i);
        }
        let mean: f64 = r.items().iter().map(|&x| x as f64).sum::<f64>() / 1000.0;
        let expected = (n as f64 - 1.0) / 2.0;
        // Standard error ≈ n/sqrt(12*1000) ≈ 913; allow 4 sigma.
        assert!(
            (mean - expected).abs() < 4000.0,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn every_element_can_appear() {
        // Over many trials with a tiny reservoir, both early and late
        // elements should be retained sometimes.
        let mut kept_first = 0;
        let mut kept_last = 0;
        for seed in 0..200 {
            let mut r = Reservoir::new(4, seed);
            for i in 0..40 {
                r.observe(i);
            }
            if r.items().contains(&0) {
                kept_first += 1;
            }
            if r.items().contains(&39) {
                kept_last += 1;
            }
        }
        assert!(kept_first > 5, "first element kept {kept_first}/200");
        assert!(kept_last > 5, "last element kept {kept_last}/200");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Reservoir::<u32>::new(0, 0);
    }
}
