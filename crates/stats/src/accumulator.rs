//! The one-pass per-column statistics accumulator.
//!
//! Both ANALYZE (catalog statistics) and the runtime
//! statistics-collector operator (§2.2) observe a stream of values and
//! must produce, in a single pass with bounded memory: row count,
//! average size, min/max, a histogram (from a reservoir sample) and a
//! distinct-count estimate (FM sketch). This type packages that recipe.

use mq_common::Value;

use crate::distinct::FmSketch;
use crate::histogram::{Histogram, HistogramKind};
use crate::reservoir::Reservoir;

/// Accumulates statistics for one column of a tuple stream.
#[derive(Debug, Clone)]
pub struct ColumnAccumulator {
    rows: u64,
    nulls: u64,
    min: Option<Value>,
    max: Option<Value>,
    reservoir: Reservoir<f64>,
    sketch: FmSketch,
    prev_rank: Option<f64>,
    pairs: u64,
    nondecreasing: u64,
}

impl ColumnAccumulator {
    /// Create an accumulator with the given reservoir capacity.
    pub fn new(reservoir_capacity: usize, seed: u64) -> ColumnAccumulator {
        ColumnAccumulator {
            rows: 0,
            nulls: 0,
            min: None,
            max: None,
            reservoir: Reservoir::new(reservoir_capacity.max(1), seed),
            sketch: FmSketch::default(),
            prev_rank: None,
            pairs: 0,
            nondecreasing: 0,
        }
    }

    /// Observe one value. Returns the (approximate) number of CPU
    /// operations this cost, so the caller can charge the simulated
    /// clock — statistics collection is CPU overhead, never I/O (§2.2).
    pub fn observe(&mut self, v: &Value) -> u64 {
        self.rows += 1;
        if v.is_null() {
            self.nulls += 1;
            return 1;
        }
        match &self.min {
            Some(m) if v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v <= m => {}
            _ => self.max = Some(v.clone()),
        }
        if let Some(rank) = v.as_f64() {
            self.reservoir.observe(rank);
            // Physical-order correlation: fraction of consecutive pairs
            // that are non-decreasing. A column laid down in key order
            // (TPC-D lineitem.l_orderkey) scores 1.0; a shuffled column
            // ~0.5. Index probes into clustered columns are
            // near-sequential I/O, which the cost model must know.
            if let Some(prev) = self.prev_rank {
                self.pairs += 1;
                if rank >= prev {
                    self.nondecreasing += 1;
                }
            }
            self.prev_rank = Some(rank);
        }
        self.sketch.observe(v);
        // min/max update + reservoir + sketch ≈ 3 tuple-level ops.
        3
    }

    /// Merge another accumulator into this one, as if this accumulator
    /// had observed `self`'s stream followed by `other`'s. Counts,
    /// nulls, min/max and the FM sketch merge exactly; the reservoir
    /// merges exactly while unsaturated (see [`Reservoir::merge`]); the
    /// clustering pair counts add, losing only the single unobservable
    /// pair that straddles the split boundary (bounded error of one
    /// pair per merge).
    pub fn merge(&mut self, other: &ColumnAccumulator) {
        self.rows += other.rows;
        self.nulls += other.nulls;
        if let Some(b) = &other.min {
            match &self.min {
                Some(a) if a <= b => {}
                _ => self.min = Some(b.clone()),
            }
        }
        if let Some(b) = &other.max {
            match &self.max {
                Some(a) if a >= b => {}
                _ => self.max = Some(b.clone()),
            }
        }
        self.reservoir.merge(&other.reservoir);
        self.sketch.merge(&other.sketch);
        self.pairs += other.pairs;
        self.nondecreasing += other.nondecreasing;
        if other.prev_rank.is_some() {
            self.prev_rank = other.prev_rank;
        }
    }

    /// Rows observed.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Null fraction so far.
    pub fn null_frac(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Finalize into an [`ObservedColumn`], building a histogram of the
    /// requested kind and bucket count from the reservoir.
    pub fn finish(&self, kind: HistogramKind, buckets: usize) -> ObservedColumn {
        let distinct = self.sketch.estimate();
        let histogram = if self.reservoir.items().is_empty() {
            None
        } else {
            let mut h = Histogram::build(
                kind,
                self.reservoir.items(),
                buckets,
                self.null_frac(),
                distinct,
            );
            // The accumulator knows the true stream length; record it
            // as the histogram's merge weight.
            h.set_weight(self.rows as f64);
            Some(h)
        };
        ObservedColumn {
            rows: self.rows,
            null_frac: self.null_frac(),
            min: self.min.clone(),
            max: self.max.clone(),
            distinct,
            histogram,
            clustering: self.clustering(),
        }
    }

    /// Physical clustering estimate in [0, 1]: |2·m − 1| where `m` is
    /// the fraction of consecutive non-decreasing pairs (1 = perfectly
    /// clustered ascending or descending, 0 = random order).
    pub fn clustering(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            (2.0 * self.nondecreasing as f64 / self.pairs as f64 - 1.0).abs()
        }
    }
}

/// Final single-pass statistics for one column.
#[derive(Debug, Clone)]
pub struct ObservedColumn {
    /// Total rows observed (including nulls).
    pub rows: u64,
    /// Fraction of nulls.
    pub null_frac: f64,
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Estimated distinct non-null values.
    pub distinct: f64,
    /// Histogram built from the reservoir sample (absent for an empty
    /// stream).
    pub histogram: Option<Histogram>,
    /// Physical clustering in [0, 1]; see
    /// [`ColumnAccumulator::clustering`].
    pub clustering: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_min_max_nulls() {
        let mut acc = ColumnAccumulator::new(64, 1);
        for v in [
            Value::Int(5),
            Value::Null,
            Value::Int(-3),
            Value::Int(12),
            Value::Null,
        ] {
            acc.observe(&v);
        }
        let obs = acc.finish(HistogramKind::MaxDiff, 8);
        assert_eq!(obs.rows, 5);
        assert!((obs.null_frac - 0.4).abs() < 1e-12);
        assert_eq!(obs.min, Some(Value::Int(-3)));
        assert_eq!(obs.max, Some(Value::Int(12)));
    }

    #[test]
    fn distinct_estimate_tracks_truth() {
        let mut acc = ColumnAccumulator::new(256, 2);
        for i in 0..5000 {
            acc.observe(&Value::Int(i % 500));
        }
        let obs = acc.finish(HistogramKind::EquiDepth, 16);
        assert!(
            (obs.distinct - 500.0).abs() / 500.0 < 0.35,
            "distinct {}",
            obs.distinct
        );
    }

    #[test]
    fn histogram_reflects_distribution() {
        let mut acc = ColumnAccumulator::new(512, 3);
        for i in 0..10_000i64 {
            acc.observe(&Value::Int(i % 100));
        }
        let obs = acc.finish(HistogramKind::EquiDepth, 10);
        let h = obs.histogram.unwrap();
        let sel = h.sel_range(Some(0.0), Some(24.0));
        assert!((sel - 0.25).abs() < 0.08, "sel {sel}");
    }

    #[test]
    fn empty_stream() {
        let acc = ColumnAccumulator::new(16, 4);
        let obs = acc.finish(HistogramKind::MaxDiff, 4);
        assert_eq!(obs.rows, 0);
        assert!(obs.histogram.is_none());
        assert!(obs.min.is_none());
    }

    #[test]
    fn observe_reports_cpu_cost() {
        let mut acc = ColumnAccumulator::new(16, 5);
        assert_eq!(acc.observe(&Value::Null), 1);
        assert_eq!(acc.observe(&Value::Int(1)), 3);
    }

    /// Merge-of-splits equals whole-input statistics: exact for row and
    /// null counts, min/max and histogram buckets (unsaturated
    /// reservoirs over a small domain); distinct within the sketch's
    /// bounded error of the whole-input estimate.
    #[test]
    fn merge_of_splits_matches_whole_input() {
        let values: Vec<Value> = (0..4000i64)
            .map(|i| {
                if i % 10 == 3 {
                    Value::Null
                } else {
                    Value::Int(i % 7)
                }
            })
            .collect();
        let mut whole = ColumnAccumulator::new(8192, 42);
        for v in &values {
            whole.observe(v);
        }
        let (a, b) = values.split_at(1234);
        let mut left = ColumnAccumulator::new(8192, 42);
        let mut right = ColumnAccumulator::new(8192, 43);
        for v in a {
            left.observe(v);
        }
        for v in b {
            right.observe(v);
        }
        left.merge(&right);

        assert_eq!(left.rows(), whole.rows());
        assert!((left.null_frac() - whole.null_frac()).abs() < 1e-12);
        let om = left.finish(HistogramKind::MaxDiff, 16);
        let ow = whole.finish(HistogramKind::MaxDiff, 16);
        assert_eq!(om.min, ow.min);
        assert_eq!(om.max, ow.max);
        // Sketch merge is a bitmap union: the distinct estimate of the
        // merged splits equals the whole-input estimate exactly.
        assert!(
            (om.distinct - ow.distinct).abs() < 1e-9,
            "distinct {} vs {}",
            om.distinct,
            ow.distinct
        );
        // Same multiset in both reservoirs (unsaturated) ⇒ identical
        // singleton histogram buckets.
        let (hm, hw) = (om.histogram.unwrap(), ow.histogram.unwrap());
        assert_eq!(hm.buckets().len(), hw.buckets().len());
        for (bm, bw) in hm.buckets().iter().zip(hw.buckets()) {
            assert_eq!(bm.lo, bw.lo);
            assert!((bm.frac - bw.frac).abs() < 1e-9);
        }
    }

    /// Clustering survives merging up to the one unobservable
    /// boundary pair.
    #[test]
    fn merge_clustering_bounded_error() {
        let mut whole = ColumnAccumulator::new(64, 1);
        let mut left = ColumnAccumulator::new(64, 1);
        let mut right = ColumnAccumulator::new(64, 2);
        for i in 0..1000i64 {
            whole.observe(&Value::Int(i));
            if i < 500 {
                left.observe(&Value::Int(i));
            } else {
                right.observe(&Value::Int(i));
            }
        }
        left.merge(&right);
        assert!((whole.clustering() - 1.0).abs() < 1e-12);
        assert!(
            (left.clustering() - whole.clustering()).abs() < 0.01,
            "clustering {} vs {}",
            left.clustering(),
            whole.clustering()
        );
    }
}
