//! Probabilistic distinct counting (Flajolet–Martin, \[6\] in the paper).
//!
//! The paper's statistics collectors estimate the number of unique
//! values of group-by attributes "using the bitmap approach of \[6\]"
//! (§2.2). This is PCSA: `m` bitmaps updated by hashed stochastic
//! averaging; the estimate is `m/φ · 2^(mean first-zero position)`.

/// Flajolet–Martin / PCSA distinct-count sketch.
///
/// ```
/// use mq_stats::FmSketch;
/// let mut s = FmSketch::new(64);
/// for i in 0..5000u64 {
///     s.observe(&(i % 700)); // 700 distinct values
/// }
/// let est = s.estimate();
/// assert!(est > 350.0 && est < 1400.0, "{est}");
/// ```
#[derive(Debug, Clone)]
pub struct FmSketch {
    maps: Vec<u64>,
    count: u64,
}

/// Flajolet–Martin magic constant φ.
const PHI: f64 = 0.77351;

impl FmSketch {
    /// Create a sketch with `m` bitmaps (power of two; 64 is plenty for
    /// the accuracy the re-optimizer needs).
    pub fn new(m: usize) -> FmSketch {
        assert!(m.is_power_of_two(), "bitmap count must be a power of two");
        FmSketch {
            maps: vec![0; m],
            count: 0,
        }
    }

    /// Observe a pre-hashed 64-bit key.
    pub fn observe_hash(&mut self, h: u64) {
        self.count += 1;
        let m = self.maps.len() as u64;
        let idx = (h & (m - 1)) as usize;
        let rest = h >> self.maps.len().trailing_zeros();
        let bit = rest.trailing_ones().min(63); // position of lowest zero bit
        self.maps[idx] |= 1 << bit;
    }

    /// Observe an arbitrary hashable key.
    pub fn observe<T: std::hash::Hash>(&mut self, key: &T) {
        use std::hash::Hasher;
        let mut hasher = Fnv1a::default();
        key.hash(&mut hasher);
        self.observe_hash(splitmix(hasher.finish()))
    }

    /// Rows observed (not distinct — raw stream length).
    pub fn observed(&self) -> u64 {
        self.count
    }

    /// Estimated distinct count.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.maps.len() as f64;
        let mean_r: f64 = self
            .maps
            .iter()
            .map(|&bm| bm.trailing_ones() as f64)
            .sum::<f64>()
            / m;
        let raw = m / PHI * 2f64.powf(mean_r);
        // PCSA over-estimates badly for tiny cardinalities; fall back to
        // linear counting when few bitmaps were touched.
        let untouched = self.maps.iter().filter(|&&b| b == 0).count() as f64;
        if untouched > 0.0 {
            let linear = m * (m / untouched).ln();
            if linear < 2.0 * m {
                return linear.max(1.0).min(self.count as f64);
            }
        }
        raw.max(1.0).min(self.count as f64)
    }

    /// Merge another sketch built with the same bitmap count.
    pub fn merge(&mut self, other: &FmSketch) {
        assert_eq!(self.maps.len(), other.maps.len(), "incompatible sketches");
        for (a, b) in self.maps.iter_mut().zip(&other.maps) {
            *a |= *b;
        }
        self.count += other.count;
    }
}

impl Default for FmSketch {
    fn default() -> Self {
        FmSketch::new(64)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal FNV-1a hasher so we do not depend on `std`'s unspecified
/// default hash across versions.
#[derive(Debug)]
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relative_error(est: f64, truth: f64) -> f64 {
        (est - truth).abs() / truth
    }

    #[test]
    fn empty_sketch() {
        let s = FmSketch::default();
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.observed(), 0);
    }

    #[test]
    fn small_cardinalities_reasonable() {
        let mut s = FmSketch::default();
        for i in 0..20u64 {
            for _ in 0..50 {
                s.observe(&i);
            }
        }
        let est = s.estimate();
        assert!(relative_error(est, 20.0) < 0.6, "est {est} for 20");
    }

    #[test]
    fn large_cardinalities_within_30_percent() {
        for truth in [1000u64, 10_000, 100_000] {
            let mut s = FmSketch::new(128);
            for i in 0..truth {
                s.observe(&(i.wrapping_mul(2_654_435_761)));
            }
            let est = s.estimate();
            assert!(
                relative_error(est, truth as f64) < 0.3,
                "est {est} for {truth}"
            );
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = FmSketch::default();
        for _ in 0..100_000 {
            s.observe(&42u64);
        }
        let est = s.estimate();
        assert!(est <= 10.0, "est {est} for 1 distinct");
        assert_eq!(s.observed(), 100_000);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = FmSketch::new(64);
        let mut b = FmSketch::new(64);
        for i in 0..5000u64 {
            a.observe(&i);
        }
        for i in 2500..7500u64 {
            b.observe(&i);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let est = merged.estimate();
        assert!(relative_error(est, 7500.0) < 0.35, "est {est} for 7500");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = FmSketch::new(48);
    }
}
