//! Histograms for selectivity estimation.
//!
//! Five classes are implemented, mirroring the families the paper's
//! statistics-collectors insertion algorithm reasons about (§2.5):
//!
//! * **equi-width** — fixed-width buckets; *medium* inaccuracy potential;
//! * **equi-depth** — quantile buckets; *medium* inaccuracy potential;
//! * **MaxDiff(V,A)** — boundaries at the largest area differences
//!   (Poosala & Ioannidis \[19\]); what Paradise stores in its catalogs;
//! * **end-biased** — exact frequencies for the most frequent values,
//!   one uniform bucket for the rest; our stand-in for the paper's
//!   *serial* histograms, which earn *low* inaccuracy potential;
//! * **V-optimal(V,F)** — the dynamic-programming partition minimizing
//!   within-bucket frequency variance (\[19\]'s optimal class): the
//!   most accurate, and the most expensive to construct.
//!
//! Histograms operate over the numeric rank of a value
//! ([`mq_common::Value::as_f64`]); bucket fractions are relative to the
//! total row count (nulls tracked separately and never matching).

use std::fmt;

use mq_common::Value;

/// The histogram construction algorithm used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistogramKind {
    /// Fixed-width buckets over `[min, max]`.
    EquiWidth,
    /// Buckets holding (approximately) equal row counts.
    EquiDepth,
    /// MaxDiff(V,A): split where frequency×spread changes most.
    MaxDiff,
    /// Exact singleton buckets for frequent values ("serial" class).
    EndBiased,
    /// V-optimal(V,F): dynamic-programming partition minimizing the
    /// total within-bucket frequency variance (Poosala et al. \[19\]'s
    /// optimal class; the most accurate and the most expensive to build).
    VOptimal,
}

impl fmt::Display for HistogramKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HistogramKind::EquiWidth => "equi-width",
            HistogramKind::EquiDepth => "equi-depth",
            HistogramKind::MaxDiff => "maxdiff",
            HistogramKind::EndBiased => "end-biased",
            HistogramKind::VOptimal => "v-optimal",
        };
        f.write_str(s)
    }
}

/// One histogram bucket over the closed interval `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound (value rank).
    pub lo: f64,
    /// Inclusive upper bound (value rank).
    pub hi: f64,
    /// Fraction of all rows falling in this bucket.
    pub frac: f64,
    /// Estimated distinct values in this bucket (≥ 1 when `frac > 0`).
    pub distinct: f64,
}

impl Bucket {
    fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }
}

/// A one-dimensional histogram with selectivity estimators.
///
/// ```
/// use mq_stats::{Histogram, HistogramKind};
/// // 1000 values uniform over 0..100.
/// let sample: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
/// let h = Histogram::build(HistogramKind::MaxDiff, &sample, 16, 0.0, 100.0);
/// let quarter = h.sel_range(Some(0.0), Some(24.0));
/// assert!((quarter - 0.25).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    kind: HistogramKind,
    buckets: Vec<Bucket>,
    min: f64,
    max: f64,
    null_frac: f64,
    distinct: f64,
    /// Number of rows (including nulls) this histogram summarizes;
    /// the mass basis for [`Histogram::merge`]. Estimated from the
    /// sample by [`Histogram::build`]; callers that know the true
    /// stream length should override via [`Histogram::set_weight`].
    weight: f64,
}

impl Histogram {
    /// Build a histogram of `kind` with (at most) `nbuckets` buckets
    /// from the numeric ranks of a sample, where `null_frac` is the
    /// fraction of NULLs in the full stream and `total_distinct` the
    /// (estimated) distinct count of the full stream.
    pub fn build(
        kind: HistogramKind,
        sample: &[f64],
        nbuckets: usize,
        null_frac: f64,
        total_distinct: f64,
    ) -> Histogram {
        let mut vals: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        vals.sort_by(f64::total_cmp);
        if vals.is_empty() || nbuckets == 0 {
            return Histogram {
                kind,
                buckets: Vec::new(),
                min: 0.0,
                max: 0.0,
                null_frac: null_frac.clamp(0.0, 1.0),
                distinct: total_distinct.max(0.0),
                weight: 0.0,
            };
        }
        let nonnull_frac = (1.0 - null_frac).clamp(0.0, 1.0);
        // Collapse to (value, frequency) pairs.
        let mut freq: Vec<(f64, u64)> = Vec::new();
        for &v in &vals {
            match freq.last_mut() {
                Some((last, c)) if *last == v => *c += 1,
                _ => freq.push((v, 1)),
            }
        }
        let n = vals.len() as f64;
        let sample_distinct = freq.len() as f64;
        let distinct = if total_distinct > 0.0 {
            total_distinct
        } else {
            sample_distinct
        };
        // Scale per-bucket sample distinct counts up to the full stream.
        let distinct_scale = (distinct / sample_distinct).max(1.0);

        let mut buckets = match kind {
            HistogramKind::EquiWidth => build_equi_width(&freq, n, nbuckets),
            HistogramKind::EquiDepth => build_equi_depth(&freq, n, nbuckets),
            HistogramKind::MaxDiff => build_maxdiff(&freq, n, nbuckets),
            HistogramKind::EndBiased => build_end_biased(&freq, n, nbuckets),
            HistogramKind::VOptimal => build_voptimal(&freq, n, nbuckets),
        };
        for b in &mut buckets {
            b.frac *= nonnull_frac;
            if !b.is_singleton() {
                b.distinct = (b.distinct * distinct_scale).max(1.0);
            }
        }
        // Mass basis: total rows (incl. nulls) the sample stands for —
        // `frac × weight` recovers a bucket's row count.
        let weight = if nonnull_frac > 0.0 {
            n / nonnull_frac
        } else {
            n
        };
        Histogram {
            kind,
            buckets,
            min: *vals.first().unwrap(),
            max: *vals.last().unwrap(),
            null_frac: null_frac.clamp(0.0, 1.0),
            distinct,
            weight,
        }
    }

    /// Build from [`Value`]s directly (nulls counted, others ranked).
    pub fn build_from_values(
        kind: HistogramKind,
        values: &[Value],
        nbuckets: usize,
        total_distinct: f64,
    ) -> Histogram {
        let nulls = values.iter().filter(|v| v.is_null()).count();
        let ranks: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
        let null_frac = if values.is_empty() {
            0.0
        } else {
            nulls as f64 / values.len() as f64
        };
        Histogram::build(kind, &ranks, nbuckets, null_frac, total_distinct)
    }

    /// Reassemble a histogram from previously captured parts (the
    /// getters' view) — the snapshot restore path. No re-derivation
    /// happens: the caller is trusted to hand back exactly what
    /// [`Histogram::kind`], [`Histogram::buckets`] and friends produced.
    pub fn from_parts(
        kind: HistogramKind,
        buckets: Vec<Bucket>,
        min: f64,
        max: f64,
        null_frac: f64,
        distinct: f64,
        weight: f64,
    ) -> Histogram {
        Histogram {
            kind,
            buckets,
            min,
            max,
            null_frac: null_frac.clamp(0.0, 1.0),
            distinct: distinct.max(0.0),
            weight: weight.max(0.0),
        }
    }

    /// The construction algorithm.
    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    /// The buckets (read-only view, mostly for tests and EXPLAIN).
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Minimum observed rank.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed rank.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Fraction of NULL rows.
    pub fn null_frac(&self) -> f64 {
        self.null_frac
    }

    /// Estimated distinct values (non-null).
    pub fn distinct(&self) -> f64 {
        self.distinct
    }

    /// Whether the histogram carries any distribution information.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The number of rows this histogram summarizes (the mass basis
    /// used by [`Histogram::merge`]).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Override the row weight with the true stream length (builders
    /// only see the reservoir sample; the accumulator knows the exact
    /// count).
    pub fn set_weight(&mut self, rows: f64) {
        if rows.is_finite() && rows >= 0.0 {
            self.weight = rows;
        }
    }

    /// Merge another histogram into this one, weighting each side by
    /// the number of rows it summarizes. Bucket boundaries become the
    /// union of both sides'; overlapping buckets split their mass
    /// proportionally to span overlap (continuous-uniform assumption),
    /// so the merge is **exact** whenever boundaries align — in
    /// particular for singleton buckets (MaxDiff/V-optimal/end-biased
    /// on small domains). Distinct counts take the max per merged
    /// bucket (a lower bound; the FM sketch is the exact-merging
    /// distinct authority).
    pub fn merge(&mut self, other: &Histogram) {
        let w1 = self.weight.max(0.0);
        let w2 = other.weight.max(0.0);
        if w2 <= 0.0 && other.buckets.is_empty() {
            return;
        }
        if w1 <= 0.0 && self.buckets.is_empty() {
            let kind = self.kind;
            *self = other.clone();
            self.kind = kind;
            return;
        }
        let w = w1 + w2;
        let self_had_domain = !self.buckets.is_empty();
        // Atoms: (lo, hi, absolute mass, distinct).
        let mut atoms: Vec<(f64, f64, f64, f64)> = Vec::new();
        for b in &self.buckets {
            atoms.push((b.lo, b.hi, b.frac * w1, b.distinct));
        }
        for b in &other.buckets {
            atoms.push((b.lo, b.hi, b.frac * w2, b.distinct));
        }
        // Union of boundaries; split every interval atom at the cut
        // points that fall strictly inside it.
        let mut cuts: Vec<f64> = atoms.iter().flat_map(|a| [a.0, a.1]).collect();
        cuts.sort_by(f64::total_cmp);
        cuts.dedup();
        let mut pieces: Vec<(f64, f64, f64, f64)> = Vec::new();
        for &(lo, hi, mass, distinct) in &atoms {
            if lo == hi {
                pieces.push((lo, hi, mass, distinct));
                continue;
            }
            let span = hi - lo;
            let mut prev = lo;
            for &c in cuts.iter().filter(|&&c| c > lo && c < hi) {
                let f = (c - prev) / span;
                pieces.push((prev, c, mass * f, (distinct * f).max(1.0)));
                prev = c;
            }
            let f = (hi - prev) / span;
            pieces.push((prev, hi, mass * f, (distinct * f).max(1.0)));
        }
        pieces.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut buckets: Vec<Bucket> = Vec::new();
        for (lo, hi, mass, distinct) in pieces {
            match buckets.last_mut() {
                Some(b) if b.lo == lo && b.hi == hi => {
                    b.frac += mass;
                    b.distinct = b.distinct.max(distinct);
                }
                _ => buckets.push(Bucket {
                    lo,
                    hi,
                    frac: mass,
                    distinct,
                }),
            }
        }
        if w > 0.0 {
            for b in &mut buckets {
                b.frac /= w;
            }
        }
        self.buckets = buckets;
        if !other.buckets.is_empty() {
            if self_had_domain {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            } else {
                self.min = other.min;
                self.max = other.max;
            }
        }
        self.null_frac = if w > 0.0 {
            ((self.null_frac * w1 + other.null_frac * w2) / w).clamp(0.0, 1.0)
        } else {
            self.null_frac
        };
        self.distinct = self.distinct.max(other.distinct);
        self.weight = w;
    }

    /// Selectivity of `col = rank` as a fraction of all rows.
    pub fn sel_eq(&self, rank: f64) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        if rank < self.min || rank > self.max {
            return 0.0;
        }
        // Singleton buckets (end-biased) answer exactly.
        for b in &self.buckets {
            if b.is_singleton() && b.lo == rank {
                return b.frac;
            }
        }
        for b in &self.buckets {
            if rank >= b.lo && rank <= b.hi && !b.is_singleton() {
                return b.frac / b.distinct.max(1.0);
            }
        }
        // Fell between buckets (end-biased pooled region exhausted).
        0.0
    }

    /// Selectivity of `lo ≤ col ≤ hi` (either bound optional) as a
    /// fraction of all rows, using the continuous-uniform assumption
    /// within buckets.
    pub fn sel_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        let lo = lo.unwrap_or(f64::NEG_INFINITY);
        let hi = hi.unwrap_or(f64::INFINITY);
        if lo > hi {
            return 0.0;
        }
        let mut total = 0.0;
        for b in &self.buckets {
            total += bucket_overlap(b, lo, hi);
        }
        total.clamp(0.0, 1.0)
    }

    /// Join selectivity of `R.a = S.b` estimated from the two
    /// histograms: fraction of the cross product that matches. Buckets
    /// are intersected; within each intersection the standard
    /// `f_R · f_S / max(d_R, d_S)` formula applies.
    pub fn sel_join(&self, other: &Histogram) -> f64 {
        if self.buckets.is_empty() || other.buckets.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for a in &self.buckets {
            for b in &other.buckets {
                let lo = a.lo.max(b.lo);
                let hi = a.hi.min(b.hi);
                if lo > hi {
                    continue;
                }
                let fa = fraction_of_bucket_in(a, lo, hi);
                let fb = fraction_of_bucket_in(b, lo, hi);
                let da = (a.distinct * bucket_span_frac(a, lo, hi)).max(1.0);
                let db = (b.distinct * bucket_span_frac(b, lo, hi)).max(1.0);
                total += fa * fb / da.max(db);
            }
        }
        total.clamp(0.0, 1.0)
    }

    /// Mean relative error of this histogram against an exact
    /// frequency table (diagnostics; used in tests and ablations).
    pub fn eq_error_against(&self, exact: &[(f64, f64)]) -> f64 {
        if exact.is_empty() {
            return 0.0;
        }
        let mut err = 0.0;
        for &(rank, frac) in exact {
            let est = self.sel_eq(rank);
            err += (est - frac).abs() / frac.max(1e-9);
        }
        err / exact.len() as f64
    }
}

fn bucket_overlap(b: &Bucket, lo: f64, hi: f64) -> f64 {
    b.frac * bucket_span_frac(b, lo, hi)
}

/// Fraction of the bucket's span covered by `[lo, hi]`, with a
/// discrete correction: values are modelled as `distinct` points spaced
/// one "gap" apart, so a single-point overlap yields ≈ 1/distinct
/// rather than zero (important on small integer domains).
fn bucket_span_frac(b: &Bucket, lo: f64, hi: f64) -> f64 {
    if hi < b.lo || lo > b.hi {
        return 0.0;
    }
    if b.is_singleton() {
        return 1.0; // fully inside (we checked overlap above)
    }
    let gap = (b.hi - b.lo) / (b.distinct - 1.0).max(1.0);
    let clip_lo = lo.max(b.lo);
    let clip_hi = hi.min(b.hi);
    (((clip_hi - clip_lo) + gap) / ((b.hi - b.lo) + gap)).clamp(0.0, 1.0)
}

fn fraction_of_bucket_in(b: &Bucket, lo: f64, hi: f64) -> f64 {
    b.frac * bucket_span_frac(b, lo, hi)
}

fn build_equi_width(freq: &[(f64, u64)], n: f64, nbuckets: usize) -> Vec<Bucket> {
    let lo = freq.first().unwrap().0;
    let hi = freq.last().unwrap().0;
    if lo == hi {
        return vec![Bucket {
            lo,
            hi,
            frac: 1.0,
            distinct: 1.0,
        }];
    }
    let width = (hi - lo) / nbuckets as f64;
    let mut buckets: Vec<Bucket> = (0..nbuckets)
        .map(|i| Bucket {
            lo: lo + width * i as f64,
            hi: if i + 1 == nbuckets {
                hi
            } else {
                lo + width * (i + 1) as f64
            },
            frac: 0.0,
            distinct: 0.0,
        })
        .collect();
    for &(v, c) in freq {
        let idx = (((v - lo) / width) as usize).min(nbuckets - 1);
        buckets[idx].frac += c as f64 / n;
        buckets[idx].distinct += 1.0;
    }
    buckets.retain(|b| b.frac > 0.0);
    buckets
}

fn build_equi_depth(freq: &[(f64, u64)], n: f64, nbuckets: usize) -> Vec<Bucket> {
    let target = (n / nbuckets as f64).max(1.0);
    let mut buckets = Vec::with_capacity(nbuckets);
    let mut cur_lo = freq[0].0;
    let mut cur_count = 0.0;
    let mut cur_distinct = 0.0;
    for (i, &(v, c)) in freq.iter().enumerate() {
        cur_count += c as f64;
        cur_distinct += 1.0;
        let last = i + 1 == freq.len();
        if (cur_count >= target && buckets.len() + 1 < nbuckets) || last {
            buckets.push(Bucket {
                lo: cur_lo,
                hi: v,
                frac: cur_count / n,
                distinct: cur_distinct,
            });
            if let Some(&(next, _)) = freq.get(i + 1) {
                cur_lo = next;
            }
            cur_count = 0.0;
            cur_distinct = 0.0;
        }
    }
    buckets
}

fn build_maxdiff(freq: &[(f64, u64)], n: f64, nbuckets: usize) -> Vec<Bucket> {
    if freq.len() <= nbuckets {
        // Every distinct value gets its own exact singleton bucket.
        return freq
            .iter()
            .map(|&(v, c)| Bucket {
                lo: v,
                hi: v,
                frac: c as f64 / n,
                distinct: 1.0,
            })
            .collect();
    }
    // Area of value i = freq_i × spread_i (spread = gap to next value).
    let mut areas = Vec::with_capacity(freq.len());
    for (i, &(v, c)) in freq.iter().enumerate() {
        let spread = if i + 1 < freq.len() {
            freq[i + 1].0 - v
        } else {
            // Last value: reuse the previous spread as an approximation.
            freq[i - 1].0 - if i >= 2 { freq[i - 2].0 } else { v - 1.0 }
        };
        areas.push(c as f64 * spread.max(f64::EPSILON));
    }
    // Split after position i where |area[i+1] - area[i]| is largest.
    let mut diffs: Vec<(f64, usize)> = areas
        .windows(2)
        .enumerate()
        .map(|(i, w)| ((w[1] - w[0]).abs(), i))
        .collect();
    diffs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut splits: Vec<usize> = diffs
        .into_iter()
        .take(nbuckets.saturating_sub(1))
        .map(|(_, i)| i)
        .collect();
    splits.sort_unstable();

    let mut buckets = Vec::with_capacity(nbuckets);
    let mut start = 0usize;
    for &s in splits.iter().chain(std::iter::once(&(freq.len() - 1))) {
        let end = s; // inclusive index of last value in bucket
        let slice = &freq[start..=end];
        let count: u64 = slice.iter().map(|&(_, c)| c).sum();
        buckets.push(Bucket {
            lo: slice[0].0,
            hi: slice[slice.len() - 1].0,
            frac: count as f64 / n,
            distinct: slice.len() as f64,
        });
        start = end + 1;
        if start >= freq.len() {
            break;
        }
    }
    buckets
}

/// V-optimal(V,F): choose bucket boundaries minimizing the summed
/// within-bucket variance of value frequencies (the SSE of
/// approximating each bucket's frequencies by their mean). Exact
/// dynamic program, O(D² × B) over D distinct values; inputs with more
/// than `VOPT_MAX_DISTINCT` distinct values are first coarsened into
/// contiguous segments so construction stays bounded.
fn build_voptimal(freq: &[(f64, u64)], n: f64, nbuckets: usize) -> Vec<Bucket> {
    const VOPT_MAX_DISTINCT: usize = 256;
    if freq.len() <= nbuckets {
        return freq
            .iter()
            .map(|&(v, c)| Bucket {
                lo: v,
                hi: v,
                frac: c as f64 / n,
                distinct: 1.0,
            })
            .collect();
    }
    // Segments of contiguous distinct values: (lo, hi, count, distinct).
    let segments: Vec<(f64, f64, f64, f64)> = if freq.len() <= VOPT_MAX_DISTINCT {
        freq.iter().map(|&(v, c)| (v, v, c as f64, 1.0)).collect()
    } else {
        let group = freq.len().div_ceil(VOPT_MAX_DISTINCT);
        freq.chunks(group)
            .map(|chunk| {
                (
                    chunk[0].0,
                    chunk[chunk.len() - 1].0,
                    chunk.iter().map(|&(_, c)| c as f64).sum(),
                    chunk.len() as f64,
                )
            })
            .collect()
    };
    let d = segments.len();
    let b = nbuckets.min(d);

    // Prefix sums of counts and squared counts over segments.
    let mut sum = vec![0.0f64; d + 1];
    let mut sq = vec![0.0f64; d + 1];
    for (i, s) in segments.iter().enumerate() {
        sum[i + 1] = sum[i] + s.2;
        sq[i + 1] = sq[i] + s.2 * s.2;
    }
    // SSE of segments i..=j approximated by their mean frequency.
    let sse = |i: usize, j: usize| -> f64 {
        let cnt = (j - i + 1) as f64;
        let s = sum[j + 1] - sum[i];
        let s2 = sq[j + 1] - sq[i];
        (s2 - s * s / cnt).max(0.0)
    };

    // dp[k][j] = min error covering segments 0..=j with k+1 buckets.
    let mut dp = vec![vec![f64::INFINITY; d]; b];
    let mut cut = vec![vec![0usize; d]; b];
    for (j, slot) in dp[0].iter_mut().enumerate() {
        *slot = sse(0, j);
    }
    for k in 1..b {
        for j in k..d {
            for i in k..=j {
                let cost = dp[k - 1][i - 1] + sse(i, j);
                if cost < dp[k][j] {
                    dp[k][j] = cost;
                    cut[k][j] = i;
                }
            }
        }
    }

    // Backtrack boundaries from dp[b-1][d-1].
    let mut bounds = Vec::with_capacity(b);
    let mut j = d - 1;
    let mut k = b - 1;
    loop {
        let i = if k == 0 { 0 } else { cut[k][j] };
        bounds.push((i, j));
        if k == 0 {
            break;
        }
        j = i - 1;
        k -= 1;
    }
    bounds.reverse();

    bounds
        .into_iter()
        .map(|(i, j)| {
            let count: f64 = segments[i..=j].iter().map(|s| s.2).sum();
            let distinct: f64 = segments[i..=j].iter().map(|s| s.3).sum();
            Bucket {
                lo: segments[i].0,
                hi: segments[j].1,
                frac: count / n,
                distinct,
            }
        })
        .collect()
}

fn build_end_biased(freq: &[(f64, u64)], n: f64, nbuckets: usize) -> Vec<Bucket> {
    let singles = nbuckets.saturating_sub(1).min(freq.len());
    // Pick the most frequent values for exact singleton buckets.
    let mut by_freq: Vec<usize> = (0..freq.len()).collect();
    by_freq.sort_by(|&a, &b| freq[b].1.cmp(&freq[a].1).then(a.cmp(&b)));
    let top: Vec<usize> = {
        let mut t = by_freq[..singles].to_vec();
        t.sort_unstable();
        t
    };
    let mut buckets: Vec<Bucket> = top
        .iter()
        .map(|&i| Bucket {
            lo: freq[i].0,
            hi: freq[i].0,
            frac: freq[i].1 as f64 / n,
            distinct: 1.0,
        })
        .collect();
    // The remainder pools into a single spanning bucket.
    let rest: Vec<&(f64, u64)> = freq
        .iter()
        .enumerate()
        .filter(|(i, _)| !top.contains(i))
        .map(|(_, f)| f)
        .collect();
    if !rest.is_empty() {
        let count: u64 = rest.iter().map(|(_, c)| *c).sum();
        buckets.push(Bucket {
            lo: rest.first().unwrap().0,
            hi: rest.last().unwrap().0,
            frac: count as f64 / n,
            distinct: rest.len() as f64,
        });
    }
    buckets.sort_by(|a, b| a.lo.total_cmp(&b.lo));
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sample(n: usize, lo: i64, hi: i64) -> Vec<f64> {
        // Deterministic striped coverage of [lo, hi].
        (0..n)
            .map(|i| (lo + (i as i64 * 7919) % (hi - lo + 1)) as f64)
            .collect()
    }

    #[test]
    fn equi_width_range_estimates_uniform() {
        let sample = uniform_sample(10_000, 0, 999);
        let h = Histogram::build(HistogramKind::EquiWidth, &sample, 20, 0.0, 1000.0);
        // Range covering 25% of the domain.
        let sel = h.sel_range(Some(0.0), Some(249.0));
        assert!((sel - 0.25).abs() < 0.05, "sel {sel}");
        // Full domain.
        let all = h.sel_range(None, None);
        assert!((all - 1.0).abs() < 1e-6, "all {all}");
    }

    #[test]
    fn equi_depth_buckets_have_similar_mass() {
        let sample = uniform_sample(8000, 0, 99);
        let h = Histogram::build(HistogramKind::EquiDepth, &sample, 10, 0.0, 100.0);
        for b in h.buckets() {
            assert!(b.frac < 0.25, "bucket too heavy: {b:?}");
        }
    }

    #[test]
    fn maxdiff_exact_when_few_distinct() {
        let mut sample = Vec::new();
        for (v, c) in [(1.0, 50), (2.0, 30), (10.0, 20)] {
            sample.extend(std::iter::repeat_n(v, c));
        }
        let h = Histogram::build(HistogramKind::MaxDiff, &sample, 8, 0.0, 3.0);
        assert!((h.sel_eq(1.0) - 0.5).abs() < 1e-9);
        assert!((h.sel_eq(2.0) - 0.3).abs() < 1e-9);
        assert!((h.sel_eq(10.0) - 0.2).abs() < 1e-9);
        assert_eq!(h.sel_eq(5.0), 0.0);
    }

    #[test]
    fn voptimal_exact_when_few_distinct() {
        let mut sample = Vec::new();
        for (v, c) in [(1.0, 50), (2.0, 30), (10.0, 20)] {
            sample.extend(std::iter::repeat_n(v, c));
        }
        let h = Histogram::build(HistogramKind::VOptimal, &sample, 8, 0.0, 3.0);
        assert!((h.sel_eq(1.0) - 0.5).abs() < 1e-9);
        assert!((h.sel_eq(10.0) - 0.2).abs() < 1e-9);
        assert_eq!(h.sel_eq(5.0), 0.0);
    }

    /// V-optimal puts boundaries where frequencies jump: a step
    /// distribution with two plateaus and enough buckets recovers both
    /// plateaus exactly.
    #[test]
    fn voptimal_isolates_frequency_steps() {
        let mut sample = Vec::new();
        // Values 0..50 occur once; values 50..60 occur 20× each.
        for v in 0..50 {
            sample.push(v as f64);
        }
        for v in 50..60 {
            sample.extend(std::iter::repeat_n(v as f64, 20));
        }
        let h = Histogram::build(HistogramKind::VOptimal, &sample, 4, 0.0, 60.0);
        let n = sample.len() as f64;
        // Heavy values answered near their true frequency (20/n),
        // light values near 1/n — the boundary between the plateaus
        // must not smear them together.
        assert!(
            (h.sel_eq(55.0) - 20.0 / n).abs() < 5.0 / n,
            "heavy {} vs {}",
            h.sel_eq(55.0),
            20.0 / n
        );
        assert!(
            h.sel_eq(25.0) < 4.0 / n,
            "light {} should be ≈ {}",
            h.sel_eq(25.0),
            1.0 / n
        );
    }

    /// The DP is optimal: on skewed data its point-query error is never
    /// worse than equi-width's with the same bucket budget.
    #[test]
    fn voptimal_no_worse_than_equiwidth_on_skew() {
        // Zipf-ish frequencies over 100 values.
        let mut sample = Vec::new();
        let mut exact = Vec::new();
        let mut total = 0usize;
        for v in 0..100usize {
            let c = (400.0 / (v as f64 + 1.0)).ceil() as usize;
            sample.extend(std::iter::repeat_n(v as f64, c));
            total += c;
        }
        for v in 0..100usize {
            let c = (400.0 / (v as f64 + 1.0)).ceil();
            exact.push((v as f64, c / total as f64));
        }
        let vopt = Histogram::build(HistogramKind::VOptimal, &sample, 12, 0.0, 100.0);
        let ew = Histogram::build(HistogramKind::EquiWidth, &sample, 12, 0.0, 100.0);
        let (e_vopt, e_ew) = (vopt.eq_error_against(&exact), ew.eq_error_against(&exact));
        assert!(
            e_vopt <= e_ew + 1e-9,
            "v-optimal {e_vopt} vs equi-width {e_ew}"
        );
    }

    /// Large distinct counts go through the coarsening path and still
    /// satisfy the mass/bounds invariants.
    #[test]
    fn voptimal_coarsens_large_domains() {
        let sample: Vec<f64> = (0..4000).map(|i| (i % 1000) as f64).collect();
        let h = Histogram::build(HistogramKind::VOptimal, &sample, 16, 0.0, 1000.0);
        assert!(h.buckets().len() <= 16);
        let mass: f64 = h.buckets().iter().map(|b| b.frac).sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        assert!((h.sel_range(None, None) - 1.0).abs() < 1e-6);
        // Uniform data: any quarter-range is about a quarter.
        let q = h.sel_range(Some(0.0), Some(249.0));
        assert!((q - 0.25).abs() < 0.05, "quarter {q}");
    }

    #[test]
    fn end_biased_exact_for_heavy_hitters() {
        let mut sample = Vec::new();
        sample.extend(std::iter::repeat_n(7.0, 600));
        sample.extend(std::iter::repeat_n(3.0, 250));
        for i in 0..150 {
            sample.push(100.0 + i as f64);
        }
        let h = Histogram::build(HistogramKind::EndBiased, &sample, 3, 0.0, 152.0);
        assert!((h.sel_eq(7.0) - 0.6).abs() < 1e-9);
        assert!((h.sel_eq(3.0) - 0.25).abs() < 1e-9);
        // Tail values estimated via the pooled bucket.
        let tail = h.sel_eq(120.0);
        assert!(tail > 0.0 && tail < 0.01, "tail {tail}");
    }

    #[test]
    fn null_fraction_scales_everything() {
        let sample = uniform_sample(1000, 0, 9);
        let h = Histogram::build(HistogramKind::EquiDepth, &sample, 4, 0.5, 10.0);
        let all = h.sel_range(None, None);
        assert!((all - 0.5).abs() < 0.01, "all {all}");
        assert!((h.null_frac() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_domain_is_zero() {
        let sample = uniform_sample(100, 10, 20);
        let h = Histogram::build(HistogramKind::MaxDiff, &sample, 4, 0.0, 11.0);
        assert_eq!(h.sel_eq(9.0), 0.0);
        assert_eq!(h.sel_eq(25.0), 0.0);
        assert_eq!(h.sel_range(Some(30.0), Some(40.0)), 0.0);
        assert_eq!(h.sel_range(Some(5.0), Some(2.0)), 0.0);
    }

    #[test]
    fn empty_sample_is_harmless() {
        let h = Histogram::build(HistogramKind::MaxDiff, &[], 8, 0.0, 0.0);
        assert!(h.is_empty());
        assert_eq!(h.sel_eq(1.0), 0.0);
        assert_eq!(h.sel_range(None, None), 0.0);
    }

    #[test]
    fn join_selectivity_key_fk() {
        // R.key uniform 0..99 (distinct 100), S.fk uniform 0..99.
        let r = uniform_sample(100, 0, 99);
        let s = uniform_sample(5000, 0, 99);
        let hr = Histogram::build(HistogramKind::EquiDepth, &r, 10, 0.0, 100.0);
        let hs = Histogram::build(HistogramKind::EquiDepth, &s, 10, 0.0, 100.0);
        let sel = hr.sel_join(&hs);
        // True join selectivity = 1/100 = 0.01.
        assert!((sel - 0.01).abs() < 0.005, "sel {sel}");
    }

    #[test]
    fn join_disjoint_domains_is_zero() {
        let r = uniform_sample(100, 0, 49);
        let s = uniform_sample(100, 100, 149);
        let hr = Histogram::build(HistogramKind::MaxDiff, &r, 8, 0.0, 50.0);
        let hs = Histogram::build(HistogramKind::MaxDiff, &s, 8, 0.0, 50.0);
        assert_eq!(hr.sel_join(&hs), 0.0);
    }

    #[test]
    fn build_from_values_counts_nulls() {
        let mut vals: Vec<Value> = (0..90).map(Value::Int).collect();
        vals.extend(std::iter::repeat_n(Value::Null, 10));
        let h = Histogram::build_from_values(HistogramKind::EquiWidth, &vals, 8, 90.0);
        assert!((h.null_frac() - 0.1).abs() < 1e-12);
        let total = h.sel_range(None, None);
        assert!((total - 0.9).abs() < 0.02, "total {total}");
    }

    #[test]
    fn skew_hurts_equi_width_less_than_endbiased() {
        // Heavy skew: value 0 appears 90% of the time.
        let mut sample = vec![0.0; 9000];
        for i in 0..1000 {
            sample.push(1.0 + (i % 100) as f64);
        }
        let exact: Vec<(f64, f64)> = vec![(0.0, 0.9), (50.0, 0.001)];
        let ew = Histogram::build(HistogramKind::EquiWidth, &sample, 8, 0.0, 101.0);
        let eb = Histogram::build(HistogramKind::EndBiased, &sample, 8, 0.0, 101.0);
        let err_ew = ew.eq_error_against(&exact);
        let err_eb = eb.eq_error_against(&exact);
        assert!(
            err_eb < err_ew,
            "end-biased {err_eb} should beat equi-width {err_ew} under skew"
        );
    }

    #[test]
    fn merge_of_splits_equals_whole_for_singleton_buckets() {
        // Small domain ⇒ MaxDiff gives exact singleton buckets; the
        // merged splits must reproduce the whole-input histogram's
        // bucket fractions exactly (up to fp round-off).
        let whole: Vec<f64> = (0..900).map(|i| (i % 9) as f64).collect();
        let (a, b) = whole.split_at(333);
        let hw = Histogram::build(HistogramKind::MaxDiff, &whole, 16, 0.0, 9.0);
        let mut ha = Histogram::build(HistogramKind::MaxDiff, a, 16, 0.0, 9.0);
        let hb = Histogram::build(HistogramKind::MaxDiff, b, 16, 0.0, 9.0);
        ha.merge(&hb);
        assert_eq!(ha.buckets().len(), hw.buckets().len());
        for (ba, bw) in ha.buckets().iter().zip(hw.buckets()) {
            assert_eq!(ba.lo, bw.lo);
            assert_eq!(ba.hi, bw.hi);
            assert!(
                (ba.frac - bw.frac).abs() < 1e-9,
                "frac {} vs {}",
                ba.frac,
                bw.frac
            );
        }
        assert!((ha.weight() - hw.weight()).abs() < 1e-9);
        assert_eq!(ha.min(), hw.min());
        assert_eq!(ha.max(), hw.max());
    }

    #[test]
    fn merge_weights_null_fraction() {
        let a = uniform_sample(100, 0, 9);
        let b = uniform_sample(300, 0, 9);
        let mut ha = Histogram::build(HistogramKind::EquiDepth, &a, 4, 0.5, 10.0);
        let hb = Histogram::build(HistogramKind::EquiDepth, &b, 4, 0.0, 10.0);
        // Weights: 100/(1-0.5)=200 rows and 300 rows ⇒ merged null
        // fraction (0.5·200 + 0·300)/500 = 0.2.
        ha.merge(&hb);
        assert!((ha.null_frac() - 0.2).abs() < 1e-9, "nf {}", ha.null_frac());
        // Mass (non-null) is conserved: 100 + 300 of 500 rows.
        let mass: f64 = ha.buckets().iter().map(|x| x.frac).sum();
        assert!((mass - 0.8).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn merge_overlapping_interval_buckets_conserves_mass() {
        let a = uniform_sample(4000, 0, 999);
        let b = uniform_sample(2000, 500, 1499);
        let mut ha = Histogram::build(HistogramKind::EquiDepth, &a, 8, 0.0, 1000.0);
        let hb = Histogram::build(HistogramKind::EquiDepth, &b, 8, 0.0, 1000.0);
        ha.merge(&hb);
        let mass: f64 = ha.buckets().iter().map(|x| x.frac).sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        assert_eq!(ha.min(), 0.0);
        assert_eq!(ha.max(), 1499.0);
        // Two thirds of all rows came from the first sample's domain
        // half [0, 500): they must still be found there.
        let lower = ha.sel_range(Some(0.0), Some(499.0));
        assert!((lower - 4000.0 / 12000.0).abs() < 0.08, "lower {lower}");
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let sample = uniform_sample(500, 0, 49);
        let mut h = Histogram::build(HistogramKind::MaxDiff, &sample, 8, 0.0, 50.0);
        let before = h.clone();
        h.merge(&Histogram::build(HistogramKind::MaxDiff, &[], 8, 0.0, 0.0));
        assert_eq!(h, before);
        let mut empty = Histogram::build(HistogramKind::MaxDiff, &[], 8, 0.0, 0.0);
        empty.merge(&before);
        assert_eq!(empty.buckets(), before.buckets());
        assert_eq!(empty.weight(), before.weight());
    }

    #[test]
    fn all_kinds_mass_sums_to_one() {
        let sample = uniform_sample(5000, 0, 499);
        for kind in [
            HistogramKind::EquiWidth,
            HistogramKind::EquiDepth,
            HistogramKind::MaxDiff,
            HistogramKind::EndBiased,
        ] {
            let h = Histogram::build(kind, &sample, 16, 0.0, 500.0);
            let mass: f64 = h.buckets().iter().map(|b| b.frac).sum();
            assert!((mass - 1.0).abs() < 1e-9, "{kind}: mass {mass}");
        }
    }
}
