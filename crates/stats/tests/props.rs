//! Property tests for the statistics substrate: histogram invariants,
//! reservoir bounds, sketch bounds, Zipf normalization.

use mq_stats::{FmSketch, Histogram, HistogramKind, Reservoir, Zipf};
use proptest::prelude::*;

fn kinds() -> impl Strategy<Value = HistogramKind> {
    prop_oneof![
        Just(HistogramKind::EquiWidth),
        Just(HistogramKind::EquiDepth),
        Just(HistogramKind::MaxDiff),
        Just(HistogramKind::EndBiased),
        Just(HistogramKind::VOptimal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bucket mass sums to 1 − null_frac (within float slack); every
    /// selectivity is in [0, 1]; full-range selectivity covers the mass.
    #[test]
    fn histogram_invariants(
        kind in kinds(),
        sample in prop::collection::vec(-1000i64..1000, 1..500),
        nbuckets in 1usize..40,
        null_frac in 0.0f64..0.9,
    ) {
        let ranks: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
        let h = Histogram::build(kind, &ranks, nbuckets, null_frac, 0.0);
        let mass: f64 = h.buckets().iter().map(|b| b.frac).sum();
        prop_assert!((mass - (1.0 - null_frac)).abs() < 1e-6, "mass {mass}");
        for b in h.buckets() {
            prop_assert!(b.lo <= b.hi);
            prop_assert!(b.frac >= 0.0 && b.frac <= 1.0);
            prop_assert!(b.distinct >= 0.0);
        }
        let full = h.sel_range(None, None);
        prop_assert!(full <= 1.0 + 1e-9);
        prop_assert!(full >= (1.0 - null_frac) - 1e-6);
        for &probe in sample.iter().take(10) {
            let s = h.sel_eq(probe as f64);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    /// Range selectivity is monotone in the bounds.
    #[test]
    fn range_monotone(
        kind in kinds(),
        sample in prop::collection::vec(0i64..500, 2..300),
        a in 0f64..500.0,
        b in 0f64..500.0,
        c in 0f64..500.0,
    ) {
        let ranks: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
        let h = Histogram::build(kind, &ranks, 16, 0.0, 0.0);
        let mut xs = [a, b, c];
        xs.sort_by(f64::total_cmp);
        let narrow = h.sel_range(Some(xs[1]), Some(xs[1]));
        let mid = h.sel_range(Some(xs[0]), Some(xs[1]));
        let wide = h.sel_range(Some(xs[0]), Some(xs[2]));
        prop_assert!(narrow <= mid + 1e-9);
        prop_assert!(mid <= wide + 1e-9);
    }

    /// Join selectivity is symmetric-ish and bounded.
    #[test]
    fn join_selectivity_bounded(
        xs in prop::collection::vec(0i64..100, 2..200),
        ys in prop::collection::vec(0i64..100, 2..200),
    ) {
        let hx = Histogram::build(
            HistogramKind::MaxDiff,
            &xs.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            16, 0.0, 0.0,
        );
        let hy = Histogram::build(
            HistogramKind::MaxDiff,
            &ys.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            16, 0.0, 0.0,
        );
        let s1 = hx.sel_join(&hy);
        let s2 = hy.sel_join(&hx);
        prop_assert!((0.0..=1.0).contains(&s1));
        prop_assert!((0.0..=1.0).contains(&s2));
        // Not exactly symmetric (bucket asymmetry) but same magnitude.
        if s1 > 1e-9 && s2 > 1e-9 {
            prop_assert!(s1 / s2 < 25.0 && s2 / s1 < 25.0, "{s1} vs {s2}");
        }
    }

    /// The reservoir never exceeds capacity and keeps short streams
    /// exactly.
    #[test]
    fn reservoir_bounds(cap in 1usize..64, n in 0usize..500, seed in any::<u64>()) {
        let mut r = Reservoir::new(cap, seed);
        for i in 0..n {
            r.observe(i);
        }
        prop_assert_eq!(r.seen(), n as u64);
        prop_assert_eq!(r.items().len(), n.min(cap));
        if n <= cap {
            prop_assert_eq!(r.items(), &(0..n).collect::<Vec<_>>()[..]);
        }
        // Sampled items must come from the stream.
        for &x in r.items() {
            prop_assert!(x < n);
        }
    }

    /// The FM estimate is within a loose factor of the truth and never
    /// exceeds the observed stream length.
    #[test]
    fn fm_sketch_bounds(distinct in 1u64..3000, dups in 1u64..4) {
        let mut s = FmSketch::new(64);
        for i in 0..distinct {
            for _ in 0..dups {
                s.observe(&(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            }
        }
        let est = s.estimate();
        prop_assert!(est <= (distinct * dups) as f64 + 1.0);
        prop_assert!(est >= distinct as f64 / 5.0, "est {est} truth {distinct}");
        prop_assert!(est <= distinct as f64 * 5.0, "est {est} truth {distinct}");
    }

    /// Zipf probabilities are normalized and non-increasing in rank.
    #[test]
    fn zipf_normalized(n in 1usize..500, z in 0.0f64..2.0) {
        let zipf = Zipf::new(n, z);
        let total: f64 = (0..n).map(|k| zipf.prob_of_rank(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(zipf.prob_of_rank(k) <= zipf.prob_of_rank(k - 1) + 1e-12);
        }
    }

    /// Zipf samples always land in the domain.
    #[test]
    fn zipf_in_domain(n in 1usize..100, z in 0.0f64..1.5, seed in any::<u64>()) {
        let zipf = Zipf::new(n, z).scrambled(seed);
        let mut rng = mq_common::DetRng::new(seed ^ 1);
        for _ in 0..200 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }
}
