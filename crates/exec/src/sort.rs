//! External merge sort with grant-bounded run generation.

use std::cmp::Ordering;

use mq_common::{FileId, MqError, Result, Row};
use mq_plan::NodeId;
use mq_storage::RowScan;

use crate::context::{Artifact, ExecContext};
use crate::Operator;

/// External merge-sort operator.
pub struct SortExec {
    node: NodeId,
    input: Box<dyn Operator>,
    keys: Vec<(usize, bool)>,
    grant_fallback: usize,
    state: State,
}

enum State {
    Unopened,
    InMem { rows: Vec<Row>, pos: usize },
    Merging(MergeState),
    Done,
}

struct MergeState {
    files: Vec<FileId>,
    scans: Vec<RowScan>,
    heads: Vec<Option<Row>>,
}

impl SortExec {
    /// Create a sort over `(column, ascending)` keys.
    pub fn new(
        node: NodeId,
        input: Box<dyn Operator>,
        keys: Vec<(usize, bool)>,
        grant_fallback: usize,
    ) -> SortExec {
        SortExec {
            node,
            input,
            keys,
            grant_fallback,
            state: State::Unopened,
        }
    }

    fn compare(keys: &[(usize, bool)], a: &Row, b: &Row) -> Ordering {
        for &(k, asc) in keys {
            let ord = a.get(k).cmp(b.get(k));
            let ord = if asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    fn sort_rows(&self, rows: &mut [Row], ctx: &ExecContext) {
        let keys = self.keys.clone();
        ctx.clock
            .add_cpu(rows.len() as u64 * (rows.len().max(2) as f64).log2() as u64);
        rows.sort_by(|a, b| Self::compare(&keys, a, b));
    }

    fn write_run(&self, rows: &[Row], ctx: &ExecContext) -> Result<FileId> {
        let f = ctx.create_temp_file();
        for r in rows {
            ctx.storage.append_row(f, r)?;
        }
        Ok(f)
    }

    /// Merge groups of runs until at most `fanin` remain.
    fn reduce_runs(
        &self,
        mut files: Vec<FileId>,
        fanin: usize,
        ctx: &ExecContext,
    ) -> Result<Vec<FileId>> {
        while files.len() > fanin {
            let mut next = Vec::new();
            for chunk in files.chunks(fanin) {
                let merged = ctx.create_temp_file();
                let mut ms = MergeState::open(chunk.to_vec(), ctx)?;
                while let Some(row) = ms.next_min(&self.keys, ctx)? {
                    ctx.clock.add_cpu(1);
                    ctx.storage.append_row(merged, &row)?;
                }
                for f in chunk {
                    ctx.free_temp_file(*f);
                }
                next.push(merged);
            }
            files = next;
        }
        Ok(files)
    }
}

impl MergeState {
    fn open(files: Vec<FileId>, ctx: &ExecContext) -> Result<MergeState> {
        let mut scans = Vec::with_capacity(files.len());
        let mut heads = Vec::with_capacity(files.len());
        for f in &files {
            let mut s = ctx.storage.scan_file(*f)?;
            heads.push(s.next().transpose()?.map(|(_, r)| r));
            scans.push(s);
        }
        Ok(MergeState {
            files,
            scans,
            heads,
        })
    }

    fn next_min(&mut self, keys: &[(usize, bool)], ctx: &ExecContext) -> Result<Option<Row>> {
        let mut best: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some(row) = head {
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        ctx.clock.add_cpu(1);
                        // `best` only ever indexes a non-empty head, so a
                        // missing row means this run is exhausted — yield
                        // to the current candidate instead of panicking.
                        let better = match self.heads[b].as_ref() {
                            Some(best_row) => {
                                SortExec::compare(keys, row, best_row) == Ordering::Less
                            }
                            None => true,
                        };
                        if better {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        match best {
            None => Ok(None),
            Some(i) => {
                let row = self.heads[i].take();
                self.heads[i] = self.scans[i].next().transpose()?.map(|(_, r)| r);
                Ok(row)
            }
        }
    }

    fn cleanup(&self, ctx: &ExecContext) {
        for f in &self.files {
            ctx.free_temp_file(*f);
        }
    }
}

impl Operator for SortExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        // Resume from an artifact if one survived a plan switch.
        match ctx.take_artifact(self.node) {
            Some(Artifact::SortedRows(rows)) => {
                self.state = State::InMem { rows, pos: 0 };
                return Ok(());
            }
            Some(Artifact::SortedRuns(files)) => {
                self.state = State::Merging(MergeState::open(files, ctx)?);
                return Ok(());
            }
            Some(other) => {
                // Foreign artifact type: put it back, proceed normally.
                ctx.put_artifact(self.node, other);
            }
            None => {}
        }
        // Grant read after opening the input (see hash_join.rs): lower
        // segments complete inside `open`, and their phase hooks may
        // re-allocate this operator's memory.
        self.input.open(ctx)?;
        let mut grant = ctx.grant_for(self.node, self.grant_fallback);
        let mut buffer: Vec<Row> = Vec::new();
        let mut bytes = 0usize;
        let mut runs: Vec<FileId> = Vec::new();
        let mut seen = 0u64;
        while let Some(row) = self.input.next(ctx)? {
            ctx.clock.add_cpu(1);
            seen += 1;
            // §2.3 extension: sorts can respond to mid-execution grant
            // raises between run flushes.
            if seen.is_multiple_of(256) {
                grant = grant.max(ctx.grant_for(self.node, self.grant_fallback));
            }
            bytes += row.encoded_len() + 8;
            buffer.push(row);
            if bytes > grant {
                if std::env::var("MQ_SPILL").is_ok() {
                    eprintln!("SPILL sort {:?} grant={}", self.node, grant);
                }
                mq_obs::emit(|| mq_obs::ObsEvent::Spill {
                    node: self.node.0 as u64,
                    operator: "Sort",
                    bytes: bytes as u64,
                });
                self.sort_rows(&mut buffer, ctx);
                runs.push(self.write_run(&buffer, ctx)?);
                buffer.clear();
                bytes = 0;
            }
        }
        self.input.close(ctx)?;

        if runs.is_empty() {
            self.sort_rows(&mut buffer, ctx);
            ctx.put_artifact(self.node, Artifact::SortedRows(buffer.clone()));
            self.state = State::InMem {
                rows: buffer,
                pos: 0,
            };
        } else {
            if !buffer.is_empty() {
                self.sort_rows(&mut buffer, ctx);
                runs.push(self.write_run(&buffer, ctx)?);
            }
            // Merge fan-in capped by the pool: each open run holds a
            // resident page (see hash_join.rs on pool thrash).
            let fanin = (grant / ctx.cfg.page_size)
                .saturating_sub(1)
                .min(ctx.cfg.buffer_pool_pages / 2)
                .max(2);
            let runs = self.reduce_runs(runs, fanin, ctx)?;
            ctx.put_artifact(self.node, Artifact::SortedRuns(runs.clone()));
            self.state = State::Merging(MergeState::open(runs, ctx)?);
        }
        ctx.notify_phase(self.node)?;
        ctx.take_artifact(self.node);
        Ok(())
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        match &mut self.state {
            State::Unopened => Err(MqError::Execution("sort not opened".into())),
            State::InMem { rows, pos } => {
                if *pos < rows.len() {
                    let r = rows[*pos].clone();
                    *pos += 1;
                    Ok(Some(r))
                } else {
                    Ok(None)
                }
            }
            State::Merging(ms) => {
                let keys = self.keys.clone();
                ms.next_min(&keys, ctx)
            }
            State::Done => Ok(None),
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        if let State::Merging(ms) = &self.state {
            ms.cleanup(ctx);
        }
        self.state = State::Done;
        Ok(())
    }
}
