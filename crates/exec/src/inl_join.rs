//! Indexed nested-loops join: probe a B+-tree per outer row.

use mq_common::{IndexId, Result, Row};
use mq_expr::Expr;
use mq_plan::{NodeId, ScanSpec};

use crate::context::ExecContext;
use crate::Operator;

/// Indexed nested-loops join operator. The outer side streams; each
/// outer row probes the inner table's index and fetches matches.
pub struct IndexNLJoinExec {
    #[allow(dead_code)]
    node: NodeId,
    outer: Box<dyn Operator>,
    outer_key: usize,
    #[allow(dead_code)]
    inner: ScanSpec,
    index: IndexId,
    index_height: usize,
    residual: Option<Expr>,
    pending: Vec<Row>,
    residual_ops: u64,
}

impl IndexNLJoinExec {
    /// Create an indexed nested-loops join.
    pub fn new(
        node: NodeId,
        outer: Box<dyn Operator>,
        outer_key: usize,
        inner: ScanSpec,
        index: IndexId,
        index_height: usize,
        residual: Option<Expr>,
    ) -> IndexNLJoinExec {
        let residual_ops = residual.as_ref().map(|f| f.eval_cost_ops()).unwrap_or(0);
        IndexNLJoinExec {
            node,
            outer,
            outer_key,
            inner,
            index,
            index_height,
            residual,
            pending: Vec::new(),
            residual_ops,
        }
    }
}

impl Operator for IndexNLJoinExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.outer.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let outer_row = match self.outer.next(ctx)? {
                Some(r) => r,
                None => return Ok(None),
            };
            let key = outer_row.try_get(self.outer_key)?;
            if key.is_null() {
                continue;
            }
            // Descent cost: comparisons at each level.
            ctx.clock.add_cpu(self.index_height as u64 * 8 + 1);
            let rids = ctx.storage.index_lookup(self.index, key)?;
            for rid in rids {
                let inner_row = ctx.storage.fetch(rid)?;
                ctx.clock.add_cpu(1 + self.residual_ops);
                let joined = outer_row.concat(&inner_row);
                match &self.residual {
                    Some(f) => {
                        if f.eval_predicate(&joined)? {
                            self.pending.push(joined);
                        }
                    }
                    None => self.pending.push(joined),
                }
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.outer.close(ctx)
    }
}
