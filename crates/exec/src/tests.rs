//! Operator-level tests: correctness against in-memory oracles, spill
//! behaviour under small grants, artifact reuse, and monitor hooks.

use std::cell::RefCell;
use std::rc::Rc;

use mq_catalog::Catalog;
use mq_common::{DataType, EngineConfig, Field, MqError, Result, Row, Schema, SimClock, Value};
use mq_expr::{cmp, col, eq, lit, CmpOp};
use mq_plan::{AggExpr, AggFunc, CollectorSpec, NodeId, PhysOp, PhysPlan, ScanSpec};
use mq_storage::Storage;

use crate::collector::ObservedStats;
use crate::context::{ExecContext, ExecMonitor};
use crate::{run_to_vec, sink};

struct Fixture {
    catalog: Catalog,
    storage: Storage,
    clock: SimClock,
    cfg: EngineConfig,
}

impl Fixture {
    fn new() -> Fixture {
        Self::with_cfg(EngineConfig::default())
    }

    fn with_cfg(cfg: EngineConfig) -> Fixture {
        let clock = SimClock::new();
        let storage = Storage::new(&cfg, clock.clone());
        Fixture {
            catalog: Catalog::new(),
            storage,
            clock,
            cfg,
        }
    }

    fn ctx(&self) -> ExecContext {
        ExecContext::new(self.storage.clone(), self.clock.clone(), self.cfg.clone())
    }

    /// Table r(k INT, v INT, s VARCHAR) with n rows: k = i, v = i % m.
    fn load_r(&self, name: &str, n: i64, m: i64) {
        self.catalog
            .create_table(
                &self.storage,
                name,
                vec![
                    ("k", DataType::Int),
                    ("v", DataType::Int),
                    ("s", DataType::Str),
                ],
            )
            .unwrap();
        for i in 0..n {
            self.catalog
                .insert_row(
                    &self.storage,
                    name,
                    Row::new(vec![
                        Value::Int(i),
                        Value::Int(i % m),
                        Value::str(format!("row-{i}")),
                    ]),
                )
                .unwrap();
        }
    }

    fn scan_plan(&self, table: &str, filter: Option<mq_expr::Expr>) -> PhysPlan {
        let entry = self.catalog.table(table).unwrap();
        let bound = filter.map(|f| f.bind(&entry.schema).unwrap());
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: table.into(),
                    file: entry.file,
                    pages: self.storage.file_pages(entry.file).unwrap() as u64,
                    rows: self.storage.file_rows(entry.file).unwrap(),
                },
                filter: bound,
            },
            vec![],
            entry.schema,
        );
        p.annot.est_rows = self.storage.file_rows(entry.file).unwrap() as f64;
        p.annot.est_row_bytes = 30.0;
        p
    }
}

fn hash_join_plan(build: PhysPlan, probe: PhysPlan, bk: &str, pk: &str, grant: usize) -> PhysPlan {
    let build_keys = vec![build.schema.index_of(bk).unwrap()];
    let probe_keys = vec![probe.schema.index_of(pk).unwrap()];
    let schema = build.schema.join(&probe.schema);
    let mut p = PhysPlan::new(
        PhysOp::HashJoin {
            build_keys,
            probe_keys,
        },
        vec![build, probe],
        schema,
    );
    p.annot.mem_grant_bytes = grant;
    p
}

#[test]
fn seq_scan_with_filter() {
    let fx = Fixture::new();
    fx.load_r("r", 100, 10);
    let plan = {
        let mut p = fx.scan_plan("r", Some(eq(col("r.v"), lit(3i64))));
        p.assign_ids();
        p
    };
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    assert_eq!(rows.len(), 10);
    assert!(rows.iter().all(|r| r.get(1) == &Value::Int(3)));
}

#[test]
fn hash_join_in_memory_matches_oracle() {
    let fx = Fixture::new();
    fx.load_r("a", 50, 5);
    fx.load_r("b", 200, 5);
    let mut plan = hash_join_plan(
        fx.scan_plan("a", None),
        fx.scan_plan("b", None),
        "a.v",
        "b.v",
        1 << 20,
    );
    plan.assign_ids();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    // Each a-row (v = i%5) matches 40 b-rows with the same v.
    assert_eq!(rows.len(), 50 * 40);
    // Output schema: a columns then b columns.
    assert_eq!(rows[0].len(), 6);
    for r in rows.iter().take(20) {
        assert_eq!(r.get(1), r.get(4), "join keys must match");
    }
}

#[test]
fn hash_join_spilled_same_result_more_io() {
    let cfg = EngineConfig {
        buffer_pool_pages: 16,
        ..EngineConfig::default()
    };
    let fx = Fixture::with_cfg(cfg.clone());
    fx.load_r("a", 2000, 50);
    fx.load_r("b", 2000, 50);

    // Oracle: generous grant.
    let mut big = hash_join_plan(
        fx.scan_plan("a", None),
        fx.scan_plan("b", None),
        "a.v",
        "b.v",
        8 << 20,
    );
    big.assign_ids();
    let ctx = fx.ctx();
    let before = fx.clock.snapshot();
    let mut expect = run_to_vec(&big, &ctx).unwrap();
    let io_big = fx.clock.snapshot().since(&before).io_total();

    // Tiny grant: must spill, same multiset of rows.
    let mut small = hash_join_plan(
        fx.scan_plan("a", None),
        fx.scan_plan("b", None),
        "a.v",
        "b.v",
        8 * cfg.page_size,
    );
    small.assign_ids();
    let ctx2 = fx.ctx();
    let before = fx.clock.snapshot();
    let mut got = run_to_vec(&small, &ctx2).unwrap();
    let io_small = fx.clock.snapshot().since(&before).io_total();

    assert_eq!(expect.len(), 2000 * 40);
    let keyfn = |r: &Row| format!("{r}");
    expect.sort_by_key(keyfn);
    got.sort_by_key(keyfn);
    assert_eq!(expect, got, "spilled join must produce identical rows");
    assert!(
        io_small > io_big + 50,
        "spill must cost extra I/O: {io_small} vs {io_big}"
    );
}

#[test]
fn hash_join_null_keys_never_match() {
    let fx = Fixture::new();
    fx.catalog
        .create_table(&fx.storage, "n", vec![("k", DataType::Int)])
        .unwrap();
    for v in [Value::Null, Value::Int(1), Value::Null, Value::Int(2)] {
        fx.catalog
            .insert_row(&fx.storage, "n", Row::new(vec![v]))
            .unwrap();
    }
    let mut plan = hash_join_plan(fx.scan_plan_n(), fx.scan_plan_n(), "n.k", "n.k", 1 << 20);
    plan.assign_ids();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    assert_eq!(rows.len(), 2, "only non-null keys join");
}

impl Fixture {
    fn scan_plan_n(&self) -> PhysPlan {
        self.scan_plan("n", None)
    }
}

#[test]
fn sort_orders_and_spills() {
    // Small pool so spilled runs actually reach the simulated disk.
    let cfg = EngineConfig {
        buffer_pool_pages: 16,
        ..EngineConfig::default()
    };
    let fx = Fixture::with_cfg(cfg.clone());
    fx.load_r("r", 3000, 17);
    let input = fx.scan_plan("r", None);
    let schema = input.schema.clone();
    // Sort by v desc, k asc with a grant forcing external runs.
    let mut plan = PhysPlan::new(
        PhysOp::Sort {
            keys: vec![(1, false), (0, true)],
        },
        vec![input],
        schema,
    );
    plan.annot.mem_grant_bytes = 8 * cfg.page_size;
    plan.assign_ids();
    let before = fx.clock.snapshot();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    let io = fx.clock.snapshot().since(&before).io_total();
    assert_eq!(rows.len(), 3000);
    for w in rows.windows(2) {
        let (v0, v1) = (w[0].get(1), w[1].get(1));
        assert!(v0 >= v1, "v must be descending");
        if v0 == v1 {
            assert!(w[0].get(0) <= w[1].get(0), "k ties ascending");
        }
    }
    assert!(io > 0, "external sort must do I/O");
}

#[test]
fn sort_in_memory_when_fits() {
    let fx = Fixture::new();
    fx.load_r("r", 100, 7);
    let input = fx.scan_plan("r", None);
    let schema = input.schema.clone();
    let mut plan = PhysPlan::new(
        PhysOp::Sort {
            keys: vec![(0, true)],
        },
        vec![input],
        schema,
    );
    plan.annot.mem_grant_bytes = 1 << 20;
    plan.assign_ids();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    assert_eq!(rows.len(), 100);
    assert_eq!(rows[0].get(0), &Value::Int(0));
    assert_eq!(rows[99].get(0), &Value::Int(99));
}

#[test]
fn aggregate_grouped_matches_oracle() {
    let fx = Fixture::new();
    fx.load_r("r", 1000, 10);
    let input = fx.scan_plan("r", None);
    let schema_in = input.schema.clone();
    let out_schema = Schema::new(vec![
        Field::qualified("r", "v", DataType::Int),
        Field::new("cnt", DataType::Int),
        Field::new("avg_k", DataType::Float),
        Field::new("max_k", DataType::Int),
    ])
    .unwrap();
    let mut plan = PhysPlan::new(
        PhysOp::HashAggregate {
            group: vec![1],
            aggs: vec![
                AggExpr {
                    func: AggFunc::Count,
                    arg: None,
                    name: "cnt".into(),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    arg: Some(col("r.k").bind(&schema_in).unwrap()),
                    name: "avg_k".into(),
                },
                AggExpr {
                    func: AggFunc::Max,
                    arg: Some(col("r.k").bind(&schema_in).unwrap()),
                    name: "max_k".into(),
                },
            ],
        },
        vec![input],
        out_schema,
    );
    plan.annot.mem_grant_bytes = 1 << 20;
    plan.assign_ids();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    assert_eq!(rows.len(), 10);
    // Group v=3: rows 3, 13, ..., 993 → count 100, max 993.
    let g3 = rows
        .iter()
        .find(|r| r.get(0) == &Value::Int(3))
        .expect("group 3");
    assert_eq!(g3.get(1), &Value::Int(100));
    assert_eq!(g3.get(3), &Value::Int(993));
    let avg = match g3.get(2) {
        Value::Float(f) => *f,
        other => panic!("avg type {other:?}"),
    };
    assert!((avg - 498.0).abs() < 1e-9, "avg {avg}");
}

#[test]
fn aggregate_scalar_on_empty_input() {
    let fx = Fixture::new();
    fx.load_r("r", 10, 2);
    let input = fx.scan_plan("r", Some(eq(col("r.k"), lit(10_000i64))));
    let out_schema = Schema::new(vec![Field::new("cnt", DataType::Int)]).unwrap();
    let mut plan = PhysPlan::new(
        PhysOp::HashAggregate {
            group: vec![],
            aggs: vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
                name: "cnt".into(),
            }],
        },
        vec![input],
        out_schema,
    );
    plan.assign_ids();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(0), &Value::Int(0));
}

#[test]
fn aggregate_spills_with_many_groups() {
    let cfg = EngineConfig {
        buffer_pool_pages: 16,
        ..EngineConfig::default()
    };
    let fx = Fixture::with_cfg(cfg.clone());
    fx.load_r("r", 5000, 5000); // all distinct groups
    let input = fx.scan_plan("r", None);
    let out_schema = Schema::new(vec![
        Field::qualified("r", "v", DataType::Int),
        Field::new("cnt", DataType::Int),
    ])
    .unwrap();
    let mut plan = PhysPlan::new(
        PhysOp::HashAggregate {
            group: vec![1],
            aggs: vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
                name: "cnt".into(),
            }],
        },
        vec![input],
        out_schema,
    );
    plan.annot.mem_grant_bytes = 8 * cfg.page_size;
    plan.assign_ids();
    let before = fx.clock.snapshot();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    let delta = fx.clock.snapshot().since(&before);
    assert_eq!(rows.len(), 5000);
    assert!(rows.iter().all(|r| r.get(1) == &Value::Int(1)));
    assert!(delta.pages_written > 0, "should have spilled");
}

#[test]
fn index_nl_join_matches_hash_join() {
    let fx = Fixture::new();
    fx.load_r("a", 200, 20);
    fx.load_r("b", 500, 20);
    fx.catalog.create_index(&fx.storage, "b", "v").unwrap();
    let entry_b = fx.catalog.table("b").unwrap();

    let outer = fx.scan_plan("a", None);
    let schema = outer.schema.join(&entry_b.schema);
    let mut inl = PhysPlan::new(
        PhysOp::IndexNLJoin {
            outer_key: 1,
            inner: ScanSpec {
                table: "b".into(),
                file: entry_b.file,
                pages: fx.storage.file_pages(entry_b.file).unwrap() as u64,
                rows: 500,
            },
            index: entry_b.indexes["v"],
            inner_column: "v".into(),
            index_height: fx.storage.index_height(entry_b.indexes["v"]).unwrap(),
            clustering: 0.0,
            residual: None,
        },
        vec![outer],
        schema,
    );
    inl.assign_ids();
    let mut got = run_to_vec(&inl, &fx.ctx()).unwrap();

    let mut hj = hash_join_plan(
        fx.scan_plan("b", None),
        fx.scan_plan("a", None),
        "b.v",
        "a.v",
        1 << 20,
    );
    hj.assign_ids();
    let expect = run_to_vec(&hj, &fx.ctx()).unwrap();
    assert_eq!(got.len(), expect.len());
    // Sanity: INL output has matching keys.
    got.truncate(50);
    for r in &got {
        assert_eq!(r.get(1), r.get(4));
    }
}

#[test]
fn limit_stops_early() {
    let fx = Fixture::new();
    fx.load_r("r", 1000, 10);
    let input = fx.scan_plan("r", None);
    let schema = input.schema.clone();
    let mut plan = PhysPlan::new(PhysOp::Limit { n: 7 }, vec![input], schema);
    plan.assign_ids();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    assert_eq!(rows.len(), 7);
}

#[test]
fn project_computes_expressions() {
    let fx = Fixture::new();
    fx.load_r("r", 10, 10);
    let input = fx.scan_plan("r", None);
    let in_schema = input.schema.clone();
    let out_schema = Schema::new(vec![
        Field::new("double_k", DataType::Int),
        Field::new("is_small", DataType::Bool),
    ])
    .unwrap();
    let exprs = vec![
        (
            mq_expr::Expr::Arith {
                op: mq_expr::ArithOp::Mul,
                left: Box::new(col("r.k")),
                right: Box::new(lit(2i64)),
            }
            .bind(&in_schema)
            .unwrap(),
            "double_k".to_string(),
        ),
        (
            cmp(CmpOp::Lt, col("r.k"), lit(5i64))
                .bind(&in_schema)
                .unwrap(),
            "is_small".to_string(),
        ),
    ];
    let mut plan = PhysPlan::new(PhysOp::Project { exprs }, vec![input], out_schema);
    plan.assign_ids();
    let rows = run_to_vec(&plan, &fx.ctx()).unwrap();
    assert_eq!(rows[3].get(0), &Value::Int(6));
    assert_eq!(rows[3].get(1), &Value::Bool(true));
    assert_eq!(rows[7].get(1), &Value::Bool(false));
}

/// Monitor that records events.
#[derive(Default)]
struct Recorder {
    collected: RefCell<Vec<ObservedStats>>,
    phases: RefCell<Vec<NodeId>>,
    switch_at: RefCell<Option<NodeId>>,
}

impl ExecMonitor for Recorder {
    fn on_collector(&self, stats: ObservedStats) -> Result<()> {
        self.collected.borrow_mut().push(stats);
        Ok(())
    }
    fn on_phase_complete(&self, node: NodeId) -> Result<()> {
        self.phases.borrow_mut().push(node);
        if *self.switch_at.borrow() == Some(node) {
            return Err(MqError::PlanSwitch(node.0));
        }
        Ok(())
    }
}

fn collector_over(input: PhysPlan, column: &str) -> PhysPlan {
    let schema = input.schema.clone();
    PhysPlan::new(
        PhysOp::StatsCollector {
            specs: vec![CollectorSpec {
                column: column.into(),
                histogram: true,
                distinct: true,
            }],
            site: "test".into(),
        },
        vec![input],
        schema,
    )
}

#[test]
fn collector_reports_exact_cardinality_and_histogram() {
    let fx = Fixture::new();
    fx.load_r("r", 400, 8);
    let scan = fx.scan_plan("r", Some(cmp(CmpOp::Lt, col("r.v"), lit(4i64))));
    let mut plan = collector_over(scan, "r.v");
    plan.assign_ids();

    let rec = Rc::new(Recorder::default());
    let ctx = fx.ctx().with_monitor(rec.clone());
    let rows = run_to_vec(&plan, &ctx).unwrap();
    assert_eq!(rows.len(), 200, "collector must pass rows through");

    let collected = rec.collected.borrow();
    assert_eq!(collected.len(), 1);
    let st = &collected[0];
    assert_eq!(st.rows, 200);
    assert!(st.avg_row_bytes > 10.0);
    let colstats = &st.columns["r.v"];
    assert!(
        (colstats.distinct - 4.0).abs() < 2.0,
        "distinct {}",
        colstats.distinct
    );
    let h = colstats.histogram.as_ref().unwrap();
    assert!(h.sel_eq(2.0) > 0.15, "v=2 is a quarter of rows");
}

#[test]
fn phase_hook_fires_on_build_completion_before_probe() {
    let fx = Fixture::new();
    fx.load_r("a", 50, 5);
    fx.load_r("b", 50, 5);
    let build = collector_over(fx.scan_plan("a", None), "a.v");
    let mut plan = hash_join_plan(build, fx.scan_plan("b", None), "a.v", "b.v", 1 << 20);
    plan.assign_ids();
    let join_id = plan.id;

    let rec = Rc::new(Recorder::default());
    let ctx = fx.ctx().with_monitor(rec.clone());
    let rows = run_to_vec(&plan, &ctx).unwrap();
    assert_eq!(rows.len(), 50 * 10);
    // Collector (inside the build) reported before the phase hook.
    assert_eq!(rec.collected.borrow().len(), 1);
    assert_eq!(rec.phases.borrow().as_slice(), &[join_id]);
}

#[test]
fn plan_switch_unwinds_and_artifact_survives() {
    let fx = Fixture::new();
    fx.load_r("a", 80, 4);
    fx.load_r("b", 80, 4);
    let build = collector_over(fx.scan_plan("a", None), "a.v");
    let mut plan = hash_join_plan(build, fx.scan_plan("b", None), "a.v", "b.v", 1 << 20);
    plan.assign_ids();
    let join_id = plan.id;

    let rec = Rc::new(Recorder::default());
    *rec.switch_at.borrow_mut() = Some(join_id);
    let ctx = fx.ctx().with_monitor(rec.clone());
    let err = run_to_vec(&plan, &ctx).unwrap_err();
    assert_eq!(err, MqError::PlanSwitch(join_id.0));
    // The build artifact survived the unwind.
    assert!(ctx.has_artifact(join_id));

    // Resume execution of the same plan WITHOUT the switch trigger: the
    // join must reuse the artifact and not re-run its build child (the
    // collector would have reported a second time otherwise).
    *rec.switch_at.borrow_mut() = None;
    let rows = run_to_vec(&plan, &ctx).unwrap();
    assert_eq!(rows.len(), 80 * 20);
    assert_eq!(
        rec.collected.borrow().len(),
        1,
        "build child must not re-run after resume"
    );
}

#[test]
fn materialize_writes_exact_stats() {
    let fx = Fixture::new();
    fx.load_r("r", 300, 6);
    let mut plan = fx.scan_plan("r", Some(cmp(CmpOp::Lt, col("r.v"), lit(3i64))));
    plan.assign_ids();
    let ctx = fx.ctx();
    let result = sink::materialize(&plan, &ctx).unwrap();
    assert_eq!(result.stats.rows, 150);
    assert!(result.stats.pages > 0);
    let vstats = &result.stats.columns["v"];
    assert_eq!(vstats.min, Some(Value::Int(0)));
    assert_eq!(vstats.max, Some(Value::Int(2)));
    // Reading the file back yields the same rows.
    let n = fx.storage.scan_file(result.file).unwrap().count();
    assert_eq!(n, 150);
}

#[test]
fn grant_update_takes_effect_for_unstarted_operator() {
    // Two-level plan: the upper join reads its grant at build start; a
    // grant update before open() must be honoured.
    let cfg = EngineConfig::default();
    let fx = Fixture::with_cfg(cfg.clone());
    fx.load_r("a", 1500, 30);
    fx.load_r("b", 1500, 30);
    let mut plan = hash_join_plan(
        fx.scan_plan("a", None),
        fx.scan_plan("b", None),
        "a.v",
        "b.v",
        2 * cfg.page_size, // would spill
    );
    plan.assign_ids();
    let ctx = fx.ctx();
    // Raise the grant before execution: no spill should occur.
    ctx.set_grant(plan.id, 4 << 20);
    let before = fx.clock.snapshot();
    let rows = run_to_vec(&plan, &ctx).unwrap();
    let delta = fx.clock.snapshot().since(&before);
    assert_eq!(rows.len(), 1500 * 50);
    assert_eq!(delta.pages_written, 0, "raised grant must avoid spilling");
}

/// §2.3 extension: a grant raised *during* a build (triggered by a
/// provisional collector-progress report) averts the spill when it
/// lands before the table overflows.
#[test]
fn mid_build_grant_raise_averts_spill() {
    let cfg = EngineConfig {
        buffer_pool_pages: 16,
        ..EngineConfig::default()
    };
    let fx = Fixture::with_cfg(cfg.clone());
    fx.load_r("big", 6000, 6000); // ~180 KB build side
    fx.load_r("probe", 100, 10);

    /// Raises the join's grant the moment the collector under its
    /// build reports progress — i.e. genuinely mid-build.
    struct ProgressRaiser {
        grants: std::sync::Arc<parking_lot::Mutex<std::collections::HashMap<NodeId, usize>>>,
        target: NodeId,
        fired: std::cell::Cell<u32>,
    }
    impl ExecMonitor for ProgressRaiser {
        fn on_collector(&self, _stats: ObservedStats) -> Result<()> {
            Ok(())
        }
        fn on_phase_complete(&self, _node: NodeId) -> Result<()> {
            Ok(())
        }
        fn on_collector_progress(&self, _node: NodeId, _rows: u64) -> Result<()> {
            self.fired.set(self.fired.get() + 1);
            self.grants.lock().insert(self.target, 8 << 20);
            Ok(())
        }
    }

    let build_scan = fx.scan_plan("big", None);
    let collected = collector_over(build_scan, "big.v");
    let mut plan = hash_join_plan(
        collected,
        fx.scan_plan("probe", None),
        "big.v",
        "probe.v",
        48 * cfg.page_size, // overflows around row ~3000 without the raise
    );
    plan.assign_ids();
    let join_id = plan.id;

    // Baseline: without the raise, the join must spill.
    {
        let ctx = fx.ctx();
        let before = fx.clock.snapshot();
        let rows = run_to_vec(&plan, &ctx).unwrap();
        let delta = fx.clock.snapshot().since(&before);
        assert!(!rows.is_empty());
        assert!(delta.pages_written > 0, "tiny grant must spill");
    }

    // With the progress-driven raise: no spill.
    let ctx = fx.ctx();
    let raiser = std::rc::Rc::new(ProgressRaiser {
        grants: ctx.share_grants(),
        target: join_id,
        fired: std::cell::Cell::new(0),
    });
    let ctx = ctx.with_monitor(raiser.clone());
    let before = fx.clock.snapshot();
    let rows = run_to_vec(&plan, &ctx).unwrap();
    let delta = fx.clock.snapshot().since(&before);
    assert!(!rows.is_empty());
    assert!(raiser.fired.get() >= 1, "progress hook must fire mid-build");
    assert_eq!(
        delta.pages_written, 0,
        "mid-build raise must avert the spill"
    );
}

/// A plan switch at a *sort* phase boundary: the sorted runs survive
/// the unwind and the resumed sort skips run generation entirely.
#[test]
fn sort_artifact_survives_plan_switch() {
    let cfg = EngineConfig {
        buffer_pool_pages: 16,
        ..EngineConfig::default()
    };
    let fx = Fixture::with_cfg(cfg.clone());
    fx.load_r("r", 2000, 13);

    let input = collector_over(fx.scan_plan("r", None), "r.v");
    let schema = input.schema.clone();
    let mut plan = PhysPlan::new(
        PhysOp::Sort {
            keys: vec![(0, true)],
        },
        vec![input],
        schema,
    );
    plan.annot.mem_grant_bytes = 4 * cfg.page_size; // external runs
    plan.assign_ids();
    let sort_id = plan.id;

    let rec = Rc::new(Recorder::default());
    *rec.switch_at.borrow_mut() = Some(sort_id);
    let ctx = fx.ctx().with_monitor(rec.clone());
    let err = run_to_vec(&plan, &ctx).unwrap_err();
    assert_eq!(err, MqError::PlanSwitch(sort_id.0));
    assert!(ctx.has_artifact(sort_id), "sorted runs must survive");

    // Resume: the collector under the sort must NOT re-run (its input
    // was already consumed into the runs).
    *rec.switch_at.borrow_mut() = None;
    let reports_before = rec.collected.borrow().len();
    let rows = run_to_vec(&plan, &ctx).unwrap();
    assert_eq!(rows.len(), 2000);
    assert_eq!(
        rec.collected.borrow().len(),
        reports_before,
        "run generation must not repeat"
    );
    // And the output is sorted.
    for w in rows.windows(2) {
        assert!(w[0].get(0) <= w[1].get(0));
    }
}

/// Aggregate output artifact survives a switch the same way.
#[test]
fn aggregate_artifact_survives_plan_switch() {
    let fx = Fixture::new();
    fx.load_r("r", 500, 7);
    let input = collector_over(fx.scan_plan("r", None), "r.v");
    let out_schema = Schema::new(vec![
        Field::qualified("r", "v", DataType::Int),
        Field::new("n", DataType::Int),
    ])
    .unwrap();
    let mut plan = PhysPlan::new(
        PhysOp::HashAggregate {
            group: vec![1],
            aggs: vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
                name: "n".into(),
            }],
        },
        vec![input],
        out_schema,
    );
    plan.assign_ids();
    let agg_id = plan.id;

    let rec = Rc::new(Recorder::default());
    *rec.switch_at.borrow_mut() = Some(agg_id);
    let ctx = fx.ctx().with_monitor(rec.clone());
    assert_eq!(
        run_to_vec(&plan, &ctx).unwrap_err(),
        MqError::PlanSwitch(agg_id.0)
    );
    assert!(ctx.has_artifact(agg_id));

    *rec.switch_at.borrow_mut() = None;
    let rows = run_to_vec(&plan, &ctx).unwrap();
    assert_eq!(rows.len(), 7);
    assert_eq!(rec.collected.borrow().len(), 1, "input must not re-run");
}

/// A collector whose consumer stops early (LIMIT) still reports its
/// partial observations at close.
#[test]
fn collector_reports_partial_stats_on_early_stop() {
    let fx = Fixture::new();
    fx.load_r("r", 500, 5);
    let collected = collector_over(fx.scan_plan("r", None), "r.v");
    let schema = collected.schema.clone();
    let mut plan = PhysPlan::new(PhysOp::Limit { n: 10 }, vec![collected], schema);
    plan.assign_ids();

    let rec = Rc::new(Recorder::default());
    let ctx = fx.ctx().with_monitor(rec.clone());
    let rows = run_to_vec(&plan, &ctx).unwrap();
    assert_eq!(rows.len(), 10);
    let collected = rec.collected.borrow();
    assert_eq!(collected.len(), 1, "close must finalize");
    // Partial: at least the 10 limited rows were seen (the scan may
    // have been pulled slightly ahead).
    assert!(collected[0].rows >= 10);
    assert!(collected[0].rows < 500);
}
