//! The statistics-collector operator (§2.2, §3.1).
//!
//! "The statistics-collector operator was added as a regular streamed
//! operator (similar to the filter operator). It took a stream of
//! tuples as its input and produced exactly the same stream of tuples
//! as its output." Collection is pure CPU: cardinality and average
//! tuple size always; reservoir-sampled histograms and FM distinct
//! sketches for the columns the SCIA selected. When the input is
//! exhausted the collector finalizes and reports to the monitor — the
//! paper's "message to the dispatcher containing the statistics".

use std::collections::HashMap;

use mq_common::{Result, Row, Schema};
use mq_plan::{CollectorSpec, NodeId};
use mq_stats::{ColumnAccumulator, HistogramKind, ObservedColumn};

use crate::context::ExecContext;
use crate::Operator;

/// Statistics observed at one collection site.
#[derive(Debug, Clone)]
pub struct ObservedStats {
    /// The collector's plan-node id.
    pub node: NodeId,
    /// Exact row count.
    pub rows: u64,
    /// Exact average encoded row width (bytes).
    pub avg_row_bytes: f64,
    /// Per-column observations, keyed by the spec's column name.
    pub columns: HashMap<String, ObservedColumn>,
    /// Whether the collector drained its input to exhaustion. `false`
    /// when the consumer stopped early (e.g. a Limit above closed the
    /// pipeline), in which case `rows` is only a lower bound. Statistics
    /// feedback must ignore incomplete observations.
    pub complete: bool,
}

/// The raw, still-mergeable state of one collector run — what a
/// capture-mode finalize deposits into
/// [`crate::ExecContext::collector_capture`]. The partitioned driver
/// merges the parts of every bucket run of the same site
/// ([`merge_parts`]) and finishes them into one [`ObservedStats`].
#[derive(Debug, Clone)]
pub struct CollectorParts {
    /// The collector's plan-node id.
    pub node: NodeId,
    /// The specs, parallel to `accs`.
    pub specs: Vec<CollectorSpec>,
    /// One accumulator per spec.
    pub accs: Vec<ColumnAccumulator>,
    /// Rows observed by this run.
    pub rows: u64,
    /// Encoded bytes observed by this run.
    pub bytes: u64,
    /// Whether this run drained its input.
    pub complete: bool,
}

impl CollectorParts {
    /// Fold another run of the same site into this one. The merged
    /// parts describe the concatenation of both streams; `complete`
    /// only if every constituent run was.
    pub fn merge(&mut self, other: &CollectorParts) {
        debug_assert_eq!(self.node, other.node);
        debug_assert_eq!(self.accs.len(), other.accs.len());
        for (a, b) in self.accs.iter_mut().zip(&other.accs) {
            a.merge(b);
        }
        self.rows += other.rows;
        self.bytes += other.bytes;
        self.complete &= other.complete;
    }

    /// Finish the (possibly merged) parts into the [`ObservedStats`]
    /// the monitor consumes.
    pub fn finish(&self, cfg: &mq_common::EngineConfig) -> ObservedStats {
        finish_observed(
            self.node,
            &self.specs,
            &self.accs,
            self.rows,
            self.bytes,
            self.complete,
            cfg,
        )
    }
}

/// Build an [`ObservedStats`] from raw accumulators — the single
/// finalize recipe shared by the in-stream collector and the
/// partitioned driver's barrier merge.
pub fn finish_observed(
    node: NodeId,
    specs: &[CollectorSpec],
    accs: &[ColumnAccumulator],
    rows: u64,
    bytes: u64,
    complete: bool,
    cfg: &mq_common::EngineConfig,
) -> ObservedStats {
    let mut columns = HashMap::new();
    for (spec, acc) in specs.iter().zip(accs) {
        let mut obs = acc.finish(HistogramKind::MaxDiff, cfg.histogram_buckets);
        if !spec.histogram {
            obs.histogram = None;
        }
        // `distinct` stays populated either way: once the sketch
        // exists the estimate is free, and extra information never
        // hurts the controller.
        columns.insert(spec.column.clone(), obs);
    }
    ObservedStats {
        node,
        rows,
        avg_row_bytes: if rows > 0 {
            bytes as f64 / rows as f64
        } else {
            0.0
        },
        columns,
        complete,
    }
}

/// Pass-through operator that observes the stream.
pub struct StatsCollectorExec {
    node: NodeId,
    input: Box<dyn Operator>,
    specs: Vec<(CollectorSpec, usize)>,
    accs: Vec<ColumnAccumulator>,
    rows: u64,
    bytes: u64,
    reported: bool,
    bound: bool,
    schema: Schema,
    raw_specs: Vec<CollectorSpec>,
}

impl StatsCollectorExec {
    /// Create a collector for the given specs over the input schema.
    pub fn new(
        node: NodeId,
        input: Box<dyn Operator>,
        specs: Vec<CollectorSpec>,
        schema: Schema,
    ) -> StatsCollectorExec {
        StatsCollectorExec {
            node,
            input,
            specs: Vec::new(),
            accs: Vec::new(),
            rows: 0,
            bytes: 0,
            reported: false,
            bound: false,
            schema,
            raw_specs: specs,
        }
    }

    fn bind(&mut self, ctx: &ExecContext) -> Result<()> {
        if self.bound {
            return Ok(());
        }
        for (i, spec) in self.raw_specs.iter().enumerate() {
            let idx = self.schema.index_of(&spec.column)?;
            self.specs.push((spec.clone(), idx));
            self.accs.push(ColumnAccumulator::new(
                ctx.cfg.reservoir_size,
                0x5EED ^ (self.node.0 as u64) << 8 ^ i as u64,
            ));
        }
        self.bound = true;
        Ok(())
    }

    fn finalize(&mut self, ctx: &ExecContext, complete: bool) -> Result<()> {
        if self.reported {
            return Ok(());
        }
        self.reported = true;
        if let Some(capture) = &ctx.collector_capture {
            // Capture mode: deposit raw, still-mergeable state; the
            // partitioned driver merges bucket runs and reports once.
            capture.borrow_mut().push(CollectorParts {
                node: self.node,
                specs: self.specs.iter().map(|(s, _)| s.clone()).collect(),
                accs: self.accs.clone(),
                rows: self.rows,
                bytes: self.bytes,
                complete,
            });
            return Ok(());
        }
        let stats = finish_observed(
            self.node,
            &self.raw_specs,
            &self.accs,
            self.rows,
            self.bytes,
            complete,
            &ctx.cfg,
        );
        ctx.notify_collector(stats)
    }
}

impl Operator for StatsCollectorExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.bind(ctx)?;
        self.input.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        match self.input.next(ctx)? {
            Some(row) => {
                self.rows += 1;
                self.bytes += row.encoded_len() as u64;
                ctx.clock.add_cpu(1);
                for ((_, idx), acc) in self.specs.iter().zip(&mut self.accs) {
                    let ops = acc.observe(row.get(*idx));
                    ctx.clock.add_cpu(ops);
                }
                // Provisional progress: the observed count is a lower
                // bound on the final cardinality — cheap, and it lets
                // the controller react *before* a downstream build
                // overflows (§2.3 extension).
                if self.rows.is_multiple_of(1024) {
                    ctx.notify_progress(self.node, self.rows)?;
                }
                Ok(Some(row))
            }
            None => {
                self.finalize(ctx, true)?;
                Ok(None)
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        // Report even if the consumer stopped early (e.g. Limit):
        // partial statistics are still observations — but flagged
        // incomplete so feedback ignores them.
        self.finalize(ctx, false)?;
        self.input.close(ctx)
    }
}
