//! Hash aggregation with grant-bounded group tables.
//!
//! When the group table outgrows the memory grant, rows belonging to
//! *new* groups are spilled to hash partitions (existing groups keep
//! updating in place, so memory stays bounded); each spilled partition
//! is then aggregated separately. This is the classic hybrid
//! aggregation trade-off the cost model prices as one extra
//! write+read pass.

use std::collections::HashMap;

use mq_common::{FileId, MqError, Result, Row, Value};
use mq_memory::GROUP_OVERHEAD;
use mq_plan::{AggExpr, AggFunc, NodeId};

use crate::context::{hash_key, Artifact, ExecContext};
use crate::Operator;

/// Running state of one aggregate function.
#[derive(Debug, Clone)]
pub enum AggState {
    /// COUNT (rows or non-null args).
    Count(i64),
    /// SUM with float promotion tracking.
    Sum {
        /// Accumulated total.
        total: f64,
        /// Whether any input was a float.
        any_float: bool,
        /// Whether any non-null input arrived.
        seen: bool,
    },
    /// AVG.
    Avg {
        /// Sum so far.
        sum: f64,
        /// Non-null count so far.
        n: i64,
    },
    /// MIN.
    Min(Option<Value>),
    /// MAX.
    Max(Option<Value>),
}

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                any_float: false,
                seen: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Fold one value (`None` = COUNT(*) row marker).
    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(c) => {
                if v.is_none_or(|v| !v.is_null()) {
                    *c += 1;
                }
            }
            AggState::Sum {
                total,
                any_float,
                seen,
            } => {
                if let Some(v) = v {
                    match v {
                        Value::Int(i) => {
                            *total += *i as f64;
                            *seen = true;
                        }
                        Value::Float(f) => {
                            *total += f;
                            *any_float = true;
                            *seen = true;
                        }
                        Value::Date(d) => {
                            *total += *d as f64;
                            *seen = true;
                        }
                        _ => {}
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = v {
                    if let Some(x) = v.as_f64() {
                        if !v.is_null() {
                            *sum += x;
                            *n += 1;
                        }
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
    }

    /// Produce the final value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c),
            AggState::Sum {
                total,
                any_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if *any_float {
                    Value::Float(*total)
                } else {
                    Value::Int(*total as i64)
                }
            }
            AggState::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            AggState::Min(v) => v.clone().unwrap_or(Value::Null),
            AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

/// Hash-aggregate operator.
pub struct HashAggregateExec {
    node: NodeId,
    input: Box<dyn Operator>,
    group: Vec<usize>,
    aggs: Vec<AggExpr>,
    grant_fallback: usize,
    output: Vec<Row>,
    pos: usize,
    opened: bool,
}

impl HashAggregateExec {
    /// Create a hash aggregate.
    pub fn new(
        node: NodeId,
        input: Box<dyn Operator>,
        group: Vec<usize>,
        aggs: Vec<AggExpr>,
        grant_fallback: usize,
    ) -> HashAggregateExec {
        HashAggregateExec {
            node,
            input,
            group,
            aggs,
            grant_fallback,
            output: Vec::new(),
            pos: 0,
            opened: false,
        }
    }

    fn group_key(&self, row: &Row) -> Result<Vec<Value>> {
        self.group
            .iter()
            .map(|&i| row.try_get(i).cloned())
            .collect()
    }

    fn fold(&self, states: &mut [AggState], row: &Row) -> Result<()> {
        for (st, agg) in states.iter_mut().zip(&self.aggs) {
            match &agg.arg {
                Some(e) => st.update(Some(&e.eval(row)?)),
                None => st.update(None),
            }
        }
        Ok(())
    }

    fn aggregate_stream(
        &mut self,
        ctx: &ExecContext,
        grant: usize,
        out: &mut HashMap<Vec<Value>, Vec<AggState>>,
    ) -> Result<Vec<FileId>> {
        // Fan-out capped by both the grant and the pool (see
        // hash_join.rs: partition tails must not thrash the pool).
        let nparts = ((grant / ctx.cfg.page_size).saturating_sub(1))
            .min(ctx.cfg.buffer_pool_pages / 4)
            .clamp(2, 16);
        let mut parts: Option<Vec<FileId>> = None;
        let mut bytes = 0usize;
        while let Some(row) = self.input.next(ctx)? {
            ctx.clock.add_cpu(2 + self.aggs.len() as u64);
            let key = self.group_key(&row)?;
            if let Some(states) = out.get_mut(&key) {
                // Existing group: in-place update, no growth.
                for (st, agg) in states.iter_mut().zip(&self.aggs) {
                    match &agg.arg {
                        Some(e) => st.update(Some(&e.eval(&row)?)),
                        None => st.update(None),
                    }
                }
                continue;
            }
            // The table stores only the group key and the aggregate
            // states — not the input row — so account exactly that
            // (matching the memory manager's demand model).
            let entry_bytes = key.iter().map(mq_common::Value::encoded_len).sum::<usize>()
                + GROUP_OVERHEAD as usize
                + 16 * self.aggs.len();
            if bytes + entry_bytes > grant && !self.group.is_empty() {
                if parts.is_none() {
                    if std::env::var("MQ_SPILL").is_ok() {
                        eprintln!("SPILL agg {:?} grant={}", self.node, grant);
                    }
                    mq_obs::emit(|| mq_obs::ObsEvent::Spill {
                        node: self.node.0 as u64,
                        operator: "HashAggregate",
                        bytes: bytes as u64,
                    });
                }
                // New group but no memory: spill the raw row.
                let files = parts
                    .get_or_insert_with(|| (0..nparts).map(|_| ctx.create_temp_file()).collect());
                let p = (hash_key(&key, 3) % nparts as u64) as usize;
                ctx.storage.append_row(files[p], &row)?;
                ctx.clock.add_cpu(1);
                continue;
            }
            bytes += entry_bytes;
            let mut states: Vec<AggState> =
                self.aggs.iter().map(|a| AggState::new(a.func)).collect();
            self.fold(&mut states, &row)?;
            out.insert(key, states);
        }
        Ok(parts.unwrap_or_default())
    }

    fn table_to_rows(&self, table: HashMap<Vec<Value>, Vec<AggState>>, out: &mut Vec<Row>) {
        for (key, states) in table {
            let mut vals = key;
            vals.extend(states.iter().map(AggState::finalize));
            out.push(Row::new(vals));
        }
    }
}

impl Operator for HashAggregateExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.opened = true;
        if let Some(Artifact::AggOutput(rows)) = ctx.take_artifact(self.node) {
            self.output = rows;
            self.pos = 0;
            return Ok(());
        }
        // Grant read after opening the input (see hash_join.rs): lower
        // segments complete inside `open`, and their phase hooks may
        // re-allocate this operator's memory.
        self.input.open(ctx)?;
        let grant = ctx.grant_for(self.node, self.grant_fallback);
        let mut table: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();

        // Scalar aggregate (no GROUP BY) must emit one row even on
        // empty input.
        if self.group.is_empty() {
            table.insert(
                Vec::new(),
                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
            );
        }

        let parts = self.aggregate_stream(ctx, grant, &mut table)?;
        self.input.close(ctx)?;

        let mut output = Vec::new();
        self.table_to_rows(table, &mut output);

        // Aggregate each spilled partition (reading it back = the
        // second pass the cost model charges).
        for part in parts {
            let mut sub: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            for item in ctx.storage.scan_file(part)? {
                let (_, row) = item?;
                ctx.clock.add_cpu(2 + self.aggs.len() as u64);
                let key = self.group_key(&row)?;
                let states = sub
                    .entry(key)
                    .or_insert_with(|| self.aggs.iter().map(|a| AggState::new(a.func)).collect());
                for (st, agg) in states.iter_mut().zip(&self.aggs) {
                    match &agg.arg {
                        Some(e) => st.update(Some(&e.eval(&row)?)),
                        None => st.update(None),
                    }
                }
            }
            self.table_to_rows(sub, &mut output);
            ctx.free_temp_file(part);
        }

        // Deterministic output order (HashMap order is arbitrary).
        output.sort_by(|a, b| {
            let ka: Vec<&Value> = self
                .group
                .iter()
                .enumerate()
                .map(|(i, _)| a.get(i))
                .collect();
            let kb: Vec<&Value> = self
                .group
                .iter()
                .enumerate()
                .map(|(i, _)| b.get(i))
                .collect();
            ka.cmp(&kb)
        });

        ctx.put_artifact(self.node, Artifact::AggOutput(output.clone()));
        self.output = output;
        self.pos = 0;
        ctx.notify_phase(self.node)?;
        ctx.take_artifact(self.node);
        Ok(())
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        if !self.opened {
            return Err(MqError::Execution("aggregate not opened".into()));
        }
        if self.pos < self.output.len() {
            let r = self.output[self.pos].clone();
            self.pos += 1;
            ctx.clock.add_cpu(1);
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.output.clear();
        Ok(())
    }
}
