//! # mq-exec — the execution engine
//!
//! Pull-based (Volcano-style) physical operators with the three
//! properties the paper's runtime machinery needs:
//!
//! 1. **Honest cost accounting** — every page touch goes through the
//!    buffer pool (spills, materialization, index probes) and every
//!    tuple-level operation charges CPU on the shared clock;
//! 2. **Phase hooks** — blocking operators (hash-join build, sort run
//!    generation, aggregate input) notify an [`ExecMonitor`] when a
//!    phase completes. This is the paper's "statistics collector sends
//!    a message to the dispatcher" moment (§3.1): collectors report in
//!    stream, and the Dynamic Re-Optimization controller decides
//!    whether to re-allocate memory or switch plans *between phases*;
//! 3. **Externalized operator state** — hash tables, sorted runs and
//!    aggregate outputs live in the shared [`Artifact`] store keyed by
//!    plan-node id, not inside operator structs. When the controller
//!    unwinds execution with [`mq_common::MqError::PlanSwitch`], the
//!    work already done survives; re-instantiated operators pick their
//!    artifacts back up and continue. This is how "the filter and the
//!    build phase of the hash-join are left as they are" (§2.4).

pub mod aggregate;
pub mod collector;
pub mod context;
pub mod filter;
pub mod hash_join;
pub mod inl_join;
pub mod scan;
pub mod sink;
pub mod sort;

use std::collections::HashMap;

use mq_common::{MqError, Result, Row};
use mq_plan::{NodeId, PhysOp, PhysPlan};

pub use collector::{finish_observed, CollectorParts, ObservedStats};
pub use context::{Artifact, ExecContext, ExecMonitor, HashBuild, OpActuals};
pub use sink::{materialize, row_fingerprint, rows_fingerprint, MaterializedResult};

/// A pull-based physical operator.
pub trait Operator {
    /// Prepare for execution; blocking operators consume their build
    /// phase here (firing [`ExecMonitor::on_phase_complete`]).
    fn open(&mut self, ctx: &ExecContext) -> Result<()>;
    /// Produce the next output row, or `None` when exhausted.
    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>>;
    /// Release resources (temp files, artifacts).
    fn close(&mut self, ctx: &ExecContext) -> Result<()>;
}

/// Instantiate the operator tree for an annotated physical plan.
/// Every operator is wrapped in a [`Profiled`] shim that records its
/// observed row count (and, under an active event sink, inclusive
/// cpu/io deltas) into [`ExecContext::actuals`] — the "actual" side of
/// EXPLAIN ANALYZE.
pub fn build_executor(plan: &PhysPlan) -> Result<Box<dyn Operator>> {
    build_executor_with(plan, &mut HashMap::new())
}

/// Like [`build_executor`], but any node whose id appears in
/// `overrides` is replaced by the supplied operator (wrapped in the
/// same [`Profiled`] shim, so actuals are still recorded against that
/// node). The partitioned driver uses this to substitute pre-routed
/// bucket inputs ([`RowsExec`]) at exchange-child positions while the
/// rest of the segment builds normally.
pub fn build_executor_with(
    plan: &PhysPlan,
    overrides: &mut HashMap<NodeId, Box<dyn Operator>>,
) -> Result<Box<dyn Operator>> {
    if let Some(op) = overrides.remove(&plan.id) {
        return Ok(Box::new(Profiled::new(plan.id, op)));
    }
    Ok(Box::new(Profiled::new(
        plan.id,
        build_inner(plan, overrides)?,
    )))
}

fn build_inner(
    plan: &PhysPlan,
    overrides: &mut HashMap<NodeId, Box<dyn Operator>>,
) -> Result<Box<dyn Operator>> {
    let children: Vec<Box<dyn Operator>> = plan
        .children
        .iter()
        .map(|c| build_executor_with(c, overrides))
        .collect::<Result<_>>()?;
    let mut children = children;
    let node = plan.id;
    Ok(match &plan.op {
        PhysOp::SeqScan { spec, filter } => {
            Box::new(scan::SeqScanExec::new(node, spec.clone(), filter.clone()))
        }
        PhysOp::IndexScan {
            spec,
            index,
            lo,
            hi,
            residual,
            ..
        } => Box::new(scan::IndexScanExec::new(
            node,
            spec.clone(),
            *index,
            lo.clone(),
            hi.clone(),
            residual.clone(),
        )),
        PhysOp::Filter { predicate } => Box::new(filter::FilterExec::new(
            node,
            take_one(&mut children)?,
            predicate.clone(),
        )),
        PhysOp::Project { exprs } => Box::new(filter::ProjectExec::new(
            node,
            take_one(&mut children)?,
            exprs.clone(),
        )),
        PhysOp::Limit { n } => Box::new(filter::LimitExec::new(node, take_one(&mut children)?, *n)),
        PhysOp::HashJoin {
            build_keys,
            probe_keys,
        } => {
            let (build, probe) = take_two(&mut children)?;
            Box::new(hash_join::HashJoinExec::new(
                node,
                build,
                probe,
                build_keys.clone(),
                probe_keys.clone(),
                plan.annot.mem_grant_bytes,
            ))
        }
        PhysOp::IndexNLJoin {
            outer_key,
            inner,
            index,
            residual,
            index_height,
            ..
        } => Box::new(inl_join::IndexNLJoinExec::new(
            node,
            take_one(&mut children)?,
            *outer_key,
            inner.clone(),
            *index,
            *index_height,
            residual.clone(),
        )),
        PhysOp::Sort { keys } => Box::new(sort::SortExec::new(
            node,
            take_one(&mut children)?,
            keys.clone(),
            plan.annot.mem_grant_bytes,
        )),
        PhysOp::HashAggregate { group, aggs } => Box::new(aggregate::HashAggregateExec::new(
            node,
            take_one(&mut children)?,
            group.clone(),
            aggs.clone(),
            plan.annot.mem_grant_bytes,
        )),
        PhysOp::StatsCollector { specs, .. } => Box::new(collector::StatsCollectorExec::new(
            node,
            take_one(&mut children)?,
            specs.clone(),
            plan.schema.clone(),
        )),
        // In serial execution an exchange is the identity: rows flow
        // straight through. The partitioned driver (mq-par) never
        // builds an executor *at* an exchange — it evaluates the child
        // per bucket and routes rows itself — so this arm only runs
        // when a parallelized plan is executed by the serial engine.
        PhysOp::Exchange { .. } => take_one(&mut children)?,
        // A cached materialization reads back like any base table: the
        // cache table is catalog-registered with an exact-statistics
        // heap file, so a plain unfiltered sequential scan suffices.
        PhysOp::CachedScan { spec, .. } => {
            Box::new(scan::SeqScanExec::new(node, spec.clone(), None))
        }
    })
}

/// An operator that replays a pre-materialized row buffer. The
/// partitioned driver substitutes one of these (via
/// [`build_executor_with`]) at each exchange-child position inside a
/// segment, feeding the bucket's already-routed input rows. It charges
/// nothing: scan/route costs were booked when the rows were produced.
pub struct RowsExec {
    rows: std::vec::IntoIter<Row>,
}

impl RowsExec {
    /// Wrap a buffer of rows.
    pub fn new(rows: Vec<Row>) -> RowsExec {
        RowsExec {
            rows: rows.into_iter(),
        }
    }
}

impl Operator for RowsExec {
    fn open(&mut self, _ctx: &ExecContext) -> Result<()> {
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        Ok(())
    }
}

/// The profiling shim around every operator. Row counting is one
/// integer increment per row; the clock-snapshot deltas (inclusive of
/// the operator's subtree) are taken only in `profile_detail` mode.
/// Totals flush to the context on exhaustion *and* on close — a
/// `PlanSwitch` unwinds without either, which is correct: the next
/// attempt resets the actuals and re-runs from artifacts.
struct Profiled {
    node: mq_plan::NodeId,
    inner: Box<dyn Operator>,
    acc: context::OpActuals,
}

impl Profiled {
    fn new(node: mq_plan::NodeId, inner: Box<dyn Operator>) -> Profiled {
        Profiled {
            node,
            inner,
            acc: context::OpActuals::default(),
        }
    }

    fn flush(&self, ctx: &ExecContext) {
        ctx.record_actuals(self.node, self.acc);
    }

    fn measured<T>(
        &mut self,
        ctx: &ExecContext,
        f: impl FnOnce(&mut Box<dyn Operator>, &ExecContext) -> Result<T>,
    ) -> Result<T> {
        if !ctx.profile_detail {
            return f(&mut self.inner, ctx);
        }
        let before = ctx.clock.snapshot();
        let out = f(&mut self.inner, ctx);
        let delta = ctx.clock.snapshot().since(&before);
        self.acc.cpu_ops += delta.cpu_ops;
        self.acc.io_pages += delta.io_total();
        out
    }
}

impl Operator for Profiled {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.measured(ctx, |op, ctx| op.open(ctx))
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        let out = self.measured(ctx, |op, ctx| op.next(ctx))?;
        match out {
            Some(row) => {
                self.acc.rows += 1;
                Ok(Some(row))
            }
            None => {
                self.flush(ctx);
                Ok(None)
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.flush(ctx);
        self.inner.close(ctx)
    }
}

fn take_one(children: &mut Vec<Box<dyn Operator>>) -> Result<Box<dyn Operator>> {
    if children.len() != 1 {
        return Err(MqError::Internal(format!(
            "operator expected 1 child, got {}",
            children.len()
        )));
    }
    children
        .pop()
        .ok_or_else(|| MqError::Internal("operator child vanished after arity check".to_string()))
}

fn take_two(
    children: &mut Vec<Box<dyn Operator>>,
) -> Result<(Box<dyn Operator>, Box<dyn Operator>)> {
    if children.len() != 2 {
        return Err(MqError::Internal(format!(
            "operator expected 2 children, got {}",
            children.len()
        )));
    }
    let (Some(second), Some(first)) = (children.pop(), children.pop()) else {
        return Err(MqError::Internal(
            "operator children vanished after arity check".to_string(),
        ));
    };
    Ok((first, second))
}

/// Open, drain and close an executor, collecting all rows.
///
/// Cancellation is honoured at start and every `INTERRUPT_STRIDE` rows
/// of the root drain, so even phase-less plans (pure scan pipelines,
/// which never hit a segment boundary) stay cancellable.
pub fn run_to_vec(plan: &PhysPlan, ctx: &ExecContext) -> Result<Vec<Row>> {
    const INTERRUPT_STRIDE: usize = 1024;
    ctx.check_interrupt()?;
    let mut exec = build_executor(plan)?;
    let result = (|| {
        exec.open(ctx)?;
        let mut out = Vec::new();
        while let Some(row) = exec.next(ctx)? {
            out.push(row);
            if out.len() % INTERRUPT_STRIDE == 0 {
                ctx.check_interrupt()?;
            }
        }
        Ok(out)
    })();
    // Close on success *and* genuine errors: operators release their
    // spill files in `close`, so dropping a failed executor unclosed
    // would leave reclamation to the context's temp-file registry
    // alone. A `PlanSwitch` is controlled unwinding, not failure — the
    // externalized artifacts own the operator state (including spilled
    // runs/partitions) and the resumed plan consumes them, so the
    // executor must NOT be closed then.
    match result {
        Ok(out) => {
            exec.close(ctx)?;
            Ok(out)
        }
        Err(e @ MqError::PlanSwitch(_)) => Err(e),
        Err(e) => {
            let _ = exec.close(ctx);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests;
