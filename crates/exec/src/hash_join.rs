//! Hybrid hash join with grant-bounded memory and partition spilling.
//!
//! The build side is consumed during `open()`. If it fits the memory
//! grant, probing streams against an in-memory table (one pass, no
//! extra I/O). If not, both inputs are partitioned to temp files and
//! joined partition-by-partition — the "two passes" of Figure 3.
//! Oversized partitions fall back to chunked block processing: the
//! build partition is loaded a memory-sized chunk at a time and the
//! probe partition re-scanned per chunk (still correct, honestly
//! costed).
//!
//! The finished build is externalized as an [`Artifact::HashBuild`]
//! keyed by the plan-node id *before* the phase hook fires, so a
//! controller-initiated plan switch (unwinding with `PlanSwitch`)
//! never loses completed build work (§2.4, Figure 5: "the filter and
//! the build phase of the hash-join are left as they are").

use std::collections::HashMap;

use mq_common::{FileId, MqError, Result, Row, Value};
use mq_memory::HASH_OVERHEAD;
use mq_plan::NodeId;

use crate::context::{hash_key, Artifact, ExecContext, HashBuild};
use crate::Operator;

/// Maximum spill partitions per level.
const MAX_PARTS: usize = 16;

/// Hybrid hash join operator.
pub struct HashJoinExec {
    node: NodeId,
    build: Box<dyn Operator>,
    probe: Box<dyn Operator>,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    grant_fallback: usize,
    phase: Phase,
    pending: Vec<Row>,
    build_skipped: bool,
}

enum Phase {
    Unopened,
    /// Probing an in-memory table.
    InMem {
        table: HashMap<Vec<Value>, Vec<Row>>,
    },
    /// Spilled: probe side not yet partitioned.
    NeedProbePartition {
        build_parts: Vec<FileId>,
    },
    /// Joining partitions pairwise.
    Parts {
        build_parts: Vec<FileId>,
        probe_parts: Vec<FileId>,
        current: usize,
        /// Byte offset (row index) into the current build partition for
        /// chunked processing.
        chunk_start: u64,
    },
    Done,
}

impl HashJoinExec {
    /// Create a hash join; `children[0]` of the plan is the build side.
    pub fn new(
        node: NodeId,
        build: Box<dyn Operator>,
        probe: Box<dyn Operator>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        grant_fallback: usize,
    ) -> HashJoinExec {
        HashJoinExec {
            node,
            build,
            probe,
            build_keys,
            probe_keys,
            grant_fallback,
            phase: Phase::Unopened,
            pending: Vec::new(),
            build_skipped: false,
        }
    }

    fn key_of(row: &Row, keys: &[usize]) -> Option<Vec<Value>> {
        let mut out = Vec::with_capacity(keys.len());
        for &k in keys {
            let v = row.get(k);
            if v.is_null() {
                return None; // NULL never joins
            }
            out.push(v.clone());
        }
        Some(out)
    }

    /// Run the build phase (unless an artifact already exists).
    fn run_build(&mut self, ctx: &ExecContext) -> Result<()> {
        if let Some(Artifact::HashBuild(hb)) = ctx.take_artifact(self.node) {
            // Resuming after a plan switch: the build is already done.
            self.build_skipped = true;
            self.install_build(ctx, hb)?;
            return Ok(());
        }
        // Open the build child FIRST: lower segments run to completion
        // inside this call, and the controller may re-allocate memory
        // at their phase boundaries. Reading the grant only afterwards
        // mirrors Paradise, where a segment's memory is committed when
        // the segment starts — this is what makes §2.3's mid-query
        // re-allocation able to reach this operator.
        self.build.open(ctx)?;
        let mut grant = ctx.grant_for(self.node, self.grant_fallback);
        let mut usable = (grant as f64 / HASH_OVERHEAD) as usize;
        let mut table: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
        let mut bytes = 0usize;
        let mut rows = 0u64;
        let mut parts: Option<Vec<FileId>> = None;
        while let Some(row) = self.build.next(ctx)? {
            ctx.clock.add_cpu(3);
            rows += 1;
            // §2.3 extension ("if the operators … can respond to
            // changes in memory allocation in mid-execution, our
            // algorithm can be extended"): until the first overflow,
            // periodically re-read the grant — a mid-build
            // re-allocation can avert the spill entirely.
            if parts.is_none() && rows.is_multiple_of(256) {
                let g = ctx.grant_for(self.node, self.grant_fallback);
                if g > grant {
                    grant = g;
                    usable = (grant as f64 / HASH_OVERHEAD) as usize;
                }
            }
            let key = match Self::key_of(&row, &self.build_keys) {
                Some(k) => k,
                None => continue,
            };
            match &mut parts {
                None => {
                    bytes += row.encoded_len() + 16;
                    table.entry(key).or_default().push(row);
                    if bytes > usable {
                        if std::env::var("MQ_SPILL").is_ok() {
                            eprintln!(
                                "SPILL hashjoin {:?} grant={} bytes={}",
                                self.node, grant, bytes
                            );
                        }
                        mq_obs::emit(|| mq_obs::ObsEvent::Spill {
                            node: self.node.0 as u64,
                            operator: "HashJoin",
                            bytes: bytes as u64,
                        });
                        // Overflow: switch to spilling. Flush the table.
                        let nparts =
                            partition_count(grant, ctx.cfg.page_size, ctx.cfg.buffer_pool_pages);
                        let files: Vec<FileId> =
                            (0..nparts).map(|_| ctx.create_temp_file()).collect();
                        for (k, rows) in table.drain() {
                            let p = (hash_key(&k, 1) % nparts as u64) as usize;
                            for r in rows {
                                ctx.storage.append_row(files[p], &r)?;
                            }
                        }
                        parts = Some(files);
                    }
                }
                Some(files) => {
                    ctx.clock.add_cpu(1);
                    let p = (hash_key(&key, 1) % files.len() as u64) as usize;
                    ctx.storage.append_row(files[p], &row)?;
                }
            }
        }
        self.build.close(ctx)?;
        let hb = HashBuild {
            in_mem: if parts.is_none() { Some(table) } else { None },
            parts,
            rows,
        };
        // Externalize *before* the hook so a PlanSwitch keeps the work.
        ctx.put_artifact(self.node, Artifact::HashBuild(dup_metadata(&hb)));
        self.install_build_inner(hb)?;
        ctx.notify_phase(self.node)?;
        // The hook let us continue: reclaim the artifact (we own it).
        ctx.take_artifact(self.node);
        Ok(())
    }

    fn install_build(&mut self, _ctx: &ExecContext, hb: HashBuild) -> Result<()> {
        self.install_build_inner(hb)
    }

    fn install_build_inner(&mut self, hb: HashBuild) -> Result<()> {
        self.phase = match (hb.in_mem, hb.parts) {
            (Some(table), _) => Phase::InMem { table },
            (None, Some(build_parts)) => Phase::NeedProbePartition { build_parts },
            (None, None) => return Err(MqError::Internal("empty hash build".into())),
        };
        Ok(())
    }

    /// Drain the probe child into partition files (spill path).
    fn partition_probe(&mut self, ctx: &ExecContext, nparts: usize) -> Result<Vec<FileId>> {
        let files: Vec<FileId> = (0..nparts).map(|_| ctx.create_temp_file()).collect();
        self.probe.open(ctx)?;
        while let Some(row) = self.probe.next(ctx)? {
            ctx.clock.add_cpu(2);
            if let Some(key) = Self::key_of(&row, &self.probe_keys) {
                let p = (hash_key(&key, 1) % nparts as u64) as usize;
                ctx.storage.append_row(files[p], &row)?;
            }
        }
        self.probe.close(ctx)?;
        Ok(files)
    }

    /// Process partitions until output is pending or everything is done.
    fn advance_parts(&mut self, ctx: &ExecContext) -> Result<()> {
        loop {
            let (build_parts, probe_parts, current, chunk_start) = match &mut self.phase {
                Phase::Parts {
                    build_parts,
                    probe_parts,
                    current,
                    chunk_start,
                } => (
                    build_parts.clone(),
                    probe_parts.clone(),
                    current,
                    chunk_start,
                ),
                _ => return Ok(()),
            };
            if *current >= build_parts.len() {
                self.cleanup_parts(ctx, &build_parts, &probe_parts);
                self.phase = Phase::Done;
                return Ok(());
            }
            let bp = build_parts[*current];
            let pp = probe_parts[*current];
            let grant = ctx.grant_for(self.node, self.grant_fallback);
            let usable = (grant as f64 / HASH_OVERHEAD) as usize;

            // Load one memory-sized chunk of the build partition.
            let mut table: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
            let mut bytes = 0usize;
            let mut idx = 0u64;
            let start = *chunk_start;
            let mut more = false;
            for item in ctx.storage.scan_file(bp)? {
                let (_, row) = item?;
                if idx < start {
                    idx += 1;
                    continue;
                }
                if bytes > usable {
                    more = true;
                    break;
                }
                ctx.clock.add_cpu(2);
                bytes += row.encoded_len() + 16;
                if let Some(key) = Self::key_of(&row, &self.build_keys) {
                    table.entry(key).or_default().push(row);
                }
                idx += 1;
            }
            let consumed = idx;
            if table.is_empty() && !more {
                // Empty build partition: skip it.
                match &mut self.phase {
                    Phase::Parts {
                        current,
                        chunk_start,
                        ..
                    } => {
                        *chunk_start = 0;
                        *current += 1;
                    }
                    _ => {
                        return Err(MqError::Execution(
                            "hash join phase changed while skipping an empty partition".into(),
                        ))
                    }
                }
                continue;
            }

            // Scan the probe partition against this chunk.
            for item in ctx.storage.scan_file(pp)? {
                let (_, row) = item?;
                ctx.clock.add_cpu(2);
                if let Some(key) = Self::key_of(&row, &self.probe_keys) {
                    if let Some(matches) = table.get(&key) {
                        for b in matches {
                            ctx.clock.add_cpu(1);
                            self.pending.push(b.concat(&row));
                        }
                    }
                }
            }

            // Advance chunk/partition cursor.
            match &mut self.phase {
                Phase::Parts {
                    current,
                    chunk_start,
                    ..
                } => {
                    if more {
                        *chunk_start = consumed;
                    } else {
                        *chunk_start = 0;
                        *current += 1;
                    }
                }
                _ => {
                    return Err(MqError::Execution(
                        "hash join phase changed while advancing the partition cursor".into(),
                    ))
                }
            }
            if !self.pending.is_empty() {
                return Ok(());
            }
        }
    }

    fn cleanup_parts(&self, ctx: &ExecContext, a: &[FileId], b: &[FileId]) {
        for f in a.iter().chain(b) {
            ctx.free_temp_file(*f);
        }
    }
}

/// Spill fan-out. Each partition keeps an append tail page resident,
/// so the fan-out must stay well below both the grant and the buffer
/// pool or partitioned writes thrash the pool (evict-write + reload on
/// every append). Oversized partitions are handled downstream by
/// chunked block processing, so a modest fan-out is always safe.
fn partition_count(grant: usize, page_size: usize, pool_pages: usize) -> usize {
    let by_grant = (grant / page_size).saturating_sub(1);
    let by_pool = pool_pages / 4;
    by_grant.min(by_pool).clamp(2, MAX_PARTS)
}

/// The artifact stores the *same* build state the operator uses; to
/// avoid cloning potentially large tables we move the real state into
/// the operator and leave a metadata copy (spill files are shared, the
/// in-memory table is rebuilt only if a switch actually happens —
/// in-memory builds are cheap to rebuild relative to a switch's
/// materialization, and spilled builds share their files).
fn dup_metadata(hb: &HashBuild) -> HashBuild {
    HashBuild {
        in_mem: hb.in_mem.clone(),
        parts: hb.parts.clone(),
        rows: hb.rows,
    }
}

impl Operator for HashJoinExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.run_build(ctx)?;
        // Open the probe side for streaming (in-memory case).
        if matches!(self.phase, Phase::InMem { .. }) {
            self.probe.open(ctx)?;
        }
        Ok(())
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            match &mut self.phase {
                Phase::Unopened => return Err(MqError::Execution("hash join not opened".into())),
                Phase::InMem { table } => match self.probe.next(ctx)? {
                    Some(row) => {
                        ctx.clock.add_cpu(2);
                        if let Some(key) = Self::key_of(&row, &self.probe_keys) {
                            if let Some(matches) = table.get(&key) {
                                for b in matches {
                                    ctx.clock.add_cpu(1);
                                    self.pending.push(b.concat(&row));
                                }
                            }
                        }
                    }
                    None => {
                        self.phase = Phase::Done;
                    }
                },
                Phase::NeedProbePartition { build_parts } => {
                    let build_parts = build_parts.clone();
                    let nparts = build_parts.len();
                    let probe_parts = self.partition_probe(ctx, nparts)?;
                    self.phase = Phase::Parts {
                        build_parts,
                        probe_parts,
                        current: 0,
                        chunk_start: 0,
                    };
                }
                Phase::Parts { .. } => {
                    self.advance_parts(ctx)?;
                    if self.pending.is_empty() {
                        return Ok(None);
                    }
                }
                Phase::Done => return Ok(None),
            }
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        if let Phase::Parts {
            build_parts,
            probe_parts,
            ..
        } = &self.phase
        {
            self.cleanup_parts(ctx, &build_parts.clone(), &probe_parts.clone());
        }
        if let Phase::NeedProbePartition { build_parts } = &self.phase {
            for f in build_parts.clone() {
                ctx.free_temp_file(f);
            }
        }
        self.phase = Phase::Done;
        if !self.build_skipped {
            // Build child was closed at end of build; probe child may
            // still be open.
        }
        self.probe.close(ctx).ok();
        Ok(())
    }
}
