//! Scan operators: sequential and B+-tree index scans.

use mq_common::{IndexId, MqError, Result, Rid, Row, Value};
use mq_expr::Expr;
use mq_plan::{NodeId, ScanSpec};
use mq_storage::RowScan;

use crate::context::ExecContext;
use crate::Operator;

/// Sequential heap-file scan with an optional in-stream filter.
pub struct SeqScanExec {
    #[allow(dead_code)]
    node: NodeId,
    spec: ScanSpec,
    filter: Option<Expr>,
    /// Restrict the scan to positions `lo..hi` of the file's page list
    /// (partitioned driver chunks); `None` scans the whole file.
    page_range: Option<(usize, usize)>,
    iter: Option<RowScan>,
    filter_ops: u64,
}

impl SeqScanExec {
    /// Create a sequential scan.
    pub fn new(node: NodeId, spec: ScanSpec, filter: Option<Expr>) -> SeqScanExec {
        let filter_ops = filter.as_ref().map(|f| f.eval_cost_ops()).unwrap_or(0);
        SeqScanExec {
            node,
            spec,
            filter,
            page_range: None,
            iter: None,
            filter_ops,
        }
    }

    /// Create a scan over one contiguous page-chunk of the file.
    pub fn ranged(
        node: NodeId,
        spec: ScanSpec,
        filter: Option<Expr>,
        page_lo: usize,
        page_hi: usize,
    ) -> SeqScanExec {
        let mut s = SeqScanExec::new(node, spec, filter);
        s.page_range = Some((page_lo, page_hi));
        s
    }
}

impl Operator for SeqScanExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.iter = Some(match self.page_range {
            Some((lo, hi)) => ctx.storage.scan_file_range(self.spec.file, lo, hi)?,
            None => ctx.storage.scan_file(self.spec.file)?,
        });
        Ok(())
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        let iter = self
            .iter
            .as_mut()
            .ok_or_else(|| MqError::Execution("scan not opened".into()))?;
        for item in iter {
            let (_, row) = item?;
            ctx.clock.add_cpu(1 + self.filter_ops);
            match &self.filter {
                Some(f) => {
                    if f.eval_predicate(&row)? {
                        return Ok(Some(row));
                    }
                }
                None => return Ok(Some(row)),
            }
        }
        Ok(None)
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.iter = None;
        Ok(())
    }
}

/// B+-tree index range scan with unclustered heap fetches.
pub struct IndexScanExec {
    #[allow(dead_code)]
    node: NodeId,
    #[allow(dead_code)]
    spec: ScanSpec,
    index: IndexId,
    lo: Option<Value>,
    hi: Option<Value>,
    residual: Option<Expr>,
    rids: Vec<Rid>,
    pos: usize,
    residual_ops: u64,
}

impl IndexScanExec {
    /// Create an index scan over `lo ≤ key ≤ hi`.
    pub fn new(
        node: NodeId,
        spec: ScanSpec,
        index: IndexId,
        lo: Option<Value>,
        hi: Option<Value>,
        residual: Option<Expr>,
    ) -> IndexScanExec {
        let residual_ops = residual.as_ref().map(|f| f.eval_cost_ops()).unwrap_or(0);
        IndexScanExec {
            node,
            spec,
            index,
            lo,
            hi,
            residual,
            rids: Vec::new(),
            pos: 0,
            residual_ops,
        }
    }
}

impl Operator for IndexScanExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        // The range probe pays index-node I/O through the buffer pool.
        self.rids = ctx
            .storage
            .index_range(self.index, self.lo.as_ref(), self.hi.as_ref())?;
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        while self.pos < self.rids.len() {
            let rid = self.rids[self.pos];
            self.pos += 1;
            let row = ctx.storage.fetch(rid)?;
            ctx.clock.add_cpu(2 + self.residual_ops);
            match &self.residual {
                Some(f) => {
                    if f.eval_predicate(&row)? {
                        return Ok(Some(row));
                    }
                }
                None => return Ok(Some(row)),
            }
        }
        Ok(None)
    }

    fn close(&mut self, _ctx: &ExecContext) -> Result<()> {
        self.rids.clear();
        Ok(())
    }
}
