//! Streaming row operators: filter, project, limit.

use mq_common::{Result, Row};
use mq_expr::Expr;
use mq_plan::NodeId;

use crate::context::ExecContext;
use crate::Operator;

/// Filter: keeps rows whose predicate evaluates to TRUE.
pub struct FilterExec {
    #[allow(dead_code)]
    node: NodeId,
    input: Box<dyn Operator>,
    predicate: Expr,
    ops: u64,
}

impl FilterExec {
    /// Create a filter.
    pub fn new(node: NodeId, input: Box<dyn Operator>, predicate: Expr) -> FilterExec {
        let ops = predicate.eval_cost_ops();
        FilterExec {
            node,
            input,
            predicate,
            ops,
        }
    }
}

impl Operator for FilterExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(ctx)? {
            ctx.clock.add_cpu(self.ops);
            if self.predicate.eval_predicate(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.close(ctx)
    }
}

/// Projection: computes named output expressions.
pub struct ProjectExec {
    #[allow(dead_code)]
    node: NodeId,
    input: Box<dyn Operator>,
    exprs: Vec<(Expr, String)>,
}

impl ProjectExec {
    /// Create a projection.
    pub fn new(node: NodeId, input: Box<dyn Operator>, exprs: Vec<(Expr, String)>) -> ProjectExec {
        ProjectExec { node, input, exprs }
    }
}

impl Operator for ProjectExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        match self.input.next(ctx)? {
            Some(row) => {
                ctx.clock.add_cpu(self.exprs.len() as u64);
                let mut out = Vec::with_capacity(self.exprs.len());
                for (e, _) in &self.exprs {
                    out.push(e.eval(&row)?);
                }
                Ok(Some(Row::new(out)))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.close(ctx)
    }
}

/// Limit: stops after `n` rows.
pub struct LimitExec {
    #[allow(dead_code)]
    node: NodeId,
    input: Box<dyn Operator>,
    n: u64,
    emitted: u64,
}

impl LimitExec {
    /// Create a limit.
    pub fn new(node: NodeId, input: Box<dyn Operator>, n: u64) -> LimitExec {
        LimitExec {
            node,
            input,
            n,
            emitted: 0,
        }
    }
}

impl Operator for LimitExec {
    fn open(&mut self, ctx: &ExecContext) -> Result<()> {
        self.emitted = 0;
        self.input.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext) -> Result<Option<Row>> {
        if self.emitted >= self.n {
            return Ok(None);
        }
        match self.input.next(ctx)? {
            Some(row) => {
                self.emitted += 1;
                ctx.clock.add_cpu(1);
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, ctx: &ExecContext) -> Result<()> {
        self.input.close(ctx)
    }
}
