//! Shared execution context: storage, clock, grants, artifacts, and
//! the monitor hook the re-optimization controller plugs into.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use mq_common::{CancelToken, EngineConfig, FileId, MqError, Result, Row, SimClock, Value};
use mq_plan::NodeId;
use mq_storage::Storage;
use parking_lot::Mutex;

use crate::collector::{CollectorParts, ObservedStats};

/// Observer the Dynamic Re-Optimization controller implements.
///
/// Returning an `Err` — specifically
/// [`mq_common::MqError::PlanSwitch`] — from `on_phase_complete`
/// unwinds execution; operator state survives in the artifact store.
pub trait ExecMonitor {
    /// A statistics collector exhausted its input and reports.
    fn on_collector(&self, stats: ObservedStats) -> Result<()>;
    /// A blocking phase (hash-join build, sort run generation,
    /// aggregate input) finished at `node`, before its output phase.
    fn on_phase_complete(&self, node: NodeId) -> Result<()>;
    /// Provisional progress from a still-running collector: `rows` is
    /// a *lower bound* on the final cardinality, so memory decisions
    /// based on it are always safe. Default: ignored. (This powers the
    /// §2.3 extension — operators responding to grant changes in
    /// mid-execution.)
    fn on_collector_progress(&self, node: NodeId, rows: u64) -> Result<()> {
        let _ = (node, rows);
        Ok(())
    }
}

/// Observed per-operator execution totals, recorded by the profiling
/// wrapper every operator runs inside (see `build_executor`). Row
/// counts are always collected (one counter increment per row);
/// inclusive cpu/io deltas are collected only when an event sink is
/// scoped (`profile_detail`), since they cost two clock snapshots per
/// pull.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpActuals {
    /// Rows this operator produced.
    pub rows: u64,
    /// Inclusive CPU ops charged while this operator (and its subtree)
    /// ran. Zero unless detailed profiling was on.
    pub cpu_ops: u64,
    /// Inclusive logical page I/O (reads + writes), same caveat.
    pub io_pages: u64,
}

/// State a blocking operator externalizes between phases (and across a
/// plan switch).
#[derive(Debug)]
pub enum Artifact {
    /// A hash-join build: in-memory table or spilled partitions.
    HashBuild(HashBuild),
    /// Sorted output, fully in memory (fits the grant).
    SortedRows(Vec<Row>),
    /// Sorted runs spilled to temp files (each file is sorted).
    SortedRuns(Vec<FileId>),
    /// A finished aggregation's output rows.
    AggOutput(Vec<Row>),
}

/// Hash-join build state.
#[derive(Debug)]
pub struct HashBuild {
    /// In-memory table (when the build fit its grant).
    pub in_mem: Option<HashMap<Vec<Value>, Vec<Row>>>,
    /// Spilled build partitions (when it did not).
    pub parts: Option<Vec<FileId>>,
    /// Build rows observed.
    pub rows: u64,
}

/// Everything operators need at run time. Each query runs on one
/// thread (interior mutability via `RefCell` for operator state), but
/// many queries run concurrently against shared storage, so the
/// cross-thread-visible pieces — the grants table the runtime's memory
/// broker can touch — live behind `Arc<Mutex<…>>`.
pub struct ExecContext {
    /// Storage (buffer pool, heap files, indexes, temp files).
    pub storage: Storage,
    /// The simulated-cost clock.
    pub clock: SimClock,
    /// Engine configuration.
    pub cfg: EngineConfig,
    /// Blocking-operator state, keyed by plan-node id.
    pub artifacts: RefCell<HashMap<NodeId, Artifact>>,
    /// Memory grants, updatable mid-query for unstarted operators
    /// (§2.3). Operators read their grant when their phase *starts*.
    /// Shared so the re-optimization controller can update it from
    /// inside monitor callbacks.
    pub grants: Arc<Mutex<HashMap<NodeId, usize>>>,
    /// Optional observer (the re-optimization controller).
    pub monitor: Option<Rc<dyn ExecMonitor>>,
    /// Cooperative cancellation, polled at segment boundaries.
    pub cancel: Option<CancelToken>,
    /// Deadline in simulated milliseconds on `clock`; exceeding it
    /// cancels the query at the next segment boundary.
    pub deadline_ms: Option<f64>,
    /// Every temp file created for this query that has not yet been
    /// freed or handed to a durable owner (the catalog). Whatever is
    /// still registered when the query unwinds is reclaimed by
    /// [`ExecContext::release_temp_files`] — the leak-proofing
    /// backstop for spill files dropped mid-flight.
    temp_files: RefCell<HashSet<FileId>>,
    /// Scratch-ownership label stamped on every temp file this context
    /// creates (the query's temp prefix under the engine). A crash
    /// abandons the registry above without running it; the storage-
    /// level tag is what lets recovery find the partial files anyway.
    /// `None` = untagged (standalone executor tests).
    pub scratch_tag: Option<String>,
    /// Per-operator observed totals for the *current* segment attempt
    /// (EXPLAIN ANALYZE's actual side). Reset at attempt start.
    pub actuals: RefCell<HashMap<NodeId, OpActuals>>,
    /// Collect inclusive cpu/io deltas per operator (set by the engine
    /// when an event sink is scoped; row counts are collected always).
    pub profile_detail: bool,
    /// When set, statistics collectors deposit their *raw* accumulator
    /// state here at finalize instead of reporting to the monitor. The
    /// partitioned driver runs a segment once per bucket with capture
    /// on, merges the per-bucket parts at the exchange barrier, and
    /// reports the merged statistics once (§2.2 in a partitioned
    /// setting: local collection, merge at the exchange).
    pub collector_capture: Option<Rc<RefCell<Vec<CollectorParts>>>>,
}

impl ExecContext {
    /// Context without a monitor (plain execution).
    pub fn new(storage: Storage, clock: SimClock, cfg: EngineConfig) -> ExecContext {
        ExecContext {
            storage,
            clock,
            cfg,
            artifacts: RefCell::new(HashMap::new()),
            grants: Arc::new(Mutex::new(HashMap::new())),
            monitor: None,
            cancel: None,
            deadline_ms: None,
            temp_files: RefCell::new(HashSet::new()),
            scratch_tag: None,
            actuals: RefCell::new(HashMap::new()),
            profile_detail: false,
            collector_capture: None,
        }
    }

    /// A fresh context for one bucket run of the partitioned driver:
    /// same storage, clock, config, cancellation, deadline and grants
    /// table (so per-node grants agree with the serial plan), but its
    /// own artifact store, temp-file registry and actuals — and no
    /// monitor, since collector reports are merged and delivered at
    /// exchange barriers by the driver itself.
    pub fn bucket_context(&self) -> ExecContext {
        ExecContext {
            storage: self.storage.clone(),
            clock: self.clock.clone(),
            cfg: self.cfg.clone(),
            artifacts: RefCell::new(HashMap::new()),
            grants: Arc::clone(&self.grants),
            monitor: None,
            cancel: self.cancel.clone(),
            deadline_ms: self.deadline_ms,
            temp_files: RefCell::new(HashSet::new()),
            scratch_tag: self.scratch_tag.clone(),
            actuals: RefCell::new(HashMap::new()),
            profile_detail: self.profile_detail,
            collector_capture: None,
        }
    }

    /// Record (overwrite) the observed totals for one operator.
    pub fn record_actuals(&self, node: NodeId, a: OpActuals) {
        self.actuals.borrow_mut().insert(node, a);
    }

    /// Clear per-operator actuals (a fresh segment attempt starts).
    pub fn reset_actuals(&self) {
        self.actuals.borrow_mut().clear();
    }

    /// Take the per-operator actuals of the attempt that just ran.
    pub fn take_actuals(&self) -> HashMap<NodeId, OpActuals> {
        std::mem::take(&mut self.actuals.borrow_mut())
    }

    /// Create a temp file registered for unwind-time reclamation.
    /// Operators must use this (not `storage.create_file`) for spill
    /// and materialization files.
    pub fn create_temp_file(&self) -> FileId {
        let f = self.storage.create_file();
        self.temp_files.borrow_mut().insert(f);
        if let Some(tag) = &self.scratch_tag {
            self.storage.tag_file(f, tag);
        }
        f
    }

    /// Free a temp file now (normal operator cleanup).
    pub fn free_temp_file(&self, f: FileId) {
        self.temp_files.borrow_mut().remove(&f);
        let _ = self.storage.drop_file(f);
    }

    /// Unregister a temp file whose ownership moved to a durable owner
    /// (a catalog-registered materialized table). The scratch tag
    /// moves with it: the file is no longer anonymous scratch, so a
    /// recovery sweep must not reclaim it out from under the catalog.
    pub fn forget_temp_file(&self, f: FileId) {
        self.temp_files.borrow_mut().remove(&f);
        self.storage.untag_file(f);
    }

    /// Drop every still-registered temp file; returns how many were
    /// reclaimed. Called when the query unwinds (error, cancellation,
    /// segment retry) — on a clean exit the registry is already empty.
    pub fn release_temp_files(&self) -> usize {
        let drained: Vec<FileId> = self.temp_files.borrow_mut().drain().collect();
        let mut reclaimed = 0;
        for f in drained {
            if self.storage.drop_file(f).is_ok() {
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Temp files currently registered (diagnostics).
    pub fn temp_files_outstanding(&self) -> usize {
        self.temp_files.borrow().len()
    }

    /// A shared handle to the grants table (for the controller).
    pub fn share_grants(&self) -> Arc<Mutex<HashMap<NodeId, usize>>> {
        Arc::clone(&self.grants)
    }

    /// Drop all grant overrides (after a plan switch re-numbers nodes).
    pub fn clear_grants(&self) {
        self.grants.lock().clear();
    }

    /// Attach a monitor.
    pub fn with_monitor(mut self, monitor: Rc<dyn ExecMonitor>) -> ExecContext {
        self.monitor = Some(monitor);
        self
    }

    /// Attach a cancellation token and optional simulated-ms deadline.
    pub fn with_interrupts(
        mut self,
        cancel: Option<CancelToken>,
        deadline_ms: Option<f64>,
    ) -> ExecContext {
        self.cancel = cancel;
        self.deadline_ms = deadline_ms;
        self
    }

    /// Cooperative interrupt check: fails with
    /// [`MqError::Cancelled`] once cancellation was requested or the
    /// simulated deadline passed. Called at segment boundaries (and at
    /// executor start), so cancellation latency is bounded by one
    /// pipeline phase.
    pub fn check_interrupt(&self) -> Result<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(MqError::Cancelled("query cancelled".into()));
            }
        }
        if mq_common::fault::cancel_requested() {
            return Err(MqError::Cancelled("injected cancellation trigger".into()));
        }
        if let Some(deadline) = self.deadline_ms {
            let now = self.clock.elapsed_ms(&self.cfg);
            if now > deadline {
                return Err(MqError::Cancelled(format!(
                    "deadline {deadline:.1} ms exceeded (simulated clock at {now:.1} ms)"
                )));
            }
        }
        Ok(())
    }

    /// The memory grant for `node`: the grants table if set, otherwise
    /// `fallback` (the grant baked into the plan annotation), otherwise
    /// the whole budget.
    pub fn grant_for(&self, node: NodeId, fallback: usize) -> usize {
        if let Some(&g) = self.grants.lock().get(&node) {
            return g;
        }
        if fallback > 0 {
            fallback
        } else {
            self.cfg.query_memory_bytes
        }
    }

    /// Update the grant of a (not yet started) operator.
    pub fn set_grant(&self, node: NodeId, bytes: usize) {
        self.grants.lock().insert(node, bytes);
    }

    /// Fire the collector hook.
    pub fn notify_collector(&self, stats: ObservedStats) -> Result<()> {
        match &self.monitor {
            Some(m) => m.on_collector(stats),
            None => Ok(()),
        }
    }

    /// Fire the provisional-progress hook.
    pub fn notify_progress(&self, node: NodeId, rows: u64) -> Result<()> {
        match &self.monitor {
            Some(m) => m.on_collector_progress(node, rows),
            None => Ok(()),
        }
    }

    /// Fire the phase-complete hook. A segment boundary is also where
    /// cancellation and deadlines are honoured — before the monitor
    /// runs, so a cancelled query never triggers a re-optimization.
    /// Injected crashes fire here too (before the interrupt check):
    /// the boundary count is a logical property of the query, so a
    /// scheduled kill lands at the same point at any worker count.
    pub fn notify_phase(&self, node: NodeId) -> Result<()> {
        mq_common::fault::on_segment_boundary()?;
        self.check_interrupt()?;
        match &self.monitor {
            Some(m) => m.on_phase_complete(node),
            None => Ok(()),
        }
    }

    /// Take an artifact (consuming it).
    pub fn take_artifact(&self, node: NodeId) -> Option<Artifact> {
        self.artifacts.borrow_mut().remove(&node)
    }

    /// Store an artifact.
    pub fn put_artifact(&self, node: NodeId, artifact: Artifact) {
        self.artifacts.borrow_mut().insert(node, artifact);
    }

    /// Whether an artifact exists for `node`.
    pub fn has_artifact(&self, node: NodeId) -> bool {
        self.artifacts.borrow().contains_key(&node)
    }

    /// Drop all artifacts, freeing any spilled temp files.
    pub fn clear_artifacts(&self) {
        let drained: Vec<Artifact> = {
            let mut map = self.artifacts.borrow_mut();
            map.drain().map(|(_, a)| a).collect()
        };
        for a in drained {
            self.free_artifact_files(&a);
        }
    }

    fn free_artifact_files(&self, a: &Artifact) {
        let files: Vec<FileId> = match a {
            Artifact::HashBuild(h) => h.parts.clone().unwrap_or_default(),
            Artifact::SortedRuns(fs) => fs.clone(),
            _ => Vec::new(),
        };
        for f in files {
            self.free_temp_file(f);
        }
    }
}

/// Deterministic hash for partitioning and hash tables, salted by
/// recursion level so sub-partitioning re-distributes.
pub fn hash_key(key: &[Value], salt: u64) -> u64 {
    use std::hash::{Hash, Hasher};
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for v in key {
        v.hash(&mut h);
    }
    let mut z = std::hash::Hasher::finish(&h);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::Value;

    #[test]
    fn grant_fallback_chain() {
        let cfg = EngineConfig::default();
        let storage = Storage::new(&cfg, SimClock::new());
        let ctx = ExecContext::new(storage, SimClock::new(), cfg.clone());
        let n = NodeId(3);
        assert_eq!(ctx.grant_for(n, 0), cfg.query_memory_bytes);
        assert_eq!(ctx.grant_for(n, 1234), 1234);
        ctx.set_grant(n, 777);
        assert_eq!(ctx.grant_for(n, 1234), 777);
    }

    #[test]
    fn artifact_lifecycle() {
        let cfg = EngineConfig::default();
        let storage = Storage::new(&cfg, SimClock::new());
        let ctx = ExecContext::new(storage, SimClock::new(), cfg);
        let n = NodeId(1);
        assert!(!ctx.has_artifact(n));
        ctx.put_artifact(n, Artifact::AggOutput(vec![]));
        assert!(ctx.has_artifact(n));
        assert!(ctx.take_artifact(n).is_some());
        assert!(!ctx.has_artifact(n));
    }

    #[test]
    fn hash_key_salt_changes_distribution() {
        let key = vec![Value::Int(42), Value::str("x")];
        let a = hash_key(&key, 0);
        let b = hash_key(&key, 1);
        assert_ne!(a, b);
        assert_eq!(a, hash_key(&key, 0), "deterministic");
    }

    #[test]
    fn numeric_family_hashes_equal() {
        // hash_key must agree with Value's Eq across Int/Float.
        let a = hash_key(&[Value::Int(5)], 7);
        let b = hash_key(&[Value::Float(5.0)], 7);
        assert_eq!(a, b);
    }
}
