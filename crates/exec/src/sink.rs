//! Materialization: drain a plan into a temp heap file, observing
//! *exact* statistics on the way (the re-optimizer's temp tables have
//! perfect cardinalities — that is the whole point of §2.4's Figure 6).

use std::collections::HashMap;

use mq_catalog::{ColumnStats, TableStats};
use mq_common::{FileId, Result, Schema};
use mq_plan::PhysPlan;
use mq_stats::{ColumnAccumulator, HistogramKind};

use crate::build_executor;
use crate::context::ExecContext;

/// A materialized intermediate result.
#[derive(Debug, Clone)]
pub struct MaterializedResult {
    /// The temp heap file holding the rows.
    pub file: FileId,
    /// Row schema.
    pub schema: Schema,
    /// Exact statistics observed while writing.
    pub stats: TableStats,
    /// Order-insensitive content fingerprint of the written rows
    /// (see [`rows_fingerprint`]). The checkpoint manifest records it
    /// so recovery can verify a salvaged temp table holds exactly the
    /// rows the crashed query wrote.
    pub fingerprint: u64,
}

/// Per-row content hash used by [`rows_fingerprint`].
pub fn row_fingerprint(row: &mq_common::Row) -> u64 {
    crate::context::hash_key(row.values(), 0x5EED_F00D)
}

/// Order-insensitive fingerprint of a row multiset: the wrapping sum
/// of per-row hashes. Summation (not XOR) so duplicate rows do not
/// cancel; order-insensitive so it is stable under any scan order.
pub fn rows_fingerprint<'a>(rows: impl Iterator<Item = &'a mq_common::Row>) -> u64 {
    rows.fold(0u64, |acc, r| acc.wrapping_add(row_fingerprint(r)))
}

/// Execute `plan` to completion, writing every output row to a fresh
/// temp file and building exact statistics (cardinality, min/max,
/// distinct sketches, MaxDiff histograms) in the same pass.
pub fn materialize(plan: &PhysPlan, ctx: &ExecContext) -> Result<MaterializedResult> {
    let mut exec = build_executor(plan)?;
    let schema = plan.schema.clone();
    // Registered as a temp file until the caller hands ownership to a
    // durable owner (`ExecContext::forget_temp_file`): if execution
    // fails mid-drain, the unwind path reclaims the partial file.
    let file = ctx.create_temp_file();
    let mut accs: Vec<ColumnAccumulator> = (0..schema.len())
        .map(|i| ColumnAccumulator::new(ctx.cfg.reservoir_size, 0xFEED ^ i as u64))
        .collect();
    let mut rows = 0u64;
    let mut bytes = 0u64;
    let mut fingerprint = 0u64;

    exec.open(ctx)?;
    while let Some(row) = exec.next(ctx)? {
        rows += 1;
        bytes += row.encoded_len() as u64;
        fingerprint = fingerprint.wrapping_add(row_fingerprint(&row));
        for (i, acc) in accs.iter_mut().enumerate() {
            let ops = acc.observe(row.get(i));
            ctx.clock.add_cpu(ops);
        }
        ctx.storage.append_row(file, &row)?;
    }
    exec.close(ctx)?;
    // No forced flush: like any write, materialized pages reach disk on
    // eviction. Small results that stay pool-resident read back for
    // free — honest behaviour for both the baseline and the switch.

    let mut columns = HashMap::new();
    for (i, acc) in accs.iter().enumerate() {
        let obs = acc.finish(HistogramKind::MaxDiff, ctx.cfg.histogram_buckets);
        columns.insert(
            schema.field(i).name.to_string(),
            ColumnStats {
                min: obs.min,
                max: obs.max,
                distinct: obs.distinct,
                null_frac: obs.null_frac,
                histogram: obs.histogram,
                histogram_kind: Some(HistogramKind::MaxDiff),
                clustering: obs.clustering,
            },
        );
    }
    let pages = ctx.storage.file_pages(file)? as u64;
    Ok(MaterializedResult {
        file,
        fingerprint,
        schema,
        stats: TableStats {
            rows,
            pages,
            avg_row_bytes: if rows > 0 {
                bytes as f64 / rows as f64
            } else {
                0.0
            },
            columns,
        },
    })
}
