//! Property tests: every physical operator against an in-memory
//! oracle, across random data and random memory grants (so both the
//! in-memory and the spilling code paths are exercised).

use mq_catalog::Catalog;
use mq_common::{DataType, EngineConfig, Row, SimClock, Value};
use mq_exec::{run_to_vec, ExecContext};
use mq_plan::{AggExpr, AggFunc, PhysOp, PhysPlan, ScanSpec};
use mq_storage::Storage;
use proptest::prelude::*;

struct Fx {
    catalog: Catalog,
    storage: Storage,
    cfg: EngineConfig,
}

impl Fx {
    fn new() -> Fx {
        let cfg = EngineConfig {
            buffer_pool_pages: 16,
            ..EngineConfig::default()
        };
        let storage = Storage::new(&cfg, SimClock::new());
        Fx {
            catalog: Catalog::new(),
            storage,
            cfg: cfg.clone(),
        }
    }

    fn ctx(&self) -> ExecContext {
        ExecContext::new(self.storage.clone(), SimClock::new(), self.cfg.clone())
    }

    fn table(&self, name: &str, rows: &[(i64, i64)]) -> PhysPlan {
        self.catalog
            .create_table(
                &self.storage,
                name,
                vec![("k", DataType::Int), ("v", DataType::Int)],
            )
            .unwrap();
        for &(k, v) in rows {
            self.catalog
                .insert_row(
                    &self.storage,
                    name,
                    Row::new(vec![Value::Int(k), Value::Int(v)]),
                )
                .unwrap();
        }
        let entry = self.catalog.table(name).unwrap();
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: name.into(),
                    file: entry.file,
                    pages: self.storage.file_pages(entry.file).unwrap() as u64,
                    rows: rows.len() as u64,
                },
                filter: None,
            },
            vec![],
            entry.schema,
        );
        p.annot.est_rows = rows.len() as f64;
        p.annot.est_row_bytes = 20.0;
        p
    }
}

fn canon(rows: &[Row]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hybrid hash join (any grant) equals the nested-loop oracle.
    #[test]
    fn hash_join_oracle(
        left in prop::collection::vec((0i64..20, any::<i64>()), 0..200),
        right in prop::collection::vec((0i64..20, any::<i64>()), 0..200),
        grant_pages in 2usize..64,
    ) {
        let fx = Fx::new();
        let a = fx.table("a", &left);
        let b = fx.table("b", &right);
        let schema = a.schema.join(&b.schema);
        let mut plan = PhysPlan::new(
            PhysOp::HashJoin { build_keys: vec![0], probe_keys: vec![0] },
            vec![a, b],
            schema,
        );
        plan.annot.mem_grant_bytes = grant_pages * fx.cfg.page_size;
        plan.assign_ids();
        let got = run_to_vec(&plan, &fx.ctx()).unwrap();

        let mut oracle = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    oracle.push(Row::new(vec![
                        Value::Int(lk), Value::Int(lv), Value::Int(rk), Value::Int(rv),
                    ]));
                }
            }
        }
        prop_assert_eq!(canon(&got), canon(&oracle));
    }

    /// External sort (any grant) equals `sort_by` on the oracle.
    #[test]
    fn sort_oracle(
        rows in prop::collection::vec((-50i64..50, -50i64..50), 0..400),
        grant_pages in 1usize..32,
        desc in any::<bool>(),
    ) {
        let fx = Fx::new();
        let input = fx.table("t", &rows);
        let schema = input.schema.clone();
        let mut plan = PhysPlan::new(
            PhysOp::Sort { keys: vec![(0, !desc), (1, true)] },
            vec![input],
            schema,
        );
        plan.annot.mem_grant_bytes = grant_pages * fx.cfg.page_size;
        plan.assign_ids();
        let got: Vec<(i64, i64)> = run_to_vec(&plan, &fx.ctx())
            .unwrap()
            .iter()
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(1).as_i64().unwrap()))
            .collect();
        let mut oracle = rows.clone();
        oracle.sort_by(|x, y| {
            let k = if desc { y.0.cmp(&x.0) } else { x.0.cmp(&y.0) };
            k.then(x.1.cmp(&y.1))
        });
        prop_assert_eq!(got, oracle);
    }

    /// Hash aggregation (any grant) equals a HashMap oracle.
    #[test]
    fn aggregate_oracle(
        rows in prop::collection::vec((0i64..30, -100i64..100), 0..400),
        grant_pages in 2usize..32,
    ) {
        let fx = Fx::new();
        let input = fx.table("t", &rows);
        let in_schema = input.schema.clone();
        let out_schema = mq_common::Schema::new(vec![
            mq_common::Field::qualified("t", "k", DataType::Int),
            mq_common::Field::new("n", DataType::Int),
            mq_common::Field::new("s", DataType::Int),
            mq_common::Field::new("mx", DataType::Int),
        ]).unwrap();
        let arg = mq_expr::col("t.v").bind(&in_schema).unwrap();
        let mut plan = PhysPlan::new(
            PhysOp::HashAggregate {
                group: vec![0],
                aggs: vec![
                    AggExpr { func: AggFunc::Count, arg: None, name: "n".into() },
                    AggExpr { func: AggFunc::Sum, arg: Some(arg.clone()), name: "s".into() },
                    AggExpr { func: AggFunc::Max, arg: Some(arg), name: "mx".into() },
                ],
            },
            vec![input],
            out_schema,
        );
        plan.annot.mem_grant_bytes = grant_pages * fx.cfg.page_size;
        plan.assign_ids();
        let got = run_to_vec(&plan, &fx.ctx()).unwrap();

        use std::collections::HashMap;
        let mut model: HashMap<i64, (i64, i64, i64)> = HashMap::new();
        for &(k, v) in &rows {
            let e = model.entry(k).or_insert((0, 0, i64::MIN));
            e.0 += 1;
            e.1 += v;
            e.2 = e.2.max(v);
        }
        prop_assert_eq!(got.len(), model.len());
        for r in &got {
            let k = r.get(0).as_i64().unwrap();
            let (n, s, mx) = model[&k];
            prop_assert_eq!(r.get(1).as_i64(), Some(n), "count for {}", k);
            prop_assert_eq!(r.get(2).as_i64(), Some(s), "sum for {}", k);
            prop_assert_eq!(r.get(3).as_i64(), Some(mx), "max for {}", k);
        }
    }

    /// Index nested-loops join equals the hash join on the same input.
    #[test]
    fn inl_join_matches_hash(
        outer in prop::collection::vec((0i64..25, any::<i64>()), 0..150),
        inner in prop::collection::vec((0i64..25, any::<i64>()), 0..150),
    ) {
        let fx = Fx::new();
        let a = fx.table("a", &outer);
        let _b = fx.table("b", &inner);
        fx.catalog.create_index(&fx.storage, "b", "k").unwrap();
        let entry_b = fx.catalog.table("b").unwrap();

        let schema = a.schema.join(&entry_b.schema);
        let mut inl = PhysPlan::new(
            PhysOp::IndexNLJoin {
                outer_key: 0,
                inner: ScanSpec {
                    table: "b".into(),
                    file: entry_b.file,
                    pages: fx.storage.file_pages(entry_b.file).unwrap() as u64,
                    rows: inner.len() as u64,
                },
                index: entry_b.indexes["k"],
                inner_column: "k".into(),
                index_height: fx.storage.index_height(entry_b.indexes["k"]).unwrap(),
                clustering: 0.0,
                residual: None,
            },
            vec![a],
            schema.clone(),
        );
        inl.assign_ids();
        let got = run_to_vec(&inl, &fx.ctx()).unwrap();

        let a2 = fx.table("a2", &outer);
        let b2 = fx.table("b2", &inner);
        let schema2 = a2.schema.join(&b2.schema);
        let mut hj = PhysPlan::new(
            PhysOp::HashJoin { build_keys: vec![0], probe_keys: vec![0] },
            vec![a2, b2],
            schema2,
        );
        hj.assign_ids();
        let expect = run_to_vec(&hj, &fx.ctx()).unwrap();
        prop_assert_eq!(canon(&got), canon(&expect));
    }

    /// Limit returns a prefix of the unlimited stream.
    #[test]
    fn limit_is_prefix(rows in prop::collection::vec((0i64..10, 0i64..10), 0..100), n in 0u64..120) {
        let fx = Fx::new();
        let base = fx.table("t", &rows);
        let schema = base.schema.clone();
        let mut plan = PhysPlan::new(PhysOp::Limit { n }, vec![base], schema);
        plan.assign_ids();
        let got = run_to_vec(&plan, &fx.ctx()).unwrap();
        prop_assert_eq!(got.len() as u64, (rows.len() as u64).min(n));
    }
}
