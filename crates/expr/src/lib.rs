//! # mq-expr — scalar expressions
//!
//! Expression trees used in filters, join predicates, projections and
//! aggregations. An expression is *built* against column names
//! (`"lineitem.l_quantity"`), *bound* against a concrete [`Schema`]
//! (resolving names to positions) and then *evaluated* against rows.
//!
//! The crate also houses [`selectivity`] — histogram-based selectivity
//! estimation. Its conjunct-independence assumption and its blindness
//! to user-defined predicates are *deliberate*: they are the estimation
//! error sources the paper identifies (§1, §2.4 footnote 2), and the
//! Dynamic Re-Optimization experiments rely on them arising naturally.

pub mod selectivity;

use std::fmt;
use std::sync::Arc;

use mq_common::{MqError, Result, Row, Schema, Value};

pub use selectivity::{estimate_selectivity, Basis, NoStats, SelEstimate, StatsView};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering result.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// Built-in "user-defined functions": opaque predicates whose
/// selectivity the optimizer cannot estimate (§2.5: UDF predicates have
/// *high* inaccuracy potential; footnote 2: "there is no way for the
/// database system to estimate the selectivity of the filter").
#[derive(Debug, Clone, PartialEq)]
pub enum Udf {
    /// Keeps rows where a stable hash of the value lands below
    /// `keep_fraction` — true selectivity is `keep_fraction`, but the
    /// optimizer only sees an opaque function.
    HashFraction {
        /// Fraction of the domain kept.
        keep_fraction: f64,
        /// Salt so different predicates decorrelate.
        salt: u64,
    },
    /// A "spatial-style" band predicate: `sin(x · freq)` above a
    /// threshold. Smoothly value-correlated, hard to histogram.
    SineBand {
        /// Frequency multiplier.
        freq: f64,
        /// Keep rows with `sin(x·freq) ≥ threshold`.
        threshold: f64,
    },
}

impl Udf {
    /// Evaluate against a value; NULL input yields false.
    pub fn apply(&self, v: &Value) -> bool {
        match self {
            Udf::HashFraction {
                keep_fraction,
                salt,
            } => match v.as_f64() {
                Some(x) => {
                    let h = splitmix(x.to_bits() ^ salt);
                    (h as f64 / u64::MAX as f64) < *keep_fraction
                }
                None => false,
            },
            Udf::SineBand { freq, threshold } => match v.as_f64() {
                Some(x) => (x * freq).sin() >= *threshold,
                None => false,
            },
        }
    }

    /// The *true* selectivity over a uniform domain, for test oracles.
    pub fn true_selectivity(&self) -> f64 {
        match self {
            Udf::HashFraction { keep_fraction, .. } => *keep_fraction,
            Udf::SineBand { threshold, .. } => {
                // Fraction of a sine period at or above the threshold.
                (1.0 - (threshold.clamp(-1.0, 1.0)).asin() * 2.0 / std::f64::consts::PI) / 2.0
            }
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A scalar expression tree.
///
/// ```
/// use mq_common::{DataType, Field, Row, Schema, Value};
/// use mq_expr::{and, between, col, eq, lit};
///
/// let schema = Schema::new(vec![
///     Field::qualified("t", "a", DataType::Int),
///     Field::qualified("t", "s", DataType::Str),
/// ]).unwrap();
/// let pred = and(vec![between(col("t.a"), 10, 20), eq(col("t.s"), lit("x"))])
///     .bind(&schema)
///     .unwrap();
/// let row = Row::new(vec![Value::Int(15), Value::str("x")]);
/// assert!(pred.eval_predicate(&row).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Unresolved column reference (name or `table.name`).
    Column(Arc<str>),
    /// Resolved column reference: position plus the display name.
    BoundColumn {
        /// Position in the input row.
        index: usize,
        /// Original name, kept for display.
        name: Arc<str>,
    },
    /// Constant.
    Literal(Value),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left side.
        left: Box<Expr>,
        /// Right side.
        right: Box<Expr>,
    },
    /// Conjunction (empty = TRUE).
    And(Vec<Expr>),
    /// Disjunction (empty = FALSE).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left side.
        left: Box<Expr>,
        /// Right side.
        right: Box<Expr>,
    },
    /// Opaque user-defined predicate over one argument.
    UdfPred {
        /// Display name.
        name: Arc<str>,
        /// Argument.
        arg: Box<Expr>,
        /// The function.
        udf: Udf,
    },
}

/// Construct a column reference.
pub fn col(name: &str) -> Expr {
    Expr::Column(name.into())
}

/// Construct a literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// `left = right`
pub fn eq(left: Expr, right: Expr) -> Expr {
    cmp(CmpOp::Eq, left, right)
}

/// Comparison helper.
pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Expr {
    Expr::Cmp {
        op,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// Conjunction helper (flattens nested ANDs).
pub fn and(exprs: Vec<Expr>) -> Expr {
    let mut flat = Vec::new();
    for e in exprs {
        match e {
            Expr::And(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    if flat.len() == 1 {
        flat.pop().unwrap()
    } else {
        Expr::And(flat)
    }
}

/// `lo ≤ col ≤ hi` as two conjuncts.
pub fn between(e: Expr, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
    and(vec![
        cmp(CmpOp::Ge, e.clone(), lit(lo)),
        cmp(CmpOp::Le, e, lit(hi)),
    ])
}

impl Expr {
    /// Resolve every column name against `schema`, producing a bound
    /// expression ready for evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<Expr> {
        Ok(match self {
            Expr::Column(name) => Expr::BoundColumn {
                index: schema.index_of(name)?,
                name: name.clone(),
            },
            Expr::BoundColumn { .. } | Expr::Literal(_) => self.clone(),
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::And(es) => Expr::And(es.iter().map(|e| e.bind(schema)).collect::<Result<_>>()?),
            Expr::Or(es) => Expr::Or(es.iter().map(|e| e.bind(schema)).collect::<Result<_>>()?),
            Expr::Not(e) => Expr::Not(Box::new(e.bind(schema)?)),
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::UdfPred { name, arg, udf } => Expr::UdfPred {
                name: name.clone(),
                arg: Box::new(arg.bind(schema)?),
                udf: udf.clone(),
            },
        })
    }

    /// Evaluate a bound expression against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Column(name) => Err(MqError::Internal(format!(
                "evaluating unbound column '{name}' (call bind first)"
            ))),
            Expr::BoundColumn { index, .. } => Ok(row.try_get(*index)?.clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Cmp { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                Ok(match l.sql_cmp(&r) {
                    Some(ord) => Value::Bool(op.matches(ord)),
                    None => Value::Null,
                })
            }
            Expr::And(es) => {
                let mut saw_null = false;
                for e in es {
                    match e.eval(row)? {
                        Value::Bool(false) => return Ok(Value::Bool(false)),
                        Value::Bool(true) => {}
                        _ => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(true)
                })
            }
            Expr::Or(es) => {
                let mut saw_null = false;
                for e in es {
                    match e.eval(row)? {
                        Value::Bool(true) => return Ok(Value::Bool(true)),
                        Value::Bool(false) => {}
                        _ => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                })
            }
            Expr::Not(e) => Ok(match e.eval(row)? {
                Value::Bool(b) => Value::Bool(!b),
                _ => Value::Null,
            }),
            Expr::Arith { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                match op {
                    ArithOp::Add => l.add(&r),
                    ArithOp::Sub => l.sub(&r),
                    ArithOp::Mul => l.mul(&r),
                    ArithOp::Div => l.div(&r),
                }
            }
            Expr::UdfPred { arg, udf, .. } => {
                let v = arg.eval(row)?;
                Ok(Value::Bool(udf.apply(&v)))
            }
        }
    }

    /// Evaluate as a predicate: true only when the result is TRUE
    /// (SQL semantics — NULL filters out).
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        Ok(self.eval(row)?.is_true())
    }

    /// Reverse [`Expr::bind`]: turn bound column positions back into
    /// name references. Used when the re-optimizer reconstructs the
    /// *remainder query* of a partially-executed physical plan (§2.4).
    pub fn unbind(&self) -> Expr {
        match self {
            Expr::BoundColumn { name, .. } => Expr::Column(name.clone()),
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.unbind()),
                right: Box::new(right.unbind()),
            },
            Expr::And(es) => Expr::And(es.iter().map(Expr::unbind).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(Expr::unbind).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.unbind())),
            Expr::Arith { op, left, right } => Expr::Arith {
                op: *op,
                left: Box::new(left.unbind()),
                right: Box::new(right.unbind()),
            },
            Expr::UdfPred { name, arg, udf } => Expr::UdfPred {
                name: name.clone(),
                arg: Box::new(arg.unbind()),
                udf: udf.clone(),
            },
        }
    }

    /// Collect every column name referenced (unbound or bound).
    pub fn referenced_columns(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            Expr::Column(n) => out.push(n.clone()),
            Expr::BoundColumn { name, .. } => out.push(name.clone()),
            _ => {}
        });
        out
    }

    /// Split a conjunction into its conjuncts (a non-AND expression is
    /// a single conjunct).
    pub fn conjuncts(&self) -> Vec<Expr> {
        match self {
            Expr::And(es) => es.iter().flat_map(|e| e.conjuncts()).collect(),
            other => vec![other.clone()],
        }
    }

    /// Whether any sub-expression is a UDF predicate.
    pub fn contains_udf(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::UdfPred { .. }) {
                found = true;
            }
        });
        found
    }

    /// Approximate per-row CPU operations to evaluate this expression
    /// (used to charge the simulated clock).
    pub fn eval_cost_ops(&self) -> u64 {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.walk(f);
                }
            }
            Expr::Not(e) => e.walk(f),
            Expr::UdfPred { arg, .. } => arg.walk(f),
            Expr::Column(_) | Expr::BoundColumn { .. } | Expr::Literal(_) => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(n) => write!(f, "{n}"),
            Expr::BoundColumn { name, .. } => write!(f, "{name}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Cmp { op, left, right } => write!(f, "{left} {op} {right}"),
            Expr::And(es) => {
                if es.is_empty() {
                    return write!(f, "TRUE");
                }
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            Expr::Or(es) => {
                if es.is_empty() {
                    return write!(f, "FALSE");
                }
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Arith { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::UdfPred { name, arg, .. } => write!(f, "{name}({arg})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("t", "a", DataType::Int),
            Field::qualified("t", "b", DataType::Float),
            Field::qualified("t", "s", DataType::Str),
        ])
        .unwrap()
    }

    fn row(a: i64, b: f64, s: &str) -> Row {
        Row::new(vec![Value::Int(a), Value::Float(b), Value::str(s)])
    }

    #[test]
    fn bind_and_eval_comparison() {
        let e = cmp(CmpOp::Lt, col("t.a"), lit(10i64))
            .bind(&schema())
            .unwrap();
        assert!(e.eval_predicate(&row(5, 0.0, "")).unwrap());
        assert!(!e.eval_predicate(&row(10, 0.0, "")).unwrap());
    }

    #[test]
    fn unbound_eval_errors() {
        let e = col("t.a");
        assert!(e.eval(&row(1, 0.0, "")).is_err());
    }

    #[test]
    fn missing_column_bind_errors() {
        assert!(col("t.zzz").bind(&schema()).is_err());
    }

    #[test]
    fn and_or_null_semantics() {
        let null_cmp = cmp(CmpOp::Eq, lit(Value::Null), lit(1i64));
        let t = cmp(CmpOp::Eq, lit(1i64), lit(1i64));
        let f_ = cmp(CmpOp::Eq, lit(1i64), lit(2i64));
        let r = row(0, 0.0, "");
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
        assert_eq!(
            and(vec![null_cmp.clone(), f_.clone()]).eval(&r).unwrap(),
            Value::Bool(false)
        );
        assert!(Expr::And(vec![null_cmp.clone(), t.clone()])
            .eval(&r)
            .unwrap()
            .is_null());
        // NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
        assert_eq!(
            Expr::Or(vec![null_cmp.clone(), t]).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert!(Expr::Or(vec![null_cmp, f_]).eval(&r).unwrap().is_null());
    }

    #[test]
    fn between_helper() {
        let e = between(col("t.b"), 1.0, 2.0).bind(&schema()).unwrap();
        assert!(e.eval_predicate(&row(0, 1.5, "")).unwrap());
        assert!(e.eval_predicate(&row(0, 1.0, "")).unwrap());
        assert!(!e.eval_predicate(&row(0, 2.5, "")).unwrap());
    }

    #[test]
    fn arithmetic_eval() {
        let e = Expr::Arith {
            op: ArithOp::Mul,
            left: Box::new(col("t.a")),
            right: Box::new(lit(3i64)),
        }
        .bind(&schema())
        .unwrap();
        assert_eq!(e.eval(&row(7, 0.0, "")).unwrap(), Value::Int(21));
    }

    #[test]
    fn udf_hash_fraction_selectivity() {
        let udf = Udf::HashFraction {
            keep_fraction: 0.25,
            salt: 7,
        };
        let kept = (0..10_000).filter(|&i| udf.apply(&Value::Int(i))).count();
        let frac = kept as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
        assert!((udf.true_selectivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn udf_sine_band() {
        let udf = Udf::SineBand {
            freq: 0.37,
            threshold: 0.0,
        };
        let kept = (0..10_000).filter(|&i| udf.apply(&Value::Int(i))).count();
        let frac = kept as f64 / 10_000.0;
        assert!((frac - udf.true_selectivity()).abs() < 0.05, "frac {frac}");
        assert!(!udf.apply(&Value::Null));
    }

    #[test]
    fn conjunct_splitting_and_columns() {
        let e = and(vec![
            eq(col("t.a"), lit(1i64)),
            and(vec![
                cmp(CmpOp::Gt, col("t.b"), lit(0.5)),
                eq(col("t.s"), lit("x")),
            ]),
        ]);
        assert_eq!(e.conjuncts().len(), 3);
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 3);
        assert!(cols.iter().any(|c| c.as_ref() == "t.b"));
    }

    #[test]
    fn display_reads_like_sql() {
        let e = and(vec![
            cmp(CmpOp::Le, col("t.a"), lit(9i64)),
            Expr::UdfPred {
                name: "inside_region".into(),
                arg: Box::new(col("t.b")),
                udf: Udf::SineBand {
                    freq: 1.0,
                    threshold: 0.5,
                },
            },
        ]);
        assert_eq!(e.to_string(), "t.a <= 9 AND inside_region(t.b)");
    }

    #[test]
    fn cost_counts_nodes() {
        let e = eq(col("a"), lit(1i64));
        assert_eq!(e.eval_cost_ops(), 3);
    }
}
