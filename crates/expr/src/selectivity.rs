//! Histogram-based selectivity estimation.
//!
//! This module is the optimizer's (and only the optimizer's) view of
//! predicates. Its limitations are faithful to the paper:
//!
//! * conjuncts are assumed **independent** — correlated multi-attribute
//!   filters (footnote 2: `R1.a = 10 and R1.b = 20`) mis-estimate;
//! * **UDF predicates** get a fixed default guess;
//! * histogram quality matters: a *serial* (end-biased) histogram
//!   answers equality almost exactly, bucket histograms approximate,
//!   and absent histograms degrade to distinct counts or pure defaults.
//!
//! Every estimate reports the [`Basis`] it rests on; the SCIA (in
//! `mq-reopt`) maps bases to the paper's inaccuracy-potential levels.

use mq_catalog::ColumnStats;
use mq_common::{EngineConfig, Value};
use mq_stats::HistogramKind;

use crate::{CmpOp, Expr};

/// Read-only statistics lookup used during estimation. The optimizer
/// implements this for base tables and for derived intermediate
/// results.
pub trait StatsView {
    /// Stats for a (possibly qualified) column name, if known.
    fn column(&self, name: &str) -> Option<&ColumnStats>;
    /// Row count of the relation the columns belong to.
    fn rows(&self) -> f64;
}

/// Empty stats: everything estimated from defaults.
pub struct NoStats;

impl StatsView for NoStats {
    fn column(&self, _: &str) -> Option<&ColumnStats> {
        None
    }
    fn rows(&self) -> f64 {
        0.0
    }
}

/// What an estimate was computed from, ordered from most to least
/// trustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Basis {
    /// Serial (end-biased) histogram answered an equality — near exact.
    SerialHistogram,
    /// A bucket histogram (equi-width/depth, MaxDiff) answered.
    BucketHistogram,
    /// Only min/max interpolation was available.
    Bounds,
    /// Only a distinct count was available.
    DistinctOnly,
    /// Column-to-column predicate within one relation.
    ColumnColumn,
    /// Pure default constant.
    DefaultGuess,
    /// User-defined predicate — the optimizer is blind.
    Udf,
}

impl Basis {
    fn weaker(self, other: Basis) -> Basis {
        self.max(other)
    }
}

/// A selectivity estimate with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct SelEstimate {
    /// Estimated fraction of rows satisfying the predicate, in [0, 1].
    pub selectivity: f64,
    /// Weakest information source used anywhere in the expression.
    pub basis: Basis,
    /// Whether the predicate references two or more distinct columns —
    /// the §2.5 correlation rule raises inaccuracy a level for these.
    pub multi_column: bool,
}

impl SelEstimate {
    fn new(selectivity: f64, basis: Basis) -> SelEstimate {
        SelEstimate {
            selectivity: selectivity.clamp(0.0, 1.0),
            basis,
            multi_column: false,
        }
    }
}

/// Estimate the selectivity of `expr` against `stats`.
pub fn estimate_selectivity(expr: &Expr, stats: &dyn StatsView, cfg: &EngineConfig) -> SelEstimate {
    let mut est = estimate_inner(expr, stats, cfg);
    let mut cols: Vec<std::sync::Arc<str>> = expr.referenced_columns();
    cols.sort();
    cols.dedup();
    est.multi_column = cols.len() >= 2;
    est
}

fn estimate_inner(expr: &Expr, stats: &dyn StatsView, cfg: &EngineConfig) -> SelEstimate {
    match expr {
        Expr::And(es) => {
            let mut sel = 1.0;
            let mut basis = Basis::SerialHistogram;
            for e in es {
                let part = estimate_inner(e, stats, cfg);
                sel *= part.selectivity;
                basis = basis.weaker(part.basis);
            }
            SelEstimate::new(sel, basis)
        }
        Expr::Or(es) => {
            let mut keep_none = 1.0;
            let mut basis = Basis::SerialHistogram;
            for e in es {
                let part = estimate_inner(e, stats, cfg);
                keep_none *= 1.0 - part.selectivity;
                basis = basis.weaker(part.basis);
            }
            SelEstimate::new(1.0 - keep_none, basis)
        }
        Expr::Not(e) => {
            let part = estimate_inner(e, stats, cfg);
            SelEstimate::new(1.0 - part.selectivity, part.basis)
        }
        Expr::UdfPred { .. } => SelEstimate::new(cfg.udf_selectivity, Basis::Udf),
        Expr::Cmp { op, left, right } => estimate_cmp(*op, left, right, stats, cfg),
        Expr::Literal(Value::Bool(b)) => {
            SelEstimate::new(if *b { 1.0 } else { 0.0 }, Basis::SerialHistogram)
        }
        _ => SelEstimate::new(cfg.default_range_selectivity, Basis::DefaultGuess),
    }
}

fn estimate_cmp(
    op: CmpOp,
    left: &Expr,
    right: &Expr,
    stats: &dyn StatsView,
    cfg: &EngineConfig,
) -> SelEstimate {
    // Normalize to column-op-literal when possible.
    match (
        column_name(left),
        literal_value(right),
        column_name(right),
        literal_value(left),
    ) {
        (Some(colname), Some(v), _, _) => estimate_col_lit(op, colname, v, stats, cfg),
        (_, _, Some(colname), Some(v)) => estimate_col_lit(op.flip(), colname, v, stats, cfg),
        _ => {
            // Column-to-column within one relation (rare in the
            // workload; joins are handled by the optimizer directly).
            if column_name(left).is_some() && column_name(right).is_some() {
                let sel = match op {
                    CmpOp::Eq => {
                        let d1 = column_name(left)
                            .and_then(|c| stats.column(c))
                            .map(|s| s.distinct)
                            .unwrap_or(0.0);
                        let d2 = column_name(right)
                            .and_then(|c| stats.column(c))
                            .map(|s| s.distinct)
                            .unwrap_or(0.0);
                        let d = d1.max(d2);
                        if d > 1.0 {
                            1.0 / d
                        } else {
                            cfg.default_eq_selectivity
                        }
                    }
                    CmpOp::Ne => 1.0 - cfg.default_eq_selectivity,
                    _ => cfg.default_range_selectivity,
                };
                SelEstimate::new(sel, Basis::ColumnColumn)
            } else {
                SelEstimate::new(cfg.default_range_selectivity, Basis::DefaultGuess)
            }
        }
    }
}

fn estimate_col_lit(
    op: CmpOp,
    colname: &str,
    v: &Value,
    stats: &dyn StatsView,
    cfg: &EngineConfig,
) -> SelEstimate {
    let col = stats.column(colname);
    let rank = v.as_f64();
    match op {
        CmpOp::Eq => {
            if let (Some(c), Some(r)) = (col, rank) {
                if let Some(h) = &c.histogram {
                    let basis = if c.histogram_kind == Some(HistogramKind::EndBiased) {
                        Basis::SerialHistogram
                    } else {
                        Basis::BucketHistogram
                    };
                    return SelEstimate::new(h.sel_eq(r), basis);
                }
                if c.distinct > 1.0 {
                    return SelEstimate::new((1.0 - c.null_frac) / c.distinct, Basis::DistinctOnly);
                }
            }
            SelEstimate::new(cfg.default_eq_selectivity, Basis::DefaultGuess)
        }
        CmpOp::Ne => {
            let eq = estimate_col_lit(CmpOp::Eq, colname, v, stats, cfg);
            SelEstimate::new(1.0 - eq.selectivity, eq.basis)
        }
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            if let (Some(c), Some(r)) = (col, rank) {
                if let Some(h) = &c.histogram {
                    let sel = match op {
                        CmpOp::Lt | CmpOp::Le => h.sel_range(None, Some(r)),
                        _ => h.sel_range(Some(r), None),
                    };
                    return SelEstimate::new(sel, Basis::BucketHistogram);
                }
                if let (Some(lo), Some(hi)) = (
                    c.min.as_ref().and_then(Value::as_f64),
                    c.max.as_ref().and_then(Value::as_f64),
                ) {
                    if hi > lo {
                        let frac = ((r - lo) / (hi - lo)).clamp(0.0, 1.0);
                        let sel = match op {
                            CmpOp::Lt | CmpOp::Le => frac,
                            _ => 1.0 - frac,
                        };
                        return SelEstimate::new(sel * (1.0 - c.null_frac), Basis::Bounds);
                    }
                }
            }
            SelEstimate::new(cfg.default_range_selectivity, Basis::DefaultGuess)
        }
    }
}

fn column_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column(n) => Some(n),
        Expr::BoundColumn { name, .. } => Some(name),
        _ => None,
    }
}

fn literal_value(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{and, between, cmp, col, eq, lit, Udf};
    use mq_catalog::ColumnStats;
    use mq_stats::Histogram;
    use std::collections::HashMap;

    struct Fake {
        cols: HashMap<String, ColumnStats>,
        rows: f64,
    }

    impl StatsView for Fake {
        fn column(&self, name: &str) -> Option<&ColumnStats> {
            // Accept both bare and qualified lookups.
            self.cols
                .get(name)
                .or_else(|| name.split_once('.').and_then(|(_, n)| self.cols.get(n)))
        }
        fn rows(&self) -> f64 {
            self.rows
        }
    }

    fn uniform_stats(kind: HistogramKind) -> Fake {
        let sample: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64).collect();
        let h = Histogram::build(kind, &sample, 16, 0.0, 100.0);
        let mut cols = HashMap::new();
        cols.insert(
            "a".to_string(),
            ColumnStats {
                min: Some(Value::Int(0)),
                max: Some(Value::Int(99)),
                distinct: 100.0,
                null_frac: 0.0,
                histogram: Some(h),
                histogram_kind: Some(kind),
                clustering: 0.0,
            },
        );
        cols.insert(
            "b".to_string(),
            ColumnStats {
                min: Some(Value::Int(0)),
                max: Some(Value::Int(999)),
                distinct: 1000.0,
                null_frac: 0.0,
                histogram: None,
                histogram_kind: None,
                clustering: 0.0,
            },
        );
        Fake {
            cols,
            rows: 10_000.0,
        }
    }

    #[test]
    fn equality_with_histogram() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::MaxDiff);
        let e = eq(col("t.a"), lit(7i64));
        let est = estimate_selectivity(&e, &st, &cfg);
        assert!((est.selectivity - 0.01).abs() < 0.01, "{}", est.selectivity);
        assert_eq!(est.basis, Basis::BucketHistogram);
        assert!(!est.multi_column);
    }

    #[test]
    fn serial_histogram_basis() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::EndBiased);
        let est = estimate_selectivity(&eq(col("a"), lit(7i64)), &st, &cfg);
        assert_eq!(est.basis, Basis::SerialHistogram);
    }

    #[test]
    fn range_with_histogram() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::EquiDepth);
        let e = cmp(CmpOp::Le, col("a"), lit(24i64));
        let est = estimate_selectivity(&e, &st, &cfg);
        assert!((est.selectivity - 0.25).abs() < 0.08, "{}", est.selectivity);
    }

    #[test]
    fn range_falls_back_to_bounds() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::MaxDiff);
        let e = cmp(CmpOp::Lt, col("b"), lit(500i64));
        let est = estimate_selectivity(&e, &st, &cfg);
        assert!((est.selectivity - 0.5).abs() < 0.01);
        assert_eq!(est.basis, Basis::Bounds);
    }

    #[test]
    fn eq_falls_back_to_distinct_then_default() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::MaxDiff);
        let est = estimate_selectivity(&eq(col("b"), lit(3i64)), &st, &cfg);
        assert!((est.selectivity - 0.001).abs() < 1e-9);
        assert_eq!(est.basis, Basis::DistinctOnly);
        let est = estimate_selectivity(&eq(col("zzz"), lit(3i64)), &st, &cfg);
        assert_eq!(est.basis, Basis::DefaultGuess);
        assert!((est.selectivity - cfg.default_eq_selectivity).abs() < 1e-12);
    }

    #[test]
    fn conjunction_multiplies_and_flags_multi_column() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::MaxDiff);
        let e = and(vec![
            cmp(CmpOp::Le, col("a"), lit(49i64)),
            cmp(CmpOp::Le, col("b"), lit(499i64)),
        ]);
        let est = estimate_selectivity(&e, &st, &cfg);
        assert!((est.selectivity - 0.25).abs() < 0.05, "{}", est.selectivity);
        assert!(est.multi_column);
        assert_eq!(est.basis, Basis::Bounds, "weakest basis wins");
    }

    #[test]
    fn udf_is_blind_guess() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::MaxDiff);
        let e = Expr::UdfPred {
            name: "f".into(),
            arg: Box::new(col("a")),
            udf: Udf::HashFraction {
                keep_fraction: 0.9,
                salt: 0,
            },
        };
        let est = estimate_selectivity(&e, &st, &cfg);
        assert_eq!(est.basis, Basis::Udf);
        assert!((est.selectivity - cfg.udf_selectivity).abs() < 1e-12);
    }

    #[test]
    fn between_is_product_of_halves() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::EquiDepth);
        let e = between(col("a"), 25i64, 74i64);
        let est = estimate_selectivity(&e, &st, &cfg);
        // ≥25 (0.75) × ≤74 (0.75) ≈ 0.56 under independence — the known
        // over/under-estimation of conjunctive ranges.
        assert!(
            est.selectivity > 0.4 && est.selectivity < 0.7,
            "{}",
            est.selectivity
        );
    }

    #[test]
    fn flipped_literal_side() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::EquiDepth);
        let e = cmp(CmpOp::Ge, lit(24i64), col("a")); // 24 >= a ⇔ a <= 24
        let est = estimate_selectivity(&e, &st, &cfg);
        assert!((est.selectivity - 0.25).abs() < 0.08, "{}", est.selectivity);
    }

    #[test]
    fn not_and_or() {
        let cfg = EngineConfig::default();
        let st = uniform_stats(HistogramKind::EquiDepth);
        let half = cmp(CmpOp::Lt, col("a"), lit(50i64));
        let est = estimate_selectivity(&Expr::Not(Box::new(half.clone())), &st, &cfg);
        assert!((est.selectivity - 0.5).abs() < 0.05);
        let est = estimate_selectivity(&Expr::Or(vec![half.clone(), half]), &st, &cfg);
        assert!((est.selectivity - 0.75).abs() < 0.05);
    }
}
