//! Expression evaluation and selectivity properties.

use mq_common::{DataType, EngineConfig, Field, Row, Schema, Value};
use mq_expr::{and, cmp, estimate_selectivity, lit, CmpOp, Expr, NoStats};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Field::qualified("t", "a", DataType::Int),
        Field::qualified("t", "b", DataType::Float),
        Field::qualified("t", "c", DataType::Str),
    ])
    .unwrap()
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(mq_expr::col("t.a")),
        Just(mq_expr::col("t.b")),
        Just(mq_expr::col("t.c")),
        any::<i64>().prop_map(lit),
        (-1e9f64..1e9).prop_map(lit),
        "[a-z]{0,8}".prop_map(lit),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let cmpop = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let leaf_cmp = (cmpop, arb_leaf(), arb_leaf()).prop_map(|(op, l, r)| cmp(op, l, r));
    leaf_cmp.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_row() -> impl Strategy<Value = Row> {
    (any::<i64>(), -1e9f64..1e9, "[a-z]{0,8}")
        .prop_map(|(a, b, c)| Row::new(vec![Value::Int(a), Value::Float(b), Value::str(c)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bound predicates always evaluate without panicking, to a Bool or
    /// Null.
    #[test]
    fn eval_total(p in arb_pred(), row in arb_row()) {
        let bound = p.bind(&schema()).unwrap();
        let v = bound.eval(&row).unwrap();
        prop_assert!(
            matches!(v, Value::Bool(_) | Value::Null),
            "predicate produced {v:?}"
        );
    }

    /// NOT is an involution under three-valued logic.
    #[test]
    fn double_negation(p in arb_pred(), row in arb_row()) {
        let bound = p.bind(&schema()).unwrap();
        let nn = Expr::Not(Box::new(Expr::Not(Box::new(bound.clone()))));
        prop_assert_eq!(nn.eval(&row).unwrap(), bound.eval(&row).unwrap());
    }

    /// `unbind` then `bind` is the identity on evaluation.
    #[test]
    fn unbind_bind_roundtrip(p in arb_pred(), row in arb_row()) {
        let bound = p.bind(&schema()).unwrap();
        let rebound = bound.unbind().bind(&schema()).unwrap();
        prop_assert_eq!(rebound.eval(&row).unwrap(), bound.eval(&row).unwrap());
    }

    /// Selectivity is always a probability, even with no statistics.
    #[test]
    fn selectivity_bounded(p in arb_pred()) {
        let cfg = EngineConfig::default();
        let est = estimate_selectivity(&p, &NoStats, &cfg);
        prop_assert!((0.0..=1.0).contains(&est.selectivity), "{}", est.selectivity);
    }

    /// Conjunction never has higher estimated selectivity than its
    /// parts.
    #[test]
    fn conjunction_shrinks(p in arb_pred(), q in arb_pred()) {
        let cfg = EngineConfig::default();
        let sp = estimate_selectivity(&p, &NoStats, &cfg).selectivity;
        let spq = estimate_selectivity(&and(vec![p, q]), &NoStats, &cfg).selectivity;
        prop_assert!(spq <= sp + 1e-9);
    }

    /// BETWEEN desugars into bounds that actually bracket.
    #[test]
    fn between_brackets(x in -1000i64..1000, lo in -1000i64..1000, hi in -1000i64..1000) {
        let e = mq_expr::between(mq_expr::col("t.a"), lo, hi)
            .bind(&schema())
            .unwrap();
        let row = Row::new(vec![Value::Int(x), Value::Float(0.0), Value::str("")]);
        prop_assert_eq!(e.eval_predicate(&row).unwrap(), x >= lo && x <= hi);
    }
}
