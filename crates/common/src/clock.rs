//! The simulated-cost clock.
//!
//! Paradise measured wall-clock seconds on a four-node cluster; this
//! reproduction instead *counts* every physical page read/write (through
//! the buffer pool), every tuple-level CPU operation, and every
//! optimizer work unit, then converts the counts into a deterministic
//! "simulated time" using the [`crate::EngineConfig`] cost constants.
//! Determinism is what lets every figure in EXPERIMENTS.md be
//! regenerated bit-for-bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::config::EngineConfig;

/// Shared counters for the four cost dimensions. Cloning shares the
/// underlying counters.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    cpu_ops: AtomicU64,
    opt_work: AtomicU64,
}

/// A point-in-time copy of the counters; subtract two snapshots to cost
/// an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostSnapshot {
    /// Physical page reads.
    pub pages_read: u64,
    /// Physical page writes.
    pub pages_written: u64,
    /// Tuple-level CPU operations.
    pub cpu_ops: u64,
    /// Optimizer work units (DP candidate costings).
    pub opt_work: u64,
}

impl CostSnapshot {
    /// Element-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            cpu_ops: self.cpu_ops.saturating_sub(earlier.cpu_ops),
            opt_work: self.opt_work.saturating_sub(earlier.opt_work),
        }
    }

    /// Convert counts into simulated milliseconds.
    pub fn time_ms(&self, cfg: &EngineConfig) -> f64 {
        self.pages_read as f64 * cfg.io_read_ms
            + self.pages_written as f64 * cfg.io_write_ms
            + self.cpu_ops as f64 * cfg.cpu_op_ms
            + self.opt_work as f64 * cfg.opt_work_ms
    }

    /// Total physical I/O count.
    pub fn io_total(&self) -> u64 {
        self.pages_read + self.pages_written
    }
}

impl SimClock {
    /// A fresh clock with all counters at zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Record `n` physical page reads.
    pub fn add_reads(&self, n: u64) {
        self.inner.pages_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` physical page writes.
    pub fn add_writes(&self, n: u64) {
        self.inner.pages_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` tuple-level CPU operations.
    pub fn add_cpu(&self, n: u64) {
        self.inner.cpu_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` optimizer work units (used to charge `T_opt` when the
    /// optimizer is re-invoked mid-query).
    pub fn add_opt_work(&self, n: u64) {
        self.inner.opt_work.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            pages_read: self.inner.pages_read.load(Ordering::Relaxed),
            pages_written: self.inner.pages_written.load(Ordering::Relaxed),
            cpu_ops: self.inner.cpu_ops.load(Ordering::Relaxed),
            opt_work: self.inner.opt_work.load(Ordering::Relaxed),
        }
    }

    /// Current simulated time since the clock was created.
    pub fn elapsed_ms(&self, cfg: &EngineConfig) -> f64 {
        self.snapshot().time_ms(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_costing() {
        let clock = SimClock::new();
        clock.add_reads(10);
        clock.add_writes(5);
        clock.add_cpu(1000);
        clock.add_opt_work(20);

        let cfg = EngineConfig::default();
        let snap = clock.snapshot();
        let expect = 10.0 * cfg.io_read_ms
            + 5.0 * cfg.io_write_ms
            + 1000.0 * cfg.cpu_op_ms
            + 20.0 * cfg.opt_work_ms;
        assert!((snap.time_ms(&cfg) - expect).abs() < 1e-9);
        assert_eq!(snap.io_total(), 15);
    }

    #[test]
    fn snapshots_diff() {
        let clock = SimClock::new();
        clock.add_reads(3);
        let a = clock.snapshot();
        clock.add_reads(4);
        clock.add_cpu(7);
        let b = clock.snapshot();
        let d = b.since(&a);
        assert_eq!(d.pages_read, 4);
        assert_eq!(d.cpu_ops, 7);
        assert_eq!(d.pages_written, 0);
    }

    #[test]
    fn clones_share_counters() {
        let clock = SimClock::new();
        let c2 = clock.clone();
        c2.add_writes(2);
        assert_eq!(clock.snapshot().pages_written, 2);
    }
}
