//! The simulated-cost clock.
//!
//! Paradise measured wall-clock seconds on a four-node cluster; this
//! reproduction instead *counts* every physical page read/write (through
//! the buffer pool), every tuple-level CPU operation, and every
//! optimizer work unit, then converts the counts into a deterministic
//! "simulated time" using the [`crate::EngineConfig`] cost constants.
//! Determinism is what lets every figure in EXPERIMENTS.md be
//! regenerated bit-for-bit.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::config::EngineConfig;

/// Shared counters for the four cost dimensions. Cloning shares the
/// underlying counters.
///
/// ## Per-query attribution under concurrency
///
/// A clock can be a [`SimClock::child`] of another: charges to the
/// child also propagate to its parent, so a per-job clock feeds the
/// engine-wide aggregate for free. Components built before the job
/// existed (the shared storage layer holds the *global* clock) are
/// redirected through a thread-local scope: while a
/// [`SimClock::enter_scope`] guard for a child clock is alive on the
/// current thread, any charge made against that child's parent is
/// booked to the child instead (and still reaches the parent exactly
/// once). This gives per-query cost attribution without threading a
/// clock through every storage call site.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: Arc<Counters>,
    parent: Option<Arc<Counters>>,
}

thread_local! {
    static CLOCK_SCOPE: RefCell<Vec<SimClock>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard from [`SimClock::enter_scope`]; popping restores the
/// previously scoped clock (scopes nest).
pub struct ClockScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ClockScope {
    fn drop(&mut self) {
        CLOCK_SCOPE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[derive(Debug, Default)]
struct Counters {
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    cpu_ops: AtomicU64,
    opt_work: AtomicU64,
    /// Simulated milliseconds *saved* by partitioned parallelism, stored
    /// as `f64` bits. Resource counters above stay sums over all work;
    /// per-stage elapsed time is max-over-partitions, and the difference
    /// (sum − max) accumulates here so `elapsed − saved` reproduces the
    /// parallel wall-clock deterministically for any partition count.
    parallel_saved_ms_bits: AtomicU64,
}

impl Counters {
    fn add_saved_ms(&self, ms: f64) {
        let mut cur = self.parallel_saved_ms_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + ms).to_bits();
            match self.parallel_saved_ms_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A point-in-time copy of the counters; subtract two snapshots to cost
/// an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostSnapshot {
    /// Physical page reads.
    pub pages_read: u64,
    /// Physical page writes.
    pub pages_written: u64,
    /// Tuple-level CPU operations.
    pub cpu_ops: u64,
    /// Optimizer work units (DP candidate costings).
    pub opt_work: u64,
}

impl CostSnapshot {
    /// Element-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            cpu_ops: self.cpu_ops.saturating_sub(earlier.cpu_ops),
            opt_work: self.opt_work.saturating_sub(earlier.opt_work),
        }
    }

    /// Convert counts into simulated milliseconds.
    pub fn time_ms(&self, cfg: &EngineConfig) -> f64 {
        self.pages_read as f64 * cfg.io_read_ms
            + self.pages_written as f64 * cfg.io_write_ms
            + self.cpu_ops as f64 * cfg.cpu_op_ms
            + self.opt_work as f64 * cfg.opt_work_ms
    }

    /// Total physical I/O count.
    pub fn io_total(&self) -> u64 {
        self.pages_read + self.pages_written
    }
}

impl SimClock {
    /// A fresh clock with all counters at zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// A zeroed clock whose charges also propagate to `self` (one
    /// level; children of children still propagate only to their
    /// immediate parent).
    pub fn child(&self) -> SimClock {
        SimClock {
            inner: Arc::new(Counters::default()),
            parent: Some(Arc::clone(&self.inner)),
        }
    }

    /// Whether `self` and `other` share the same counters.
    pub fn same_counters(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Make this clock the charge target for the current thread until
    /// the returned guard drops: charges against this clock's *parent*
    /// made on this thread are redirected here (see the type docs).
    pub fn enter_scope(&self) -> ClockScope {
        CLOCK_SCOPE.with(|s| s.borrow_mut().push(self.clone()));
        ClockScope {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Book a charge, honouring redirection and parent propagation.
    /// Every affected counter set is bumped exactly once.
    fn charge(&self, f: impl Fn(&Counters)) {
        let redirected = CLOCK_SCOPE.with(|s| {
            let stack = s.borrow();
            if let Some(scoped) = stack.last() {
                let to_parent_of_scope = !Arc::ptr_eq(&scoped.inner, &self.inner)
                    && scoped
                        .parent
                        .as_ref()
                        .is_some_and(|p| Arc::ptr_eq(p, &self.inner));
                if to_parent_of_scope {
                    f(&scoped.inner);
                    f(&self.inner);
                    return true;
                }
            }
            false
        });
        if redirected {
            return;
        }
        f(&self.inner);
        if let Some(p) = &self.parent {
            f(p);
        }
    }

    /// Record `n` physical page reads.
    pub fn add_reads(&self, n: u64) {
        self.charge(|c| {
            c.pages_read.fetch_add(n, Ordering::Relaxed);
        });
    }

    /// Record `n` physical page writes.
    pub fn add_writes(&self, n: u64) {
        self.charge(|c| {
            c.pages_written.fetch_add(n, Ordering::Relaxed);
        });
    }

    /// Record `n` tuple-level CPU operations.
    pub fn add_cpu(&self, n: u64) {
        self.charge(|c| {
            c.cpu_ops.fetch_add(n, Ordering::Relaxed);
        });
    }

    /// Record `n` optimizer work units (used to charge `T_opt` when the
    /// optimizer is re-invoked mid-query).
    pub fn add_opt_work(&self, n: u64) {
        self.charge(|c| {
            c.opt_work.fetch_add(n, Ordering::Relaxed);
        });
    }

    /// Record simulated milliseconds saved by running partitions in
    /// parallel (sum-over-buckets minus max-over-partitions for one
    /// exchange stage). Propagates like any other charge so per-job and
    /// global clocks stay consistent.
    pub fn add_parallel_saved_ms(&self, ms: f64) {
        if ms <= 0.0 || !ms.is_finite() {
            return;
        }
        self.charge(|c| c.add_saved_ms(ms));
    }

    /// Total simulated milliseconds saved by parallelism so far.
    pub fn parallel_saved_ms(&self) -> f64 {
        f64::from_bits(self.inner.parallel_saved_ms_bits.load(Ordering::Relaxed))
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            pages_read: self.inner.pages_read.load(Ordering::Relaxed),
            pages_written: self.inner.pages_written.load(Ordering::Relaxed),
            cpu_ops: self.inner.cpu_ops.load(Ordering::Relaxed),
            opt_work: self.inner.opt_work.load(Ordering::Relaxed),
        }
    }

    /// Current simulated time since the clock was created.
    pub fn elapsed_ms(&self, cfg: &EngineConfig) -> f64 {
        self.snapshot().time_ms(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_costing() {
        let clock = SimClock::new();
        clock.add_reads(10);
        clock.add_writes(5);
        clock.add_cpu(1000);
        clock.add_opt_work(20);

        let cfg = EngineConfig::default();
        let snap = clock.snapshot();
        let expect = 10.0 * cfg.io_read_ms
            + 5.0 * cfg.io_write_ms
            + 1000.0 * cfg.cpu_op_ms
            + 20.0 * cfg.opt_work_ms;
        assert!((snap.time_ms(&cfg) - expect).abs() < 1e-9);
        assert_eq!(snap.io_total(), 15);
    }

    #[test]
    fn snapshots_diff() {
        let clock = SimClock::new();
        clock.add_reads(3);
        let a = clock.snapshot();
        clock.add_reads(4);
        clock.add_cpu(7);
        let b = clock.snapshot();
        let d = b.since(&a);
        assert_eq!(d.pages_read, 4);
        assert_eq!(d.cpu_ops, 7);
        assert_eq!(d.pages_written, 0);
    }

    #[test]
    fn clones_share_counters() {
        let clock = SimClock::new();
        let c2 = clock.clone();
        c2.add_writes(2);
        assert_eq!(clock.snapshot().pages_written, 2);
    }

    #[test]
    fn child_propagates_to_parent() {
        let global = SimClock::new();
        let job = global.child();
        job.add_reads(5);
        assert_eq!(job.snapshot().pages_read, 5);
        assert_eq!(global.snapshot().pages_read, 5);
        // Parent charges do not leak into the child.
        global.add_reads(2);
        assert_eq!(job.snapshot().pages_read, 5);
        assert_eq!(global.snapshot().pages_read, 7);
    }

    #[test]
    fn scope_redirects_parent_charges_without_double_count() {
        let global = SimClock::new();
        let job = global.child();
        {
            let _scope = job.enter_scope();
            // Storage-style charge against the global clock: lands on
            // the scoped job clock AND the global one, each once.
            global.add_writes(3);
            // Direct charge on the job clock: also exactly once each.
            job.add_cpu(10);
        }
        assert_eq!(job.snapshot().pages_written, 3);
        assert_eq!(global.snapshot().pages_written, 3);
        assert_eq!(job.snapshot().cpu_ops, 10);
        assert_eq!(global.snapshot().cpu_ops, 10);
        // Scope dropped: global charges stay global.
        global.add_writes(1);
        assert_eq!(job.snapshot().pages_written, 3);
        assert_eq!(global.snapshot().pages_written, 4);
    }

    #[test]
    fn scope_ignores_unrelated_clocks() {
        let global = SimClock::new();
        let other = SimClock::new();
        let job = global.child();
        let _scope = job.enter_scope();
        other.add_reads(4);
        assert_eq!(other.snapshot().pages_read, 4);
        assert_eq!(job.snapshot().pages_read, 0);
        assert_eq!(global.snapshot().pages_read, 0);
    }

    #[test]
    fn parallel_saved_ms_accumulates_and_propagates() {
        let global = SimClock::new();
        let job = global.child();
        job.add_parallel_saved_ms(12.5);
        job.add_parallel_saved_ms(7.5);
        assert!((job.parallel_saved_ms() - 20.0).abs() < 1e-12);
        assert!((global.parallel_saved_ms() - 20.0).abs() < 1e-12);
        // Non-positive and non-finite amounts are ignored.
        job.add_parallel_saved_ms(-1.0);
        job.add_parallel_saved_ms(f64::NAN);
        assert!((job.parallel_saved_ms() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn scopes_are_per_thread() {
        let global = SimClock::new();
        let job = global.child();
        let _scope = job.enter_scope();
        let g2 = global.clone();
        std::thread::spawn(move || g2.add_reads(6)).join().unwrap();
        // The other thread had no scope: nothing reached the job clock.
        assert_eq!(job.snapshot().pages_read, 0);
        assert_eq!(global.snapshot().pages_read, 6);
    }
}
