//! Engine-wide error type.
//!
//! One flat error enum keeps cross-crate plumbing simple: every layer
//! of the engine (storage, catalog, optimizer, executor, SQL frontend)
//! returns [`Result<T>`]. Variants carry enough context to diagnose a
//! failure without backtraces.

use std::fmt;

/// The engine-wide result alias.
pub type Result<T> = std::result::Result<T, MqError>;

/// All errors the midq engine can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqError {
    /// A named catalog object (table, index, column) does not exist.
    NotFound(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// A value had the wrong [`crate::DataType`] for the operation.
    TypeMismatch(String),
    /// A schema-level inconsistency (arity mismatch, duplicate column, ...).
    SchemaError(String),
    /// The simulated disk or buffer pool failed an invariant
    /// (out-of-range page, double free, pin-count underflow, ...).
    Storage(String),
    /// The executor detected an inconsistency at run time.
    Execution(String),
    /// The optimizer could not produce a plan for the query.
    Plan(String),
    /// The SQL frontend rejected the input text.
    Parse(String),
    /// The memory manager could not satisfy even minimum demands.
    OutOfMemory(String),
    /// A configuration knob was out of its legal range.
    InvalidConfig(String),
    /// Generic invariant violation — a bug in the engine, not the query.
    Internal(String),
    /// The query was cancelled (explicit request or deadline expiry),
    /// detected cooperatively at a segment boundary.
    Cancelled(String),
    /// A simulated process kill: the query's in-flight state is
    /// abandoned *without* cleanup, exactly as a real kill would leave
    /// it. Unlike every other variant this one must NOT run the
    /// engine's `CleanupGuard` — the engine forgets the guard and
    /// leaves recovery to the checkpoint manifest.
    Crash(String),
    /// Not an error: a control-flow signal used by the Dynamic
    /// Re-Optimization controller to unwind execution at a plan-switch
    /// point (§2.4). Carries the plan node id of the cut. Operators
    /// must propagate it untouched; only the controller catches it.
    PlanSwitch(usize),
}

/// Message prefix marking a [`MqError::Storage`] error as transient
/// (retryable at a segment boundary). A prefix instead of a dedicated
/// variant keeps every existing `match` on the flat enum valid.
const TRANSIENT_PREFIX: &str = "transient: ";

impl MqError {
    /// A storage error that is expected to succeed on retry; the
    /// engine re-runs the current segment from its materialized inputs
    /// instead of failing the query.
    pub fn storage_transient(msg: impl Into<String>) -> MqError {
        MqError::Storage(format!("{TRANSIENT_PREFIX}{}", msg.into()))
    }

    /// True for storage errors created via
    /// [`MqError::storage_transient`] — the segment-retry policy keys
    /// off this.
    pub fn is_transient(&self) -> bool {
        matches!(self, MqError::Storage(m) if m.starts_with(TRANSIENT_PREFIX))
    }

    /// Short machine-readable category name, used in logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            MqError::NotFound(_) => "not_found",
            MqError::AlreadyExists(_) => "already_exists",
            MqError::TypeMismatch(_) => "type_mismatch",
            MqError::SchemaError(_) => "schema",
            MqError::Storage(_) => "storage",
            MqError::Execution(_) => "execution",
            MqError::Plan(_) => "plan",
            MqError::Parse(_) => "parse",
            MqError::OutOfMemory(_) => "oom",
            MqError::InvalidConfig(_) => "config",
            MqError::Internal(_) => "internal",
            MqError::Cancelled(_) => "cancelled",
            MqError::Crash(_) => "crash",
            MqError::PlanSwitch(_) => "plan_switch",
        }
    }
}

impl fmt::Display for MqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqError::NotFound(m) => write!(f, "not found: {m}"),
            MqError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            MqError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            MqError::SchemaError(m) => write!(f, "schema error: {m}"),
            MqError::Storage(m) => write!(f, "storage error: {m}"),
            MqError::Execution(m) => write!(f, "execution error: {m}"),
            MqError::Plan(m) => write!(f, "planning error: {m}"),
            MqError::Parse(m) => write!(f, "parse error: {m}"),
            MqError::OutOfMemory(m) => write!(f, "out of memory: {m}"),
            MqError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            MqError::Internal(m) => write!(f, "internal error: {m}"),
            MqError::Cancelled(m) => write!(f, "cancelled: {m}"),
            MqError::Crash(m) => write!(f, "crash: {m}"),
            MqError::PlanSwitch(n) => write!(f, "plan switch requested at node {n}"),
        }
    }
}

impl std::error::Error for MqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = MqError::NotFound("table lineitem".into());
        assert_eq!(e.to_string(), "not found: table lineitem");
    }

    #[test]
    fn kinds_are_distinct() {
        use std::collections::HashSet;
        let errs = [
            MqError::NotFound(String::new()),
            MqError::AlreadyExists(String::new()),
            MqError::TypeMismatch(String::new()),
            MqError::SchemaError(String::new()),
            MqError::Storage(String::new()),
            MqError::Execution(String::new()),
            MqError::Plan(String::new()),
            MqError::Parse(String::new()),
            MqError::OutOfMemory(String::new()),
            MqError::InvalidConfig(String::new()),
            MqError::Internal(String::new()),
            MqError::Cancelled(String::new()),
            MqError::Crash(String::new()),
            MqError::PlanSwitch(0),
        ];
        let kinds: HashSet<_> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errs.len());
    }

    #[test]
    fn transient_marker_round_trips() {
        let t = MqError::storage_transient("disk hiccup on page 7");
        assert!(t.is_transient());
        assert_eq!(t.kind(), "storage");
        assert_eq!(
            t.to_string(),
            "storage error: transient: disk hiccup on page 7"
        );
        assert!(!MqError::Storage("page out of range".into()).is_transient());
        assert!(!MqError::Cancelled("transient: nope".into()).is_transient());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MqError>();
    }
}
