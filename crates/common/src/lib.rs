//! # mq-common — shared substrate types for the midq engine
//!
//! This crate holds the vocabulary types every other crate in the
//! workspace speaks: [`Value`]s and [`DataType`]s, [`Schema`]s and
//! [`Row`]s, the engine-wide [`error::MqError`] type, the
//! [`config::EngineConfig`] knobs (including the paper's `μ`, `θ1` and
//! `θ2` parameters), and the deterministic [`clock::SimClock`] that
//! converts counted page I/Os and CPU operations into reproducible
//! simulated execution times.
//!
//! Everything downstream — storage, statistics, optimizer, executor and
//! the dynamic re-optimization controller — is written against these
//! types, so they are deliberately small, allocation-conscious and
//! heavily tested.

pub mod cancel;
pub mod clock;
pub mod config;
pub mod error;
pub mod fault;
pub mod ids;
pub mod rng;
pub mod row;
pub mod schema;
pub mod value;

pub use cancel::CancelToken;
pub use clock::{ClockScope, CostSnapshot, SimClock};
pub use config::EngineConfig;
pub use error::{MqError, Result};
pub use fault::{FaultInjector, FaultKind, FaultProfile, FaultScope, FaultSite, FaultSpec};
pub use ids::{FileId, IndexId, PageId, Rid, TableId};
pub use rng::DetRng;
pub use row::Row;
pub use schema::{Field, Schema};
pub use value::{DataType, Value};
