//! Deterministic random number generation.
//!
//! All stochastic components of the engine — data generation, reservoir
//! sampling, Zipf draws — go through [`DetRng`], a thin splitmix64 +
//! xoshiro256** generator seeded explicitly. No ambient entropy is ever
//! used, so every experiment is exactly reproducible.

/// A small, fast, fully deterministic RNG (xoshiro256**, seeded via
/// splitmix64). Not cryptographic; statistical quality is more than
/// sufficient for workload generation and sampling.
///
/// ```
/// use mq_common::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(a.gen_range(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derive an independent child stream (for per-table generators).
    pub fn fork(&mut self, salt: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. `n` must be positive.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's nearly-divisionless bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.gen_range(span) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_range(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_bounds() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let x = r.gen_range(13);
            assert!(x < 13);
            let y = r.gen_i64(-5, 5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = DetRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniformity_rough() {
        let mut r = DetRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_independent() {
        let mut base = DetRng::new(9);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
