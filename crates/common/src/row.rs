//! Rows: the unit of data flowing between operators.

use std::fmt;

use crate::error::Result;
use crate::value::Value;

/// A tuple of values. Operators pass rows by value; string payloads are
/// `Arc`-shared so cloning is cheap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Construct a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Column accessor.
    ///
    /// # Panics
    /// On an out-of-range index. Executor paths that consume plan- or
    /// catalog-derived indices should prefer [`Row::try_get`], which
    /// surfaces the mismatch as a typed error instead of unwinding
    /// mid-pipeline.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Column accessor returning a typed error when the row is
    /// narrower than the requested index (a malformed plan binding,
    /// never a user error — but one the engine should report, not
    /// panic over).
    pub fn try_get(&self, idx: usize) -> Result<&Value> {
        self.values.get(idx).ok_or_else(|| {
            crate::error::MqError::Execution(format!(
                "column index {idx} out of range for a {}-column row",
                self.values.len()
            ))
        })
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// Project columns by index.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Encoded size in bytes (matches [`Row::encode`] exactly).
    pub fn encoded_len(&self) -> usize {
        2 + self.values.iter().map(Value::encoded_len).sum::<usize>()
    }

    /// Append the binary encoding (column count then each value).
    pub fn encode(&self, out: &mut Vec<u8>) {
        debug_assert!(self.values.len() <= u16::MAX as usize);
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            v.encode(out);
        }
    }

    /// Encode into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf
    }

    /// Decode a row from `buf`, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Row, usize)> {
        use crate::error::MqError;
        let n = buf
            .get(..2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()) as usize)
            .ok_or_else(|| MqError::Storage("truncated row header".into()))?;
        let mut values = Vec::with_capacity(n);
        let mut off = 2;
        for _ in 0..n {
            let (v, used) = Value::decode(&buf[off..])?;
            values.push(v);
            off += used;
        }
        Ok((Row { values }, off))
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        Row::new(vec![
            Value::Int(7),
            Value::str("x"),
            Value::Null,
            Value::Float(0.5),
        ])
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), r.encoded_len());
        let (back, used) = Row::decode(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn concat_and_project() {
        let a = Row::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Row::new(vec![Value::Int(3)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn decode_truncated_fails() {
        let r = sample();
        let bytes = r.to_bytes();
        assert!(Row::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(Row::decode(&[]).is_err());
    }
}
