//! Engine configuration.
//!
//! All tunables live here, including the three knobs the paper
//! introduces for Dynamic Re-Optimization:
//!
//! * `mu` (μ) — the maximum acceptable statistics-collection overhead as
//!   a fraction of the optimizer's estimated query time (§2.5; the paper
//!   runs with 0.05),
//! * `theta1` (θ1) — re-optimization is skipped when the estimated
//!   optimizer time exceeds θ1 of the improved remaining-time estimate
//!   (Equation 1; paper value 0.05),
//! * `theta2` (θ2) — re-optimization is considered only when the
//!   improved estimate exceeds the optimizer's estimate by more than θ2
//!   (Equation 2; paper value 0.2).
//!
//! The cost constants convert counted physical operations into a
//! deterministic simulated time, replacing the paper's wall-clock
//! measurements on the Paradise cluster (see DESIGN.md, substitutions).

use crate::error::{MqError, Result};

/// All engine tunables. Construct with [`EngineConfig::default`] and
/// override fields, then call [`EngineConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Bytes per disk page.
    pub page_size: usize,
    /// Buffer-pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// Total memory budget (bytes) the memory manager divides among the
    /// operators of one query (the paper's per-node 8–32 MB, scaled).
    pub query_memory_bytes: usize,
    /// Simulated milliseconds charged per physical page read.
    pub io_read_ms: f64,
    /// Simulated milliseconds charged per physical page write.
    pub io_write_ms: f64,
    /// Simulated milliseconds charged per tuple-level CPU operation.
    pub cpu_op_ms: f64,
    /// Simulated milliseconds charged per optimizer work unit
    /// (one DP candidate-plan costing). Used to model `T_opt`.
    pub opt_work_ms: f64,
    /// μ — maximum statistics-collection overhead fraction (§2.5).
    pub mu: f64,
    /// θ1 — optimization-time threshold of Equation 1 (§2.4).
    pub theta1: f64,
    /// θ2 — sub-optimality threshold of Equation 2 (§2.4).
    pub theta2: f64,
    /// Reservoir-sample size used by runtime statistics collectors.
    pub reservoir_size: usize,
    /// Bucket count for runtime-built histograms.
    pub histogram_buckets: usize,
    /// Default selectivity guess for predicates the optimizer cannot
    /// estimate (user-defined functions; §2.5 "always high" inaccuracy).
    pub udf_selectivity: f64,
    /// Default equality selectivity when no statistics exist.
    pub default_eq_selectivity: f64,
    /// Default range selectivity when no statistics exist.
    pub default_range_selectivity: f64,
    /// Plan-switch acceptance margin: the re-optimized remainder (plus
    /// materialization) must be predicted at least this factor cheaper
    /// than continuing. 1.0 reproduces the paper's bare `<` comparison;
    /// the default hedges the winner's-curse bias of comparing the
    /// optimizer's most optimistic candidate against a fixed plan (see
    /// EXPERIMENTS.md, ablations).
    pub switch_margin: f64,
    /// Demand headroom for mid-query memory re-allocation: improved
    /// cardinalities are scaled by this factor when deriving memory
    /// demands (improved estimates still inherit the join-selectivity
    /// bias of everything unobserved).
    pub realloc_headroom: f64,
    /// Statistics feedback (§2.2: collected statistics "can also be
    /// used to update the statistics stored in the database catalogs").
    /// When enabled, a collector that observed the *complete, unfiltered*
    /// output of a base-table scan writes its exact row count and
    /// per-column observations back to the catalog after the query, so
    /// later queries plan against healed statistics. Off by default:
    /// the paper's experiments (and EXPERIMENTS.md) measure every query
    /// against the *same* stale catalog.
    pub stats_feedback: bool,
    /// Maximum segment retries after a *transient* storage fault
    /// (see `MqError::is_transient`). Each retry re-runs the current
    /// segment from its already-materialized inputs; 0 disables
    /// retrying.
    pub transient_retry_limit: u32,
    /// Simulated-clock backoff before the first segment retry, in
    /// milliseconds; doubles on each further retry.
    pub transient_retry_backoff_ms: f64,
    /// Maximum recovery attempts the runtime makes after an injected
    /// crash (simulated process kill) before reporting the query as
    /// failed. 0 disables recovery — crashed queries stay crashed and
    /// their artifacts wait for the next stale-temp sweep.
    pub recovery_attempt_limit: u32,
    /// Simulated-clock backoff before the first recovery attempt, in
    /// milliseconds; doubles on each further attempt (mirrors
    /// `transient_retry_backoff_ms` but models process restart, not an
    /// I/O hiccup, hence the larger default).
    pub recovery_backoff_ms: f64,
    /// Number of logical hash buckets used by partitioned (exchange)
    /// execution. Buckets — not partitions — are the unit of routing
    /// and of per-bucket pipeline runs, so results are byte-identical
    /// for any partition count; partitions only group buckets for the
    /// max-over-partitions elapsed-time accounting.
    pub par_buckets: usize,
    /// Skew-verdict threshold: an exchange stage whose max/mean
    /// per-partition cardinality ratio exceeds this fires a skew
    /// verdict and re-balances the bucket→partition assignment.
    pub par_skew_theta: f64,
    /// Broadcast threshold: a hash-join build side whose estimated
    /// cardinality is at or below this is broadcast (replicated to
    /// every partition) instead of hash-repartitioned.
    pub par_broadcast_rows: f64,
    /// Cross-query sub-plan caching: promote plan-switch
    /// materializations into a fingerprint-keyed cache and splice
    /// `CachedScan` nodes over matching sub-trees of later queries.
    /// Also enables the statistics feedback store (observed sub-plan
    /// cardinalities override catalog estimates). Off by default: the
    /// paper's experiments measure every query cold.
    pub cache_enabled: bool,
    /// Byte budget for the sub-plan cache; cost-benefit eviction keeps
    /// live entries within it (a runtime may re-lease this from the
    /// global memory broker).
    pub cache_budget_bytes: usize,
    /// Number of independently-locked shards the sub-plan cache is
    /// split into (hash-routed by fingerprint). One shard reproduces
    /// the single-lock behavior; more shards stop the probe path from
    /// serializing concurrent workers. Fixed at engine construction.
    pub cache_shards: usize,
    /// Normalized-SQL plan caching: canonicalize query text into a
    /// family key, cache the optimized physical plan template after
    /// enumeration, and rebind literals on later probes so repeated
    /// families skip parsing-to-enumeration entirely. Off by default:
    /// the paper's experiments optimize every query from scratch.
    pub plan_cache_enabled: bool,
    /// Maximum number of plan-cache entries (LRU-evicted beyond this).
    pub plan_cache_entries: usize,
    /// Staleness threshold for cached plans: once this many feedback
    /// corrections have been applied against a cached plan's sub-plan
    /// fingerprints *since it was entered*, the entry is re-enumerated
    /// on its next probe (`plan_cache_reoptimized`).
    pub plan_cache_staleness: u64,
    /// Adaptive histogram refresh trigger: a graph-level feedback hit
    /// whose `max(obs/est, est/obs)` error exceeds this factor counts
    /// as a large error for its base-table column.
    pub hist_refresh_error_factor: f64,
    /// Number of large errors (see `hist_refresh_error_factor`)
    /// attributable to one base-table column before its histogram is
    /// incrementally rebuilt from live data. 0 disables the refresh.
    pub hist_refresh_hits: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            page_size: 4096,
            buffer_pool_pages: 256, // 1 MiB of 4 KiB pages — the paper's 32 MB pool, scaled ~1:32 with the data
            query_memory_bytes: 512 * 1024,
            io_read_ms: 10.0,
            io_write_ms: 10.0,
            cpu_op_ms: 0.002,
            opt_work_ms: 0.05,
            mu: 0.05,
            theta1: 0.05,
            theta2: 0.2,
            reservoir_size: 1024,
            histogram_buckets: 32,
            udf_selectivity: 0.1,
            default_eq_selectivity: 0.005,
            default_range_selectivity: 0.3,
            switch_margin: 2.5,
            realloc_headroom: 1.5,
            stats_feedback: false,
            transient_retry_limit: 2,
            transient_retry_backoff_ms: 5.0,
            recovery_attempt_limit: 3,
            recovery_backoff_ms: 50.0,
            par_buckets: 64,
            par_skew_theta: 4.0,
            par_broadcast_rows: 64.0,
            cache_enabled: false,
            cache_budget_bytes: 4 * 1024 * 1024,
            cache_shards: 8,
            plan_cache_enabled: false,
            plan_cache_entries: 64,
            plan_cache_staleness: 5,
            hist_refresh_error_factor: 4.0,
            hist_refresh_hits: 3,
        }
    }
}

impl EngineConfig {
    /// Check that the configuration is internally consistent.
    pub fn validate(&self) -> Result<()> {
        if self.page_size < 256 {
            return Err(MqError::InvalidConfig(format!(
                "page_size {} too small (min 256)",
                self.page_size
            )));
        }
        if self.buffer_pool_pages < 8 {
            return Err(MqError::InvalidConfig(
                "buffer_pool_pages must be at least 8".into(),
            ));
        }
        if self.query_memory_bytes < 4 * self.page_size {
            return Err(MqError::InvalidConfig(
                "query_memory_bytes must cover at least 4 pages".into(),
            ));
        }
        for (name, v) in [
            ("mu", self.mu),
            ("theta1", self.theta1),
            ("theta2", self.theta2),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(MqError::InvalidConfig(format!(
                    "{name} = {v} must be in [0, 1]"
                )));
            }
        }
        for (name, v) in [
            ("io_read_ms", self.io_read_ms),
            ("io_write_ms", self.io_write_ms),
            ("cpu_op_ms", self.cpu_op_ms),
            ("opt_work_ms", self.opt_work_ms),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(MqError::InvalidConfig(format!(
                    "{name} = {v} must be finite and non-negative"
                )));
            }
        }
        if self.switch_margin < 1.0 || !self.switch_margin.is_finite() {
            return Err(MqError::InvalidConfig(format!(
                "switch_margin {} must be ≥ 1",
                self.switch_margin
            )));
        }
        if self.realloc_headroom < 1.0 || !self.realloc_headroom.is_finite() {
            return Err(MqError::InvalidConfig(format!(
                "realloc_headroom {} must be ≥ 1",
                self.realloc_headroom
            )));
        }
        if !(self.transient_retry_backoff_ms.is_finite() && self.transient_retry_backoff_ms >= 0.0)
        {
            return Err(MqError::InvalidConfig(format!(
                "transient_retry_backoff_ms {} must be finite and non-negative",
                self.transient_retry_backoff_ms
            )));
        }
        if !(self.recovery_backoff_ms.is_finite() && self.recovery_backoff_ms >= 0.0) {
            return Err(MqError::InvalidConfig(format!(
                "recovery_backoff_ms {} must be finite and non-negative",
                self.recovery_backoff_ms
            )));
        }
        if self.reservoir_size == 0 || self.histogram_buckets == 0 {
            return Err(MqError::InvalidConfig(
                "reservoir_size and histogram_buckets must be positive".into(),
            ));
        }
        if self.par_buckets == 0 {
            return Err(MqError::InvalidConfig(
                "par_buckets must be positive".into(),
            ));
        }
        if self.par_skew_theta < 1.0 || !self.par_skew_theta.is_finite() {
            return Err(MqError::InvalidConfig(format!(
                "par_skew_theta {} must be ≥ 1",
                self.par_skew_theta
            )));
        }
        if !(self.par_broadcast_rows.is_finite() && self.par_broadcast_rows >= 0.0) {
            return Err(MqError::InvalidConfig(format!(
                "par_broadcast_rows {} must be finite and non-negative",
                self.par_broadcast_rows
            )));
        }
        if self.cache_enabled && self.cache_budget_bytes < self.page_size {
            return Err(MqError::InvalidConfig(format!(
                "cache_budget_bytes {} must cover at least one page when the cache is enabled",
                self.cache_budget_bytes
            )));
        }
        if self.cache_shards == 0 {
            return Err(MqError::InvalidConfig(
                "cache_shards must be positive".into(),
            ));
        }
        if self.plan_cache_enabled && self.plan_cache_entries == 0 {
            return Err(MqError::InvalidConfig(
                "plan_cache_entries must be positive when the plan cache is enabled".into(),
            ));
        }
        if self.plan_cache_staleness == 0 {
            return Err(MqError::InvalidConfig(
                "plan_cache_staleness must be positive".into(),
            ));
        }
        if self.hist_refresh_error_factor < 1.0 || !self.hist_refresh_error_factor.is_finite() {
            return Err(MqError::InvalidConfig(format!(
                "hist_refresh_error_factor {} must be ≥ 1",
                self.hist_refresh_error_factor
            )));
        }
        Ok(())
    }

    /// Memory budget expressed in pages.
    pub fn query_memory_pages(&self) -> usize {
        self.query_memory_bytes / self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        EngineConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_knobs() {
        let bad = [
            EngineConfig {
                mu: 1.5,
                ..EngineConfig::default()
            },
            EngineConfig {
                page_size: 64,
                ..EngineConfig::default()
            },
            EngineConfig {
                io_read_ms: f64::NAN,
                ..EngineConfig::default()
            },
            EngineConfig {
                query_memory_bytes: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                switch_margin: 0.5,
                ..EngineConfig::default()
            },
            EngineConfig {
                realloc_headroom: 0.0,
                ..EngineConfig::default()
            },
            EngineConfig {
                histogram_buckets: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                transient_retry_backoff_ms: f64::INFINITY,
                ..EngineConfig::default()
            },
            EngineConfig {
                par_buckets: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                recovery_backoff_ms: -1.0,
                ..EngineConfig::default()
            },
            EngineConfig {
                par_skew_theta: 0.5,
                ..EngineConfig::default()
            },
            EngineConfig {
                par_broadcast_rows: f64::NAN,
                ..EngineConfig::default()
            },
            EngineConfig {
                cache_enabled: true,
                cache_budget_bytes: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                cache_shards: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                plan_cache_enabled: true,
                plan_cache_entries: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                plan_cache_staleness: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                hist_refresh_error_factor: 0.5,
                ..EngineConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be rejected");
        }
    }

    #[test]
    fn memory_pages() {
        let c = EngineConfig::default();
        assert_eq!(c.query_memory_pages(), c.query_memory_bytes / c.page_size);
    }
}
