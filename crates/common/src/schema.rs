//! Schemas: named, typed column lists.
//!
//! Columns carry an optional table qualifier so joins can produce
//! unambiguous output schemas (`lineitem.l_orderkey`). Lookup works on
//! both qualified and bare names as long as the bare name is unique.

use std::fmt;
use std::sync::Arc;

use crate::error::{MqError, Result};
use crate::value::{DataType, Value};

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Optional table qualifier.
    pub qualifier: Option<Arc<str>>,
    /// Column name.
    pub name: Arc<str>,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// An unqualified field.
    pub fn new(name: impl Into<Arc<str>>, dtype: DataType) -> Field {
        Field {
            qualifier: None,
            name: name.into(),
            dtype,
        }
    }

    /// A table-qualified field.
    pub fn qualified(
        qualifier: impl Into<Arc<str>>,
        name: impl Into<Arc<str>>,
        dtype: DataType,
    ) -> Field {
        Field {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            dtype,
        }
    }

    /// `qualifier.name`, or just `name` when unqualified.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.to_string(),
        }
    }

    /// Whether `pattern` (either `name` or `qualifier.name`) refers to
    /// this field.
    pub fn matches(&self, pattern: &str) -> bool {
        match pattern.split_once('.') {
            Some((q, n)) => self.name.as_ref() == n && self.qualifier.as_deref() == Some(q),
            None => self.name.as_ref() == pattern,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.qualified_name(), self.dtype)
    }
}

/// An ordered list of fields. Cheap to clone (fields share `Arc<str>`s).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicate qualified names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, a) in fields.iter().enumerate() {
            for b in fields.iter().skip(i + 1) {
                if a.name == b.name && a.qualifier == b.qualifier {
                    return Err(MqError::SchemaError(format!(
                        "duplicate column {}",
                        a.qualified_name()
                    )));
                }
            }
        }
        Ok(Schema { fields })
    }

    /// Build a schema without duplicate checking (internal fast path
    /// for schemas derived from already-valid ones).
    pub fn new_unchecked(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// An empty schema.
    pub fn empty() -> Schema {
        Schema { fields: Vec::new() }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Resolve a (possibly qualified) column name to its index.
    /// A bare name must be unambiguous.
    pub fn index_of(&self, pattern: &str) -> Result<usize> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(pattern) {
                if found.is_some() {
                    return Err(MqError::SchemaError(format!(
                        "ambiguous column reference '{pattern}'"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| MqError::NotFound(format!("column '{pattern}'")))
    }

    /// Concatenate two schemas (e.g. for a join output).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        Schema { fields }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Re-qualify every field with a new table alias (e.g. after
    /// materializing an intermediate result into a temp table).
    pub fn requalify(&self, qualifier: &str) -> Schema {
        let q: Arc<str> = qualifier.into();
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field {
                    qualifier: Some(q.clone()),
                    name: f.name.clone(),
                    dtype: f.dtype,
                })
                .collect(),
        }
    }

    /// Average encoded width of a row with example `values`, used as a
    /// fallback when no statistics exist.
    pub fn example_row_bytes(&self, values: &[Value]) -> usize {
        values.iter().map(Value::encoded_len).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.qualified_name(), field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::qualified("t", "a", DataType::Int),
            Field::qualified("t", "b", DataType::Str),
            Field::qualified("u", "a", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn qualified_lookup() {
        let s = sample();
        assert_eq!(s.index_of("t.a").unwrap(), 0);
        assert_eq!(s.index_of("u.a").unwrap(), 2);
        assert_eq!(s.index_of("b").unwrap(), 1);
    }

    #[test]
    fn bare_ambiguous_is_error() {
        let s = sample();
        let err = s.index_of("a").unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn missing_column() {
        let s = sample();
        assert_eq!(s.index_of("zzz").unwrap_err().kind(), "not_found");
    }

    #[test]
    fn duplicates_rejected() {
        let r = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("x", DataType::Int),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn join_and_project() {
        let s = sample();
        let t = Schema::new(vec![Field::qualified("v", "c", DataType::Date)]).unwrap();
        let j = s.join(&t);
        assert_eq!(j.len(), 4);
        let p = j.project(&[3, 0]);
        assert_eq!(p.field(0).name.as_ref(), "c");
        assert_eq!(p.field(1).name.as_ref(), "a");
    }

    #[test]
    fn requalify() {
        let s = sample().requalify("tmp1");
        assert_eq!(s.index_of("tmp1.a").unwrap_err().kind(), "schema"); // still ambiguous
        assert_eq!(s.index_of("tmp1.b").unwrap(), 1);
    }
}
