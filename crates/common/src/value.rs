//! Runtime values and their data types.
//!
//! [`Value`] is the single dynamic value representation used by the
//! executor, the statistics subsystem and the optimizer's constant
//! folding. It supports a *total* ordering (floats compare with
//! `total_cmp`, `Null` sorts first) so values can key B+-trees and
//! external sorts without panics, SQL-style numeric comparison across
//! `Int`/`Float`, stable hashing for hash joins, and a compact binary
//! encoding for slotted pages.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{MqError, Result};

/// The logical type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Calendar date, stored as days since 1970-01-01 (can be negative).
    Date,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Whether values of this type have a natural numeric interpretation
    /// usable by histograms.
    pub fn is_numeric_like(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Date)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Date => "DATE",
            DataType::Str => "VARCHAR",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed runtime value.
///
/// Strings are reference-counted so copying rows through operator
/// pipelines does not reallocate.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Days since the Unix epoch.
    Date(i64),
    /// UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// The value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Date(_) => Some(DataType::Date),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, used by histograms and the Zipf
    /// generator. Strings map through a stable 8-byte prefix so ordered
    /// operations over them remain monotone.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            Value::Str(s) => Some(str_rank(s)),
        }
    }

    /// Integer view, for key columns.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Date(d) => Some(*d),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view (used by predicate evaluation; NULL is not true).
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// SQL three-valued comparison. Returns `None` when either side is
    /// NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Date(a), Int(b)) | (Int(a), Date(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// Arithmetic addition with SQL NULL propagation.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Arithmetic subtraction with SQL NULL propagation.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Arithmetic multiplication with SQL NULL propagation.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Arithmetic division; integer division by zero is an error, float
    /// division by zero yields IEEE infinities.
    pub fn div(&self, other: &Value) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(_), Int(0)) => Err(MqError::Execution("integer division by zero".into())),
            (Int(a), Int(b)) => Ok(Int(a / b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(Float(x / y)),
                _ => Err(MqError::TypeMismatch(format!("{a} / {b}"))),
            },
        }
    }

    /// Size of the encoded form in bytes; used for tuple-size statistics
    /// and page space accounting.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) | Value::Date(_) => 9,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }

    /// Append the binary encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Date(d) => {
                out.push(4);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(5);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Decode one value from `buf`, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Value, usize)> {
        let tag = *buf
            .first()
            .ok_or_else(|| MqError::Storage("empty value encoding".into()))?;
        let need = |n: usize| -> Result<&[u8]> {
            buf.get(1..1 + n)
                .ok_or_else(|| MqError::Storage("truncated value encoding".into()))
        };
        match tag {
            0 => Ok((Value::Null, 1)),
            1 => Ok((Value::Bool(need(1)?[0] != 0), 2)),
            2 => Ok((
                Value::Int(i64::from_le_bytes(need(8)?.try_into().unwrap())),
                9,
            )),
            3 => Ok((
                Value::Float(f64::from_le_bytes(need(8)?.try_into().unwrap())),
                9,
            )),
            4 => Ok((
                Value::Date(i64::from_le_bytes(need(8)?.try_into().unwrap())),
                9,
            )),
            5 => {
                let len = u32::from_le_bytes(need(4)?.try_into().unwrap()) as usize;
                let bytes = buf
                    .get(5..5 + len)
                    .ok_or_else(|| MqError::Storage("truncated string encoding".into()))?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| MqError::Storage("invalid utf-8 in string value".into()))?;
                Ok((Value::str(s), 5 + len))
            }
            t => Err(MqError::Storage(format!("unknown value tag {t}"))),
        }
    }
}

/// A stable, order-preserving numeric rank for strings: the first eight
/// bytes interpreted big-endian. Monotone in the lexicographic order,
/// which is all histograms need.
fn str_rank(s: &str) -> f64 {
    let mut bytes = [0u8; 8];
    for (i, b) in s.as_bytes().iter().take(8).enumerate() {
        bytes[i] = *b;
    }
    u64::from_be_bytes(bytes) as f64
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    op: &str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    use Value::*;
    match (a, b) {
        (Null, _) | (_, Null) => Ok(Null),
        (Int(x), Int(y)) => int_op(*x, *y)
            .map(Int)
            .ok_or_else(|| MqError::Execution(format!("integer overflow in {x} {op} {y}"))),
        (Date(x), Int(y)) => int_op(*x, *y)
            .map(Date)
            .ok_or_else(|| MqError::Execution(format!("date overflow in {x} {op} {y}"))),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Float(float_op(x, y))),
            _ => Err(MqError::TypeMismatch(format!("{a} {op} {b}"))),
        },
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order used by sorts and B+-trees: NULL first, then by type
/// rank, then by value (floats via `total_cmp`, `Int`/`Float`/`Date`
/// compare numerically within the shared numeric rank).
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) | Value::Date(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                // Numeric family: compare exactly when both are integral.
                match (a, b) {
                    (Value::Int(x) | Value::Date(x), Value::Int(y) | Value::Date(y)) => x.cmp(y),
                    _ => a
                        .as_f64()
                        .unwrap_or(f64::NEG_INFINITY)
                        .total_cmp(&b.as_f64().unwrap_or(f64::NEG_INFINITY)),
                }
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Hashing must agree with `Eq`: numeric-family values hash through a
/// canonical form so `Int(2)`, `Date(2)` and `Float(2.0)` collide with
/// the values they equal.
impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Value::Int(i) | Value::Date(i) => {
                // Canonical numeric hashing: integral floats hash like ints.
                state.write_u8(2);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                state.write_u8(2);
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    state.write_i64(*f as i64);
                } else {
                    state.write_u64(f.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Date(d) => {
                let (y, m, day) = days_to_civil(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

/// Convert a civil date to days since 1970-01-01 (Howard Hinnant's
/// `days_from_civil` algorithm).
pub fn civil_to_days(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = ((m + 9) % 12) as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

/// Inverse of [`civil_to_days`].
pub fn days_to_civil(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Construct a `Value::Date` from a civil date.
pub fn date(y: i64, m: u32, d: u32) -> Value {
    Value::Date(civil_to_days(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn sql_cmp_basics() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::str("abc").sql_cmp(&Value::str("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [
            Value::str("z"),
            Value::Int(5),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
    }

    #[test]
    fn numeric_family_orders_consistently() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert_eq!(Value::Int(3), Value::Float(3.0));
    }

    #[test]
    fn hash_agrees_with_eq_for_numeric_family() {
        assert_eq!(h(&Value::Int(42)), h(&Value::Float(42.0)));
        assert_eq!(h(&Value::Int(42)), h(&Value::Date(42)));
        assert_ne!(h(&Value::Int(42)), h(&Value::Int(43)));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).mul(&Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-77),
            Value::Float(2.75),
            Value::Date(9000),
            Value::str("hello world"),
        ];
        for v in &vals {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), v.encoded_len());
            let (back, used) = Value::decode(&buf).unwrap();
            assert_eq!(&back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Value::decode(&[]).is_err());
        assert!(Value::decode(&[9]).is_err());
        assert!(Value::decode(&[2, 1, 2]).is_err()); // truncated int
        assert!(Value::decode(&[5, 4, 0, 0, 0, 0xff, 0xfe, 0x01, 0x02]).is_err());
        // bad utf8
    }

    #[test]
    fn civil_date_roundtrip() {
        assert_eq!(civil_to_days(1970, 1, 1), 0);
        assert_eq!(civil_to_days(1970, 1, 2), 1);
        for &(y, m, d) in &[
            (1992i64, 1u32, 1u32),
            (1998, 12, 31),
            (2000, 2, 29),
            (1995, 6, 17),
        ] {
            let days = civil_to_days(y, m, d);
            assert_eq!(days_to_civil(days), (y, m, d));
        }
    }

    #[test]
    fn date_display() {
        assert_eq!(date(1995, 3, 15).to_string(), "1995-03-15");
    }

    #[test]
    fn str_rank_is_monotone() {
        let words = ["", "a", "ab", "abc", "b", "ba", "zz"];
        for w in words.windows(2) {
            assert!(str_rank(w[0]) <= str_rank(w[1]), "{} vs {}", w[0], w[1]);
        }
    }
}
