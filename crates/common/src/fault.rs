//! Deterministic fault injection.
//!
//! A [`FaultInjector`] holds a reproducible schedule of faults — built
//! either explicitly from [`FaultSpec`]s or drawn from a seed via
//! [`FaultInjector::from_seed`] — and fires them when instrumented code
//! paths consult it: the buffer pool's logical page reads/writes, the
//! memory broker's grant decisions, and the executor's interrupt
//! checks.
//!
//! Faults are counted at the *logical* access level (every
//! `with_page`/`with_page_mut` call), not at the physical `SimDisk`
//! level: physical I/O is a function of shared buffer-pool state and
//! worker interleaving, while logical access counts depend only on the
//! query's own execution — which is what makes a schedule reproduce
//! byte-identically at any worker count.
//!
//! Scoping follows the same thread-local pattern as
//! [`SimClock::enter_scope`](crate::SimClock::enter_scope): a job
//! enters a [`FaultScope`] for the duration of its query, and the free
//! functions ([`on_page_read`], [`on_page_write`], [`grant_allowed`],
//! [`cancel_requested`]) consult the innermost scoped injector — or
//! no-op when no scope is active, so fault-free code pays only a
//! thread-local read. Clones share counters, so a segment retry
//! continues the schedule past the fault that already fired instead of
//! re-firing it.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{MqError, Result};
use crate::rng::DetRng;

/// Instrumented site a fault can fire at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A logical buffer-pool page read (`with_page`).
    PageRead,
    /// A logical buffer-pool page write (`with_page_mut`).
    PageWrite,
    /// A memory-broker grant decision (`acquire` or `Lease::grow`).
    Grant,
    /// A segment boundary: the executor's phase notification between
    /// pipeline stages (and the engine's materialization points). Only
    /// [`FaultKind::Crash`] is meaningful here — a transient hiccup
    /// between segments has nothing to retry.
    SegmentBoundary,
}

/// Severity of an injected I/O fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Goes away on retry: the engine re-runs the current segment from
    /// its materialized inputs.
    Transient,
    /// Persists: the query must fail with a clean typed error.
    Permanent,
    /// Simulated process kill: the query unwinds with
    /// [`MqError::Crash`] and its in-flight state (registered temp
    /// tables, partial materializations, manifest records) is
    /// deliberately abandoned — recovery, not cleanup, reclaims it.
    Crash,
}

/// One scheduled fault: fire at the `at`-th (1-based) operation
/// counted at `site`. `kind` is ignored for [`FaultSite::Grant`]
/// (a denial is not an error, it just clamps the grant).
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    pub site: FaultSite,
    pub kind: FaultKind,
    pub at: u64,
}

/// Tunables for seed-derived schedules ([`FaultInjector::from_seed`]).
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Maximum faults per schedule (actual count is drawn in
    /// `0..=max_faults`).
    pub max_faults: usize,
    /// I/O fault positions are drawn in `1..=io_horizon` logical
    /// accesses; size this to the workload's typical access count.
    pub io_horizon: u64,
    /// Grant-denial positions are drawn in `1..=grant_horizon` grant
    /// decisions.
    pub grant_horizon: u64,
    /// Percent of injected I/O faults that are transient.
    pub transient_percent: u32,
    /// Percent chance the schedule includes a cancellation trigger.
    pub cancel_percent: u32,
    /// Percent chance the schedule includes a crash trigger (simulated
    /// process kill at a segment boundary or mid-materialization).
    /// Zero by default so pre-existing seeded schedules stay
    /// byte-identical; the crash draw happens *after* every other draw
    /// for the same reason.
    pub crash_percent: u32,
    /// Crash positions are drawn in `1..=crash_horizon` segment
    /// boundaries (boundary crashes) or `1..=io_horizon` writes
    /// (mid-materialization crashes).
    pub crash_horizon: u64,
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile {
            max_faults: 3,
            io_horizon: 400,
            grant_horizon: 8,
            transient_percent: 70,
            cancel_percent: 10,
            crash_percent: 0,
            crash_horizon: 6,
        }
    }
}

/// Counts of faults that actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultsFired {
    pub transient: u64,
    pub permanent: u64,
    pub denials: u64,
    pub cancels: u64,
    pub crashes: u64,
}

impl FaultsFired {
    pub fn total(&self) -> u64 {
        self.transient + self.permanent + self.denials + self.cancels + self.crashes
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Sorted by position; (position, kind).
    read_faults: Vec<(u64, FaultKind)>,
    write_faults: Vec<(u64, FaultKind)>,
    /// Sorted grant-decision positions to deny.
    grant_denials: Vec<u64>,
    /// Sorted segment-boundary positions to crash at.
    boundary_crashes: Vec<u64>,
    /// Report cancellation once total logical I/O ops reach this.
    cancel_at_io: Option<u64>,

    reads: AtomicU64,
    writes: AtomicU64,
    grants: AtomicU64,
    boundaries: AtomicU64,
    fired_transient: AtomicU64,
    fired_permanent: AtomicU64,
    fired_denials: AtomicU64,
    fired_cancels: AtomicU64,
    fired_crashes: AtomicU64,
}

/// A shared, seeded fault schedule. Cheap to clone; clones share the
/// operation counters (see module docs).
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Inner>,
}

impl FaultInjector {
    /// An injector with an explicit schedule. `cancel_at_io` reports a
    /// cancellation once the job's total logical I/O operations
    /// (reads + writes) reach the given count.
    pub fn new(specs: Vec<FaultSpec>, cancel_at_io: Option<u64>) -> FaultInjector {
        let mut inner = Inner {
            cancel_at_io,
            ..Inner::default()
        };
        for s in specs {
            match s.site {
                FaultSite::PageRead => inner.read_faults.push((s.at, s.kind)),
                FaultSite::PageWrite => inner.write_faults.push((s.at, s.kind)),
                FaultSite::Grant => inner.grant_denials.push(s.at),
                FaultSite::SegmentBoundary => inner.boundary_crashes.push(s.at),
            }
        }
        inner.read_faults.sort_by_key(|(at, _)| *at);
        inner.write_faults.sort_by_key(|(at, _)| *at);
        inner.grant_denials.sort_unstable();
        inner.boundary_crashes.sort_unstable();
        FaultInjector {
            inner: Arc::new(inner),
        }
    }

    /// An injector with no faults scheduled (useful as an oracle).
    pub fn none() -> FaultInjector {
        FaultInjector::default()
    }

    /// Draw a reproducible schedule from a seed. Equal seeds and
    /// profiles yield equal schedules.
    pub fn from_seed(seed: u64, profile: &FaultProfile) -> FaultInjector {
        let mut rng = DetRng::new(seed ^ 0xFA17_1A7E);
        let mut specs = Vec::new();
        let n = if profile.max_faults == 0 {
            0
        } else {
            rng.gen_range(profile.max_faults as u64 + 1) as usize
        };
        for _ in 0..n {
            let roll = rng.gen_range(100);
            let (site, horizon) = if roll < 45 {
                (FaultSite::PageRead, profile.io_horizon)
            } else if roll < 80 {
                (FaultSite::PageWrite, profile.io_horizon)
            } else {
                (FaultSite::Grant, profile.grant_horizon)
            };
            let kind = if rng.gen_range(100) < u64::from(profile.transient_percent) {
                FaultKind::Transient
            } else {
                FaultKind::Permanent
            };
            specs.push(FaultSpec {
                site,
                kind,
                at: rng.gen_range(horizon.max(1)) + 1,
            });
        }
        let cancel_at_io = (rng.gen_range(100) < u64::from(profile.cancel_percent))
            .then(|| rng.gen_range(profile.io_horizon.max(1)) + 1);
        // The crash draws come last so schedules from profiles with
        // `crash_percent: 0` (including every pre-existing seed) are
        // byte-identical to what they were before crashes existed.
        if rng.gen_range(100) < u64::from(profile.crash_percent) {
            let (site, horizon) = if rng.gen_range(100) < 50 {
                (FaultSite::SegmentBoundary, profile.crash_horizon)
            } else {
                (FaultSite::PageWrite, profile.io_horizon)
            };
            specs.push(FaultSpec {
                site,
                kind: FaultKind::Crash,
                at: rng.gen_range(horizon.max(1)) + 1,
            });
        }
        FaultInjector::new(specs, cancel_at_io)
    }

    /// Counts of faults that have fired so far.
    pub fn fired(&self) -> FaultsFired {
        FaultsFired {
            transient: self.inner.fired_transient.load(Ordering::Relaxed),
            permanent: self.inner.fired_permanent.load(Ordering::Relaxed),
            denials: self.inner.fired_denials.load(Ordering::Relaxed),
            cancels: self.inner.fired_cancels.load(Ordering::Relaxed),
            crashes: self.inner.fired_crashes.load(Ordering::Relaxed),
        }
    }

    /// True if the schedule contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.inner.read_faults.is_empty()
            && self.inner.write_faults.is_empty()
            && self.inner.grant_denials.is_empty()
            && self.inner.boundary_crashes.is_empty()
            && self.inner.cancel_at_io.is_none()
    }

    /// True if the schedule contains at least one crash
    /// ([`FaultKind::Crash`] at any site).
    pub fn has_crash(&self) -> bool {
        !self.inner.boundary_crashes.is_empty()
            || self
                .inner
                .read_faults
                .iter()
                .chain(self.inner.write_faults.iter())
                .any(|(_, k)| *k == FaultKind::Crash)
    }

    /// Operations counted so far at `site`. A fault-free "counting
    /// run" under a no-fault injector uses these to enumerate the
    /// query's kill points (how many boundaries / writes exist), which
    /// the crash campaign then iterates over.
    pub fn ops_at(&self, site: FaultSite) -> u64 {
        match site {
            FaultSite::PageRead => self.inner.reads.load(Ordering::Relaxed),
            FaultSite::PageWrite => self.inner.writes.load(Ordering::Relaxed),
            FaultSite::Grant => self.inner.grants.load(Ordering::Relaxed),
            FaultSite::SegmentBoundary => self.inner.boundaries.load(Ordering::Relaxed),
        }
    }

    /// Enter a scope: until the returned guard drops, fault hooks on
    /// this thread consult this injector.
    pub fn enter_scope(&self) -> FaultScope {
        FAULT_SCOPE.with(|stack| stack.borrow_mut().push(self.clone()));
        FaultScope {
            _not_send: PhantomData,
        }
    }

    fn check_io(&self, site: FaultSite) -> Result<()> {
        let (counter, faults) = match site {
            FaultSite::PageRead => (&self.inner.reads, &self.inner.read_faults),
            FaultSite::PageWrite => (&self.inner.writes, &self.inner.write_faults),
            _ => unreachable!("grants and boundaries are not I/O"),
        };
        let op = counter.fetch_add(1, Ordering::Relaxed) + 1;
        if let Ok(idx) = faults.binary_search_by_key(&op, |(at, _)| *at) {
            let word = match site {
                FaultSite::PageRead => "read",
                _ => "write",
            };
            return match faults[idx].1 {
                FaultKind::Transient => {
                    self.inner.fired_transient.fetch_add(1, Ordering::Relaxed);
                    Err(MqError::storage_transient(format!(
                        "injected transient I/O fault at page {word} #{op}"
                    )))
                }
                FaultKind::Permanent => {
                    self.inner.fired_permanent.fetch_add(1, Ordering::Relaxed);
                    Err(MqError::Storage(format!(
                        "injected permanent I/O fault at page {word} #{op}"
                    )))
                }
                FaultKind::Crash => {
                    self.inner.fired_crashes.fetch_add(1, Ordering::Relaxed);
                    Err(MqError::Crash(format!(
                        "injected kill at page {word} #{op}"
                    )))
                }
            };
        }
        Ok(())
    }

    fn check_boundary(&self) -> Result<()> {
        let op = self.inner.boundaries.fetch_add(1, Ordering::Relaxed) + 1;
        if self.inner.boundary_crashes.binary_search(&op).is_ok() {
            self.inner.fired_crashes.fetch_add(1, Ordering::Relaxed);
            return Err(MqError::Crash(format!(
                "injected kill at segment boundary #{op}"
            )));
        }
        Ok(())
    }

    fn check_grant(&self) -> bool {
        let op = self.inner.grants.fetch_add(1, Ordering::Relaxed) + 1;
        if self.inner.grant_denials.binary_search(&op).is_ok() {
            self.inner.fired_denials.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    fn check_cancel(&self) -> bool {
        let Some(at) = self.inner.cancel_at_io else {
            return false;
        };
        let io =
            self.inner.reads.load(Ordering::Relaxed) + self.inner.writes.load(Ordering::Relaxed);
        if io >= at {
            self.inner.fired_cancels.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

thread_local! {
    static FAULT_SCOPE: RefCell<Vec<FaultInjector>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for a fault scope (see [`FaultInjector::enter_scope`]).
/// Deliberately `!Send`: a scope must pop on the thread it was pushed.
#[must_use = "the fault scope ends when this guard is dropped"]
pub struct FaultScope {
    _not_send: PhantomData<*const ()>,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        FAULT_SCOPE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

fn with_scoped<T>(default: T, f: impl FnOnce(&FaultInjector) -> T) -> T {
    FAULT_SCOPE.with(|stack| match stack.borrow().last() {
        Some(inj) => f(inj),
        None => default,
    })
}

/// Hook for a logical buffer-pool page read. No-op without a scope.
pub fn on_page_read() -> Result<()> {
    with_scoped(Ok(()), |inj| inj.check_io(FaultSite::PageRead))
}

/// Hook for a logical buffer-pool page write. No-op without a scope.
pub fn on_page_write() -> Result<()> {
    with_scoped(Ok(()), |inj| inj.check_io(FaultSite::PageWrite))
}

/// Hook for a memory-broker grant decision: `false` means deny (clamp
/// the grant to its minimum / refuse growth). Always `true` without a
/// scope.
pub fn grant_allowed() -> bool {
    with_scoped(true, FaultInjector::check_grant)
}

/// Hook for executor interrupt checks: `true` once the scoped
/// schedule's cancellation trigger has been reached. Always `false`
/// without a scope.
pub fn cancel_requested() -> bool {
    with_scoped(false, FaultInjector::check_cancel)
}

/// Hook for segment boundaries (executor phase transitions). Counts
/// the boundary and fires a scheduled [`FaultKind::Crash`], if any.
/// No-op without a scope.
pub fn on_segment_boundary() -> Result<()> {
    with_scoped(Ok(()), FaultInjector::check_boundary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_is_a_noop() {
        assert!(on_page_read().is_ok());
        assert!(on_page_write().is_ok());
        assert!(grant_allowed());
        assert!(!cancel_requested());
    }

    #[test]
    fn fires_at_exact_operation() {
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::PageRead,
                kind: FaultKind::Transient,
                at: 3,
            }],
            None,
        );
        let _scope = inj.enter_scope();
        assert!(on_page_read().is_ok());
        assert!(on_page_read().is_ok());
        let err = on_page_read().expect_err("third read faults");
        assert!(err.is_transient(), "{err}");
        assert!(on_page_read().is_ok(), "fault does not repeat");
        assert_eq!(inj.fired().transient, 1);
    }

    #[test]
    fn clones_share_counters_across_retry() {
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::PageWrite,
                kind: FaultKind::Transient,
                at: 2,
            }],
            None,
        );
        {
            let _scope = inj.clone().enter_scope();
            assert!(on_page_write().is_ok());
            assert!(on_page_write().is_err());
        }
        // A retry under a clone continues past the fired fault.
        let _scope = inj.clone().enter_scope();
        assert!(on_page_write().is_ok());
        assert!(on_page_write().is_ok());
    }

    #[test]
    fn permanent_faults_are_not_transient() {
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::PageRead,
                kind: FaultKind::Permanent,
                at: 1,
            }],
            None,
        );
        let _scope = inj.enter_scope();
        let err = on_page_read().expect_err("faults");
        assert_eq!(err.kind(), "storage");
        assert!(!err.is_transient());
    }

    #[test]
    fn grant_denial_and_cancel_trigger() {
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::Grant,
                kind: FaultKind::Permanent,
                at: 2,
            }],
            Some(2),
        );
        let _scope = inj.enter_scope();
        assert!(grant_allowed());
        assert!(!grant_allowed());
        assert!(grant_allowed());
        assert!(!cancel_requested(), "no I/O yet");
        let _ = on_page_read();
        let _ = on_page_read();
        assert!(cancel_requested());
        assert_eq!(inj.fired().denials, 1);
    }

    #[test]
    fn boundary_crash_fires_at_exact_boundary() {
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::SegmentBoundary,
                kind: FaultKind::Crash,
                at: 2,
            }],
            None,
        );
        assert!(inj.has_crash());
        let _scope = inj.enter_scope();
        assert!(on_segment_boundary().is_ok());
        let err = on_segment_boundary().expect_err("second boundary crashes");
        assert_eq!(err.kind(), "crash");
        assert!(on_segment_boundary().is_ok(), "crash does not repeat");
        assert_eq!(inj.fired().crashes, 1);
        assert_eq!(inj.ops_at(FaultSite::SegmentBoundary), 3);
    }

    #[test]
    fn write_crash_is_a_crash_not_storage() {
        let inj = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::PageWrite,
                kind: FaultKind::Crash,
                at: 1,
            }],
            None,
        );
        assert!(inj.has_crash());
        let _scope = inj.enter_scope();
        let err = on_page_write().expect_err("first write crashes");
        assert_eq!(err.kind(), "crash");
        assert!(!err.is_transient());
        assert_eq!(inj.fired().crashes, 1);
    }

    #[test]
    fn counting_run_exposes_kill_points() {
        let inj = FaultInjector::none();
        assert!(!inj.has_crash());
        let _scope = inj.enter_scope();
        for _ in 0..3 {
            on_segment_boundary().unwrap();
        }
        let _ = on_page_write();
        assert_eq!(inj.ops_at(FaultSite::SegmentBoundary), 3);
        assert_eq!(inj.ops_at(FaultSite::PageWrite), 1);
        assert_eq!(inj.ops_at(FaultSite::PageRead), 0);
    }

    #[test]
    fn crash_free_profiles_keep_legacy_schedules() {
        // crash_percent: 0 must leave every seeded schedule exactly as
        // it was before the crash draw existed.
        let p = FaultProfile::default();
        assert_eq!(p.crash_percent, 0);
        for seed in 0..256 {
            let inj = FaultInjector::from_seed(seed, &p);
            assert!(!inj.has_crash(), "seed {seed} drew a crash at 0%");
        }
        // And a crash-heavy profile actually draws them.
        let crashy = FaultProfile {
            crash_percent: 100,
            ..FaultProfile::default()
        };
        let drawn = (0..64)
            .filter(|&s| FaultInjector::from_seed(s, &crashy).has_crash())
            .count();
        assert_eq!(drawn, 64, "crash_percent: 100 must always schedule one");
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let p = FaultProfile::default();
        for seed in 0..64 {
            let a = FaultInjector::from_seed(seed, &p);
            let b = FaultInjector::from_seed(seed, &p);
            assert_eq!(
                format!("{:?}", a.inner.read_faults),
                format!("{:?}", b.inner.read_faults)
            );
            assert_eq!(
                format!("{:?}", a.inner.write_faults),
                format!("{:?}", b.inner.write_faults)
            );
            assert_eq!(a.inner.grant_denials, b.inner.grant_denials);
            assert_eq!(a.inner.cancel_at_io, b.inner.cancel_at_io);
        }
    }

    #[test]
    fn scopes_nest_and_unwind() {
        let outer = FaultInjector::new(
            vec![FaultSpec {
                site: FaultSite::PageRead,
                kind: FaultKind::Permanent,
                at: 1,
            }],
            None,
        );
        let inner = FaultInjector::none();
        let _a = outer.enter_scope();
        {
            let _b = inner.enter_scope();
            assert!(on_page_read().is_ok(), "inner scope wins");
        }
        assert!(on_page_read().is_err(), "outer scope restored");
    }
}
