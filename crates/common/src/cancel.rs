//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a running
//! query and whoever may need to stop it (a session handle, the
//! concurrent runtime's deadline bookkeeping). The executor polls it at
//! segment boundaries — the same points where the re-optimization
//! controller runs — so cancellation latency is bounded by one pipeline
//! phase, and unwinding reuses the engine's existing cleanup paths
//! (artifacts, temp files, broker leases all release on drop).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t2.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let t2 = t.clone();
        std::thread::spawn(move || t2.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
