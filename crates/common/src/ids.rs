//! Strongly-typed identifiers used across the engine.
//!
//! Newtypes prevent the classic bug of passing a page number where a
//! table id was expected. All ids are plain `u32`/`u64` wrappers with
//! zero runtime cost.

use std::fmt;

/// Identifies a page on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel for "no page" (e.g. end of a heap-file page chain).
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Whether this id refers to a real page.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "page#{}", self.0)
        } else {
            write!(f, "page#∅")
        }
    }
}

/// Identifies a heap file (a table's data or a temp file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Identifies a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// Identifies a B+-tree index in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "index#{}", self.0)
    }
}

/// A record id: the physical address of a tuple (page + slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page the tuple lives on.
    pub page: PageId,
    /// Slot number within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a record id.
    pub fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_page_id() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(PageId::INVALID.to_string(), "page#∅");
    }

    #[test]
    fn rid_ordering_is_page_major() {
        let a = Rid::new(PageId(1), 9);
        let b = Rid::new(PageId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PageId(7).to_string(), "page#7");
        assert_eq!(FileId(3).to_string(), "file#3");
        assert_eq!(Rid::new(PageId(7), 2).to_string(), "page#7:2");
    }
}
