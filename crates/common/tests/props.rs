//! Property-based tests for the core value types.

use mq_common::value::{civil_to_days, days_to_civil};
use mq_common::{Row, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks equality on purpose elsewhere.
        (-1e12f64..1e12).prop_map(Value::Float),
        (-1_000_000i64..1_000_000).prop_map(Value::Date),
        "[a-zA-Z0-9 _-]{0,40}".prop_map(Value::str),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..12).prop_map(Row::new)
}

proptest! {
    /// Every value round-trips through the binary encoding.
    #[test]
    fn value_encode_roundtrip(v in arb_value()) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        prop_assert_eq!(buf.len(), v.encoded_len());
        let (back, used) = Value::decode(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, buf.len());
    }

    /// Rows round-trip, including empty rows and NULL-heavy rows.
    #[test]
    fn row_encode_roundtrip(r in arb_row()) {
        let bytes = r.to_bytes();
        prop_assert_eq!(bytes.len(), r.encoded_len());
        let (back, used) = Row::decode(&bytes).unwrap();
        prop_assert_eq!(back, r);
        prop_assert_eq!(used, bytes.len());
    }

    /// Decoding arbitrary garbage never panics (errors are fine).
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Value::decode(&bytes);
        let _ = Row::decode(&bytes);
    }

    /// The total order is consistent: sorting twice gives the same
    /// result, equal values compare equal after a roundtrip, and the
    /// order is antisymmetric.
    #[test]
    fn value_order_is_total(mut vs in prop::collection::vec(arb_value(), 0..30)) {
        let mut once = vs.clone();
        once.sort();
        vs.sort();
        vs.sort();
        prop_assert_eq!(once, vs.clone());
        for w in vs.windows(2) {
            prop_assert!(w[0] <= w[1]);
            if w[0] == w[1] {
                prop_assert!((w[0] >= w[1]));
            }
        }
    }

    /// Hash agrees with equality (the hash-join contract).
    #[test]
    fn hash_agrees_with_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Civil-date conversion round-trips for every day in ±1 My range.
    #[test]
    fn civil_roundtrip(z in -1_000_000i64..1_000_000) {
        let (y, m, d) = days_to_civil(z);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert_eq!(civil_to_days(y, m, d), z);
    }

    /// SQL comparison is antisymmetric when defined.
    #[test]
    fn sql_cmp_antisymmetric(a in arb_value(), b in arb_value()) {
        if let (Some(x), Some(y)) = (a.sql_cmp(&b), b.sql_cmp(&a)) {
            prop_assert_eq!(x, y.reverse());
        }
    }

    /// Arithmetic with NULL yields NULL; with finite floats it matches
    /// f64 semantics.
    #[test]
    fn null_propagates(v in arb_value()) {
        prop_assert!(Value::Null.add(&v).unwrap().is_null());
        prop_assert!(v.mul(&Value::Null).unwrap().is_null());
    }

    /// Projection preserves the selected values.
    #[test]
    fn row_project(r in arb_row()) {
        if r.is_empty() { return Ok(()); }
        let idx: Vec<usize> = (0..r.len()).rev().collect();
        let p = r.project(&idx);
        for (out_pos, &src) in idx.iter().enumerate() {
            prop_assert_eq!(p.get(out_pos), r.get(src));
        }
    }
}
