//! # mq-runtime — concurrent multi-query runtime
//!
//! The paper studies one query re-optimizing itself; this crate puts
//! many such queries on one engine at once and extends the §2.3 memory
//! story across them:
//!
//! * **Worker pool** — [`Runtime::run_workload`] executes a
//!   [`Workload`] on N OS threads over the *shared* storage, buffer
//!   pool and catalog of one [`Engine`]. Dispatch is FIFO; each worker
//!   pulls the next query when free.
//! * **Global memory broker** — per-query [`MemoryManager`] budgets
//!   stop being constants and become *leases* from a
//!   [`MemoryBroker`] with one global budget. Admission control is the
//!   broker's FIFO queue: a query whose minimum demand cannot be
//!   granted waits until running queries release memory. Mid-query
//!   re-allocation (including the §2.3 provisional-progress raises)
//!   asks the lease to grow, so cross-query memory movement is always
//!   brokered.
//! * **Interruption** — every job carries an optional
//!   [`CancelToken`] and simulated-ms deadline, checked at segment
//!   boundaries (completed blocking phases) and periodically during
//!   root-level drains, so even phase-less scan pipelines stop.
//! * **Cost attribution** — each job runs on a [`SimClock::child`] of
//!   the engine clock, scoped onto the worker thread for the duration
//!   of the job: charges made by shared components (the buffer pool
//!   charges the engine clock) are attributed to the running job *and*
//!   the global aggregate, each exactly once.
//!
//! [`Session`] is the interactive counterpart: a handle over the same
//! engine + broker that runs one query at a time with session-level
//! cost accounting and cancellation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mq_common::{CancelToken, CostSnapshot, FaultInjector, MqError, Result, SimClock};
use mq_memory::{MemoryBroker, MemoryManager};
use mq_par::ParSpec;
use mq_plan::LogicalPlan;
use mq_reopt::{Engine, JobEnv, QueryOutcome, ReoptMode};

mod report;
mod workload;

pub use report::{JobResult, WorkloadReport};
pub use workload::{QuerySpec, Workload, WorkloadQuery};

/// The minimum admission demand: the smallest budget
/// [`mq_common::EngineConfig::validate`] accepts (4 pages), so an
/// admitted query can always run, if slowly.
fn min_admission_bytes(cfg: &mq_common::EngineConfig) -> usize {
    4 * cfg.page_size
}

/// A concurrent multi-query runtime over one shared [`Engine`].
pub struct Runtime {
    engine: Arc<Engine>,
    broker: Arc<MemoryBroker>,
}

impl Runtime {
    /// A runtime with an explicit global memory budget.
    pub fn new(engine: Arc<Engine>, global_memory_bytes: usize) -> Runtime {
        Runtime {
            engine,
            broker: Arc::new(MemoryBroker::new(global_memory_bytes)),
        }
    }

    /// A runtime whose budget lets `workers` queries each hold a full
    /// per-query budget (admission never throttles).
    pub fn with_default_budget(engine: Arc<Engine>, workers: usize) -> Runtime {
        let budget = workers.max(1) * engine.config().query_memory_bytes;
        Runtime::new(engine, budget)
    }

    /// A runtime over an existing broker (sessions sharing a budget).
    pub fn with_broker(engine: Arc<Engine>, broker: Arc<MemoryBroker>) -> Runtime {
        Runtime { engine, broker }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The global memory broker.
    pub fn broker(&self) -> &MemoryBroker {
        &self.broker
    }

    /// Open an interactive session leasing from this runtime's broker.
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.engine), Arc::clone(&self.broker))
    }

    /// Run a workload on `workload.workers` threads.
    ///
    /// `workload.global_memory_bytes` — when set — overrides this
    /// runtime's broker for the duration of the run (a fresh broker
    /// with that budget); otherwise the runtime's broker is used, and
    /// its high-water mark carries across runs.
    pub fn run_workload(&self, workload: &Workload) -> WorkloadReport {
        let broker = match workload.global_memory_bytes {
            Some(bytes) => Arc::new(MemoryBroker::new(bytes)),
            None => Arc::clone(&self.broker),
        };
        let workers = workload.workers.max(1);
        let wall = Instant::now();

        let queue: parking_lot::Mutex<VecDeque<usize>> =
            parking_lot::Mutex::new((0..workload.queries.len()).collect());
        let results: parking_lot::Mutex<Vec<Option<JobResult>>> =
            parking_lot::Mutex::new((0..workload.queries.len()).map(|_| None).collect());
        let worker_sim_ms: parking_lot::Mutex<Vec<f64>> =
            parking_lot::Mutex::new(vec![0.0; workers]);
        let in_flight = AtomicUsize::new(0);
        let max_in_flight = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for w in 0..workers {
                let queue = &queue;
                let results = &results;
                let worker_sim_ms = &worker_sim_ms;
                let in_flight = &in_flight;
                let max_in_flight = &max_in_flight;
                let broker = &broker;
                s.spawn(move || loop {
                    let Some(index) = queue.lock().pop_front() else {
                        break;
                    };
                    let q = &workload.queries[index];
                    let r = run_one(
                        &self.engine,
                        broker,
                        q,
                        workload.obs.as_ref(),
                        workload.partitions,
                        index,
                        w,
                        in_flight,
                        max_in_flight,
                    );
                    worker_sim_ms.lock()[w] += r.sim_ms;
                    results.lock()[index] = Some(r);
                });
            }
        });

        let results: Vec<JobResult> = results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every queued job produces a result"))
            .collect();
        let per_worker = worker_sim_ms.into_inner();
        let serial_sim_ms: f64 = per_worker.iter().sum();
        let makespan_sim_ms = per_worker.iter().cloned().fold(0.0, f64::max);
        WorkloadReport {
            results,
            workers,
            global_budget_bytes: broker.budget(),
            broker_high_water: broker.high_water(),
            max_in_flight: max_in_flight.load(Ordering::SeqCst),
            makespan_sim_ms,
            serial_sim_ms,
            wall_ms: wall.elapsed().as_secs_f64() * 1000.0,
        }
    }
}

/// In-flight gauges updated while a query holds its lease.
struct Gauges<'a> {
    in_flight: &'a AtomicUsize,
    max_in_flight: &'a AtomicUsize,
}

/// Per-job attribution and interruption: the job's child clock plus
/// its optional cancellation token and absolute simulated deadline.
struct JobCtl<'a> {
    clock: &'a SimClock,
    cancel: Option<&'a CancelToken>,
    deadline_ms: Option<f64>,
    /// Deterministic fault schedule for chaos testing; also active
    /// during admission (grant denials apply to the initial lease).
    fault: Option<&'a FaultInjector>,
    /// Observability handle, scoped over admission (so lease events
    /// are traced) and passed into the engine for the query body.
    obs: Option<&'a mq_obs::Obs>,
    /// Intra-query partition count; `None` = serial execution. With
    /// `Some(p)` admission atomically acquires one lease per simulated
    /// worker and the engine runs the partitioned driver.
    partitions: Option<usize>,
}

/// What [`run_admitted`] returns: the outcome plus admission and
/// crash-recovery accounting.
struct AdmittedRun {
    outcome: Result<QueryOutcome>,
    /// Bytes the broker had granted at (final) admission.
    granted: usize,
    /// Crash-recovery attempts made (crashed → recovering → done).
    recoveries: u32,
    /// Checkpointed segments salvaged across those attempts.
    segments_salvaged: u32,
}

/// Admit and run one query: acquire a lease (blocking FIFO admission),
/// run under a lease-backed memory manager, and — if the plan's
/// minimum demands exceed what a contended pool could grant — retry
/// once under a *full* per-query lease (waiting in the admission queue
/// until one is free). A second OOM is genuine: the plan needs more
/// than the per-query or global budget allows.
///
/// A job that dies of an injected crash ([`MqError::Crash`]) moves
/// through the crashed → recovering → done state machine: the runtime
/// charges a doubling simulated backoff, then asks the engine to
/// recover the query from its checkpoint manifest (salvaging completed
/// segments, sweeping orphans, resuming the remainder). The budget is
/// bounded by `recovery_attempt_limit`; a query still crashed after
/// the last attempt is reaped — manifest closed, debris swept — and
/// fails with the final crash error.
fn run_admitted(
    engine: &Engine,
    broker: &MemoryBroker,
    plan: &LogicalPlan,
    sql: Option<&str>,
    mode: ReoptMode,
    ctl: &JobCtl<'_>,
    gauges: Option<&Gauges<'_>>,
) -> AdmittedRun {
    let cfg = engine.config();
    let desired = cfg.query_memory_bytes;
    let mut min = min_admission_bytes(cfg);
    // Scope the fault schedule over admission too: injected grant
    // denials clamp the initial lease exactly like a mid-query denial.
    // (The engine re-enters the same injector for the query body —
    // nested scopes over shared counters compose.)
    let _fault_scope = ctl.fault.map(FaultInjector::enter_scope);
    // Scope observability over admission too: the broker's lease
    // acquire/deny events fire while this job waits in the queue. The
    // engine re-enters the same handle for the query body (nested
    // scopes over a shared sequence counter compose).
    let _obs_scope = ctl
        .obs
        .filter(|o| o.is_active())
        .map(mq_obs::Obs::enter_scope);
    let mut recoveries = 0u32;
    let mut segments_salvaged = 0u32;
    loop {
        // Partitioned jobs admit all-or-nothing: one lease per
        // simulated worker, granted atomically so two partitioned jobs
        // cannot deadlock each other holding half their workers. The
        // job's memory manager draws from the first lease (buckets are
        // time-multiplexed on the job thread); the rest model the
        // other workers' memory and are held for the query's duration.
        let (lease, _worker_leases) = match ctl.partitions {
            Some(p) if p > 1 => {
                let mut group = broker.acquire_group(p, min, desired);
                let first = group.remove(0);
                (first, group)
            }
            _ => (broker.acquire(min, desired), Vec::new()),
        };
        let granted = lease.granted();
        if let Some(g) = gauges {
            let cur = g.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            g.max_in_flight.fetch_max(cur, Ordering::SeqCst);
        }
        let query_id = engine.next_query_id();
        let mm = MemoryManager::with_lease(lease);
        let make_env = |temp_prefix: String| JobEnv {
            query_id,
            clock: ctl.clock.clone(),
            mm: mm.clone(),
            cancel: ctl.cancel.cloned(),
            deadline_ms: ctl.deadline_ms,
            temp_prefix,
            fault: ctl.fault.cloned(),
            obs: ctl.obs.cloned(),
            par: ctl.partitions.map(ParSpec::new),
        };
        // A query that arrived as SQL text probes the plan cache with
        // its normalized family key (plan-only queries have no text to
        // normalize and always take the ordinary path).
        let env = make_env(format!("tmp_reopt_q{query_id}_"));
        let mut outcome = match sql {
            Some(sql) => engine.run_with_sql(plan, sql, mode, env),
            None => engine.run_with(plan, mode, env),
        };
        // crashed → recovering → done. The job keeps its memory lease
        // across attempts (a recovering query does not re-queue for
        // admission), and each attempt charges a doubling simulated
        // backoff before the engine salvages and resumes.
        while matches!(outcome, Err(MqError::Crash(_)))
            && recoveries < engine.config().recovery_attempt_limit
        {
            recoveries += 1;
            charge_recovery_backoff(cfg, ctl.clock, recoveries);
            // `recover_with` overwrites the temp prefix with the
            // recovery generation's own.
            match engine.recover_with(query_id, make_env(String::new())) {
                Ok(recovery) => {
                    segments_salvaged += recovery.segments_salvaged;
                    outcome = Ok(recovery.outcome);
                }
                Err(e) => outcome = Err(e),
            }
        }
        if matches!(outcome, Err(MqError::Crash(_))) {
            // Recovery budget exhausted: the query is dead. Reap its
            // manifest and sweep the debris so the engine stays clean —
            // the salvageable capital is lost, the leak is not.
            engine.manifests().remove(query_id);
            engine.sweep_stale_temps();
        }
        if let Some(g) = gauges {
            g.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        let full = desired.min(broker.budget());
        if matches!(outcome, Err(MqError::OutOfMemory(_))) && granted < full {
            min = desired;
            continue;
        }
        return AdmittedRun {
            outcome,
            granted,
            recoveries,
            segments_salvaged,
        };
    }
}

/// Charge the simulated clock for recovery-attempt backoff:
/// `recovery_backoff_ms × 2^(attempt−1)`, expressed in CPU ops on the
/// job's clock (the simulated analogue of waiting out a restart).
fn charge_recovery_backoff(cfg: &mq_common::EngineConfig, clock: &SimClock, attempt: u32) {
    if cfg.cpu_op_ms <= 0.0 {
        return;
    }
    let factor = f64::from(1u32 << attempt.saturating_sub(1).min(16));
    let backoff_ms = cfg.recovery_backoff_ms * factor;
    clock.add_cpu((backoff_ms / cfg.cpu_op_ms).ceil() as u64);
}

/// Execute one workload query on the calling thread.
#[allow(clippy::too_many_arguments)]
fn run_one(
    engine: &Engine,
    broker: &Arc<MemoryBroker>,
    q: &WorkloadQuery,
    base_obs: Option<&mq_obs::Obs>,
    default_partitions: Option<usize>,
    index: usize,
    worker: usize,
    in_flight: &AtomicUsize,
    max_in_flight: &AtomicUsize,
) -> JobResult {
    let cfg = engine.config();
    // A cancelled query should not occupy the admission queue.
    if let Some(token) = &q.cancel {
        if token.is_cancelled() {
            return JobResult {
                index,
                label: q.label.clone(),
                worker,
                sim_ms: 0.0,
                granted_bytes: 0,
                outcome: Err(MqError::Cancelled("cancelled before admission".into())),
                recoveries: 0,
                segments_salvaged: 0,
                metrics: mq_obs::MetricsSnapshot::default(),
            };
        }
    }
    // Per-job observability: same sink, span identity restamped to
    // this job, and a *fresh* metrics registry so the job's snapshot
    // is independent of scheduling (the chaos tests compare these
    // byte-for-byte across worker counts).
    let job_obs = base_obs.map(|o| {
        o.for_job(index as u64 + 1, &q.label)
            .with_metrics(mq_obs::MetricsRegistry::new())
    });
    let job_clock = engine.clock().child();
    let plan = match &q.spec {
        QuerySpec::Plan(plan) => Ok(plan.clone()),
        QuerySpec::Sql(sql) => mq_sql::plan_sql(sql, engine.catalog()),
    };
    let sql = match &q.spec {
        QuerySpec::Sql(sql) => Some(sql.as_str()),
        QuerySpec::Plan(_) => None,
    };
    let run = match plan {
        Ok(plan) => run_admitted(
            engine,
            broker,
            &plan,
            sql,
            q.mode,
            &JobCtl {
                clock: &job_clock,
                cancel: q.cancel.as_ref(),
                deadline_ms: q.deadline_ms,
                fault: q.fault.as_ref(),
                obs: job_obs.as_ref(),
                partitions: q.partitions.or(default_partitions),
            },
            Some(&Gauges {
                in_flight,
                max_in_flight,
            }),
        ),
        Err(e) => AdmittedRun {
            outcome: Err(e),
            granted: 0,
            recoveries: 0,
            segments_salvaged: 0,
        },
    };
    let metrics = match &job_obs {
        Some(o) => {
            let snap = o
                .metrics_registry()
                .expect("per-job registry attached above")
                .snapshot();
            // Merge into the workload-level registry, if the base
            // handle carries one.
            if let Some(base) = base_obs.and_then(mq_obs::Obs::metrics_registry) {
                base.absorb(&snap);
            }
            snap
        }
        None => mq_obs::MetricsSnapshot::default(),
    };
    JobResult {
        index,
        label: q.label.clone(),
        worker,
        sim_ms: job_clock.elapsed_ms(cfg),
        granted_bytes: run.granted,
        outcome: run.outcome,
        recoveries: run.recoveries,
        segments_salvaged: run.segments_salvaged,
        metrics,
    }
}

/// An interactive session: one query at a time over the shared engine,
/// leasing memory from the global broker per query, with session-level
/// cost accounting and cooperative cancellation.
pub struct Session {
    engine: Arc<Engine>,
    broker: Arc<MemoryBroker>,
    /// Child of the engine clock, accumulating across the session.
    clock: SimClock,
    cancel: CancelToken,
    /// Per-query deadline in simulated milliseconds, if set.
    deadline_ms: Option<f64>,
    /// Observability handle applied to every query of the session.
    obs: Option<mq_obs::Obs>,
    /// Intra-query partition count applied to every query of the
    /// session; `None` = serial execution.
    partitions: Option<usize>,
}

impl Session {
    /// Open a session over an engine and broker.
    pub fn new(engine: Arc<Engine>, broker: Arc<MemoryBroker>) -> Session {
        let clock = engine.clock().child();
        Session {
            engine,
            broker,
            clock,
            cancel: CancelToken::new(),
            deadline_ms: None,
            obs: None,
            partitions: None,
        }
    }

    /// Set (or clear) the session's observability handle: every
    /// subsequent query runs under its scope (events to its sink,
    /// metrics into its registry).
    pub fn set_obs(&mut self, obs: Option<mq_obs::Obs>) {
        self.obs = obs;
    }

    /// The session's observability handle, if set.
    pub fn obs(&self) -> Option<&mq_obs::Obs> {
        self.obs.as_ref()
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Set (or clear) a per-query deadline in simulated milliseconds.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<f64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Set (or clear) the intra-query partition count: subsequent
    /// queries run through the partitioned driver with `p` simulated
    /// workers (admission acquires `p` leases atomically).
    pub fn set_partitions(&mut self, partitions: Option<usize>) {
        self.partitions = partitions.map(|p| p.max(1));
    }

    /// The session's intra-query partition count, if set.
    pub fn partitions(&self) -> Option<usize> {
        self.partitions
    }

    /// A clone of the session's cancellation token — cancel it from
    /// another thread to abort the in-flight query.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Request cancellation of the in-flight (and any future) query.
    /// [`Session::reset_cancel`] re-arms the session afterwards.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Replace a fired cancellation token with a fresh one.
    pub fn reset_cancel(&mut self) {
        self.cancel = CancelToken::new();
    }

    /// Total simulated cost attributed to this session so far.
    pub fn cost(&self) -> CostSnapshot {
        self.clock.snapshot()
    }

    /// Total simulated milliseconds attributed to this session so far.
    pub fn sim_ms(&self) -> f64 {
        self.clock.elapsed_ms(self.engine.config())
    }

    /// Run a logical plan under the given mode.
    pub fn run(&self, plan: &LogicalPlan, mode: ReoptMode) -> Result<QueryOutcome> {
        self.run_inner(plan, None, mode)
    }

    /// Parse and run a SQL query under the given mode. The SQL text is
    /// threaded through to the engine so the plan cache can probe its
    /// normalized family key.
    pub fn run_sql(&self, sql: &str, mode: ReoptMode) -> Result<QueryOutcome> {
        let plan = mq_sql::plan_sql(sql, self.engine.catalog())?;
        self.run_inner(&plan, Some(sql), mode)
    }

    fn run_inner(
        &self,
        plan: &LogicalPlan,
        sql: Option<&str>,
        mode: ReoptMode,
    ) -> Result<QueryOutcome> {
        if self.cancel.is_cancelled() {
            return Err(MqError::Cancelled("session cancelled".into()));
        }
        let cfg = self.engine.config();
        // The session clock accumulates across queries, so a per-query
        // deadline becomes absolute against the current session time.
        let deadline_ms = self.deadline_ms.map(|d| self.clock.elapsed_ms(cfg) + d);
        run_admitted(
            &self.engine,
            &self.broker,
            plan,
            sql,
            mode,
            &JobCtl {
                clock: &self.clock,
                cancel: Some(&self.cancel),
                deadline_ms,
                fault: None,
                obs: self.obs.as_ref(),
                partitions: self.partitions,
            },
            None,
        )
        .outcome
    }
}

#[cfg(test)]
mod tests;
