use std::sync::Arc;

use mq_common::{DataType, EngineConfig, Row, Value};
use mq_reopt::{Engine, ReoptMode};

use crate::{Runtime, Workload, WorkloadQuery};

/// An engine with one table `t(k INT, v INT)` of `rows` rows.
fn engine_with_table(rows: i64) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig::default()).expect("engine");
    engine
        .catalog()
        .create_table(
            engine.storage(),
            "t",
            vec![("k", DataType::Int), ("v", DataType::Int)],
        )
        .expect("create");
    for i in 0..rows {
        engine
            .catalog()
            .insert_row(
                engine.storage(),
                "t",
                Row::new(vec![Value::Int(i), Value::Int(i % 17)]),
            )
            .expect("insert");
    }
    Arc::new(engine)
}

fn mix(n: usize) -> Vec<WorkloadQuery> {
    let sqls = [
        "SELECT v, count(*) AS n FROM t GROUP BY v ORDER BY v",
        "SELECT k, v FROM t WHERE v < 5",
        "SELECT count(*) AS n FROM t",
        "SELECT k FROM t WHERE k >= 100 ORDER BY k",
    ];
    (0..n)
        .map(|i| {
            WorkloadQuery::sql(format!("q{i}"), sqls[i % sqls.len()]).with_mode(if i % 2 == 0 {
                ReoptMode::Full
            } else {
                ReoptMode::Off
            })
        })
        .collect()
}

#[test]
fn workload_runs_and_attributes_cost() {
    let engine = engine_with_table(3000);
    let runtime = Runtime::with_default_budget(Arc::clone(&engine), 3);
    let global_before = engine.clock().snapshot();

    let mut workload = Workload::new(3);
    workload.queries = mix(9);
    let report = runtime.run_workload(&workload);

    assert_eq!(report.results.len(), 9);
    assert_eq!(report.succeeded(), 9, "{}", report.summary());
    assert!(report.max_in_flight >= 1 && report.max_in_flight <= 3);
    assert!(report.broker_high_water <= runtime.broker().budget());
    // Every job got real work attributed to its own clock, and the
    // global aggregate advanced by at least the largest job (charges
    // propagate child -> parent exactly once).
    let global_delta = engine.clock().snapshot().since(&global_before);
    for r in &report.results {
        assert!(r.sim_ms > 0.0, "job {} has no attributed cost", r.label);
        assert!(r.granted_bytes >= 4 * engine.config().page_size);
    }
    assert!(
        global_delta.time_ms(engine.config()) + 1e-9 >= report.makespan_sim_ms / 3.0,
        "global clock did not see the jobs' work"
    );
    assert!(report.makespan_sim_ms > 0.0);
    assert!(report.serial_sim_ms + 1e-9 >= report.makespan_sim_ms);
    assert!(report.throughput_qps() > 0.0);
}

#[test]
fn serial_and_concurrent_agree_on_rows() {
    let engine = engine_with_table(2000);
    let runtime = Runtime::with_default_budget(Arc::clone(&engine), 4);

    let mut serial = Workload::new(1);
    serial.queries = mix(8);
    let mut concurrent = Workload::new(4);
    concurrent.queries = mix(8);

    let a = runtime.run_workload(&serial);
    let b = runtime.run_workload(&concurrent);
    for (ra, rb) in a.results.iter().zip(&b.results) {
        let rows_a = ra.outcome.as_ref().expect("serial ok").rows.clone();
        let rows_b = rb.outcome.as_ref().expect("concurrent ok").rows.clone();
        let mut da: Vec<String> = rows_a.iter().map(|r| format!("{r:?}")).collect();
        let mut db: Vec<String> = rows_b.iter().map(|r| format!("{r:?}")).collect();
        da.sort();
        db.sort();
        assert_eq!(da, db, "rows differ for {}", ra.label);
    }
}

#[test]
fn tight_global_budget_serializes_admission() {
    let engine = engine_with_table(2000);
    // Budget = one full per-query grant: the broker can admit a second
    // query only at its (much smaller) minimum once the first released.
    let runtime = Runtime::new(Arc::clone(&engine), engine.config().query_memory_bytes);
    let mut workload = Workload::new(4);
    workload.queries = mix(8);
    let report = runtime.run_workload(&workload);
    assert_eq!(report.succeeded(), 8, "{}", report.summary());
    assert!(report.broker_high_water <= engine.config().query_memory_bytes);
}

#[test]
fn session_runs_cancels_and_accounts() {
    let engine = engine_with_table(2000);
    let runtime = Runtime::with_default_budget(Arc::clone(&engine), 2);
    let mut session = runtime.session();

    let out = session
        .run_sql("SELECT count(*) AS n FROM t", ReoptMode::Full)
        .expect("query");
    assert_eq!(out.rows.len(), 1);
    assert!(session.sim_ms() > 0.0);
    assert!(session.cost().cpu_ops > 0);

    session.cancel();
    let err = session
        .run_sql("SELECT count(*) AS n FROM t", ReoptMode::Off)
        .expect_err("cancelled session must not run");
    assert_eq!(err.kind(), "cancelled");

    session.reset_cancel();
    session
        .run_sql("SELECT count(*) AS n FROM t", ReoptMode::Off)
        .expect("re-armed session runs again");
}

#[test]
fn deadline_interrupts_query() {
    let engine = engine_with_table(5000);
    let runtime = Runtime::with_default_budget(Arc::clone(&engine), 1);
    let mut session = runtime.session();
    session.set_deadline_ms(Some(0.0));
    let err = session
        .run_sql("SELECT k, v FROM t", ReoptMode::Off)
        .expect_err("zero deadline must interrupt");
    assert_eq!(err.kind(), "cancelled", "got: {err}");
}

#[test]
fn cancelled_workload_query_fails_without_admission() {
    let engine = engine_with_table(500);
    let runtime = Runtime::with_default_budget(Arc::clone(&engine), 2);
    let token = mq_common::CancelToken::new();
    token.cancel();
    let mut workload = Workload::new(2);
    workload.queries = vec![
        WorkloadQuery::sql("ok", "SELECT count(*) AS n FROM t"),
        WorkloadQuery::sql("dead", "SELECT count(*) AS n FROM t").with_cancel(token),
    ];
    let report = runtime.run_workload(&workload);
    assert!(report.results[0].is_ok());
    let err = report.results[1].outcome.as_ref().expect_err("cancelled");
    assert_eq!(err.kind(), "cancelled");
    assert_eq!(report.results[1].granted_bytes, 0);
}

#[test]
fn workload_budget_override_uses_fresh_broker() {
    let engine = engine_with_table(500);
    let runtime = Runtime::with_default_budget(Arc::clone(&engine), 2);
    let mut workload = Workload::new(2);
    workload.queries = mix(4);
    let workload = workload.with_global_memory(64 * 1024);
    let report = runtime.run_workload(&workload);
    assert_eq!(report.global_budget_bytes, 64 * 1024);
    assert!(report.broker_high_water <= 64 * 1024);
    assert_eq!(report.succeeded(), 4, "{}", report.summary());
    // The runtime's own broker was not touched by the override run.
    assert_eq!(runtime.broker().high_water(), 0);
}

#[test]
fn injected_cancellation_mid_segment_leaves_no_leases_or_pins() {
    use mq_common::FaultInjector;
    let engine = engine_with_table(3000);
    let runtime = Runtime::with_default_budget(Arc::clone(&engine), 2);
    // Cancellation trigger after 5 logical I/Os: fires inside the first
    // segment, well before any phase completes.
    let inj = FaultInjector::new(vec![], Some(5));
    let mut workload = Workload::new(2);
    workload.queries = vec![
        WorkloadQuery::sql(
            "chaos",
            "SELECT v, count(*) AS n FROM t GROUP BY v ORDER BY v",
        )
        .with_faults(inj.clone()),
        WorkloadQuery::sql("ok", "SELECT count(*) AS n FROM t"),
    ];
    let report = runtime.run_workload(&workload);
    let err = report.results[0]
        .outcome
        .as_ref()
        .expect_err("injected cancellation");
    assert_eq!(err.kind(), "cancelled");
    assert!(inj.fired().cancels >= 1);
    assert!(report.results[1].is_ok());
    // No leaked lease, no stuck pins, no surviving temp state.
    assert_eq!(runtime.broker().in_use(), 0, "leaked lease");
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
    assert_eq!(engine.cleanup_failure_count(), 0);
}

#[test]
fn grant_denials_under_contended_broker_leak_nothing() {
    use mq_common::{FaultInjector, FaultKind, FaultSite, FaultSpec};
    let engine = engine_with_table(2000);
    let sql = "SELECT v, count(*) AS n FROM t GROUP BY v ORDER BY v";
    let oracle = {
        let plan = mq_sql::plan_sql(sql, engine.catalog()).expect("plan");
        let mut rows: Vec<String> = engine
            .run(&plan, mq_reopt::ReoptMode::Off)
            .expect("oracle")
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        rows.sort();
        rows
    };
    // One full per-query grant for four workers: admission contends,
    // and every query's first four grant requests are denied (clamped
    // to the minimum), forcing spills and the OOM-retry path.
    let runtime = Runtime::new(Arc::clone(&engine), engine.config().query_memory_bytes);
    let mut workload = Workload::new(4);
    workload.queries = (0..8)
        .map(|i| {
            let inj = FaultInjector::new(
                (1..=4u64)
                    .map(|g| FaultSpec {
                        site: FaultSite::Grant,
                        kind: FaultKind::Transient,
                        at: g,
                    })
                    .collect(),
                None,
            );
            WorkloadQuery::sql(format!("q{i}"), sql).with_faults(inj)
        })
        .collect();
    let report = runtime.run_workload(&workload);
    assert_eq!(report.succeeded(), 8, "{}", report.summary());
    for r in &report.results {
        let mut rows: Vec<String> = r
            .outcome
            .as_ref()
            .expect("ok")
            .rows
            .iter()
            .map(|row| format!("{row:?}"))
            .collect();
        rows.sort();
        assert_eq!(
            rows, oracle,
            "denied-grant query {} returned wrong rows",
            r.label
        );
    }
    assert_eq!(runtime.broker().in_use(), 0, "leaked lease");
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
}
