//! Workload specification: a batch of queries to run concurrently.

use mq_common::{CancelToken, FaultInjector};
use mq_plan::LogicalPlan;
use mq_reopt::ReoptMode;

/// How a workload query is specified: SQL text (parsed against the
/// shared catalog at dispatch time) or an already-bound logical plan.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// SQL text, parsed when the query is dispatched.
    Sql(String),
    /// A pre-bound logical plan (e.g. from [`mq_tpcd::queries`]).
    Plan(LogicalPlan),
}

/// One query of a concurrent workload.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Display label (query name, file line, ...).
    pub label: String,
    /// The query itself.
    pub spec: QuerySpec,
    /// Re-optimization mode to run under.
    pub mode: ReoptMode,
    /// Optional deadline in simulated milliseconds on the job's own
    /// clock (i.e. relative to query start).
    pub deadline_ms: Option<f64>,
    /// Optional cancellation token; cancel it from any thread to abort
    /// the query at its next segment boundary (or before admission).
    pub cancel: Option<CancelToken>,
    /// Optional deterministic fault schedule (chaos testing): scoped
    /// over admission and the whole query execution.
    pub fault: Option<FaultInjector>,
    /// Intra-query partition count: `Some(p)` runs the query through
    /// the partitioned driver with `p` simulated workers (admission
    /// then acquires `p` leases atomically). `None` falls back to the
    /// workload-level default, and serial execution if that is unset.
    pub partitions: Option<usize>,
}

impl WorkloadQuery {
    /// A SQL query.
    pub fn sql(label: impl Into<String>, sql: impl Into<String>) -> WorkloadQuery {
        WorkloadQuery {
            label: label.into(),
            spec: QuerySpec::Sql(sql.into()),
            mode: ReoptMode::Full,
            deadline_ms: None,
            cancel: None,
            fault: None,
            partitions: None,
        }
    }

    /// A pre-bound logical plan.
    pub fn plan(label: impl Into<String>, plan: LogicalPlan) -> WorkloadQuery {
        WorkloadQuery {
            label: label.into(),
            spec: QuerySpec::Plan(plan),
            mode: ReoptMode::Full,
            deadline_ms: None,
            cancel: None,
            fault: None,
            partitions: None,
        }
    }

    /// Set the re-optimization mode.
    pub fn with_mode(mut self, mode: ReoptMode) -> WorkloadQuery {
        self.mode = mode;
        self
    }

    /// Set a deadline in simulated milliseconds from query start.
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> WorkloadQuery {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> WorkloadQuery {
        self.cancel = Some(token);
        self
    }

    /// Attach a deterministic fault schedule.
    pub fn with_faults(mut self, fault: FaultInjector) -> WorkloadQuery {
        self.fault = Some(fault);
        self
    }

    /// Run through the partitioned driver with `p` simulated workers.
    pub fn with_partitions(mut self, p: usize) -> WorkloadQuery {
        self.partitions = Some(p.max(1));
        self
    }
}

/// A batch of queries plus the degree of parallelism to run them with.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries, dispatched FIFO.
    pub queries: Vec<WorkloadQuery>,
    /// Worker threads (1 = serial execution through the same path).
    pub workers: usize,
    /// Global memory budget for the broker; `None` means
    /// `workers × query_memory_bytes` (every worker can hold a full
    /// per-query budget, so admission never throttles).
    pub global_memory_bytes: Option<usize>,
    /// Base observability handle for the run: each job gets a
    /// [`mq_obs::Obs::for_job`] restamp of it (shared sink, fresh
    /// per-job metrics registry; per-job snapshots are merged back into
    /// this handle's registry, when it carries one).
    pub obs: Option<mq_obs::Obs>,
    /// Default intra-query partition count applied to every query that
    /// does not set its own. `None` = serial execution.
    pub partitions: Option<usize>,
}

impl Workload {
    /// An empty workload with the given worker count.
    pub fn new(workers: usize) -> Workload {
        Workload {
            queries: Vec::new(),
            workers: workers.max(1),
            global_memory_bytes: None,
            obs: None,
            partitions: None,
        }
    }

    /// Attach an observability handle (builder style).
    pub fn with_obs(mut self, obs: mq_obs::Obs) -> Workload {
        self.obs = Some(obs);
        self
    }

    /// Append a query (builder style).
    pub fn query(mut self, q: WorkloadQuery) -> Workload {
        self.queries.push(q);
        self
    }

    /// Set an explicit global memory budget (builder style).
    pub fn with_global_memory(mut self, bytes: usize) -> Workload {
        self.global_memory_bytes = Some(bytes);
        self
    }

    /// Set the default intra-query partition count (builder style).
    pub fn with_partitions(mut self, p: usize) -> Workload {
        self.partitions = Some(p.max(1));
        self
    }
}
