//! Per-job and per-workload results.

use mq_common::Result;
use mq_obs::MetricsSnapshot;
use mq_reopt::QueryOutcome;

/// The result of one workload query.
#[derive(Debug)]
pub struct JobResult {
    /// Position in the workload's submission order.
    pub index: usize,
    /// The query's label.
    pub label: String,
    /// Which worker executed it.
    pub worker: usize,
    /// Simulated milliseconds attributed to this job alone (its child
    /// clock: execution, optimizer work, and its share of shared
    /// buffer-pool traffic while it ran on the worker thread).
    pub sim_ms: f64,
    /// Bytes the broker had granted this job at admission.
    pub granted_bytes: usize,
    /// The outcome — or the error (cancellation, deadline, OOM, ...).
    pub outcome: Result<QueryOutcome>,
    /// Crash-recovery attempts the runtime made for this job (a
    /// simulated kill leaves a checkpoint manifest; each attempt
    /// salvages completed segments and resumes).
    pub recoveries: u32,
    /// Checkpointed segments salvaged across all recovery attempts —
    /// work that survived the crash instead of being recomputed.
    pub segments_salvaged: u32,
    /// Per-job metrics snapshot (empty when the workload ran without
    /// an observability handle). Unlike `outcome`, this is populated
    /// even for failed queries — the events up to the failure folded
    /// into the job's registry before it unwound.
    pub metrics: MetricsSnapshot,
}

impl JobResult {
    /// Did the query complete?
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Result cardinality (0 for failed queries).
    pub fn rows(&self) -> usize {
        self.outcome.as_ref().map(|o| o.rows.len()).unwrap_or(0)
    }

    /// `ok` or the error kind (`oom`, `cancelled`, ...).
    pub fn outcome_str(&self) -> &'static str {
        match &self.outcome {
            Ok(_) => "ok",
            Err(e) => e.kind(),
        }
    }

    /// Segments re-run after a transient fault — from the metrics
    /// snapshot when one was collected, else from the outcome.
    pub fn segment_retries(&self) -> u64 {
        if self.metrics.is_empty() {
            self.outcome
                .as_ref()
                .map(|o| u64::from(o.segment_retries))
                .unwrap_or(0)
        } else {
            self.metrics.counter("midq_segment_retries_total")
        }
    }

    /// Re-optimization decisions the controller weighed (all verdicts)
    /// — from the metrics snapshot when one was collected, else the
    /// accepted switches from the outcome.
    pub fn reopt_decisions(&self) -> u64 {
        if self.metrics.is_empty() {
            self.outcome
                .as_ref()
                .map(|o| u64::from(o.plan_switches))
                .unwrap_or(0)
        } else {
            self.metrics.counter("midq_reopt_decisions_total")
        }
    }

    /// Cross-query cache hits this job benefited from (sub-trees
    /// replaced by `CachedScan`s) — from the metrics snapshot when one
    /// was collected, else from the controller event log.
    pub fn cache_hits(&self) -> u64 {
        if self.metrics.is_empty() {
            self.count_events("cache: hit")
        } else {
            self.metrics.counter("midq_cache_hits_total")
        }
    }

    /// Cache probes of this job that found no usable entry.
    pub fn cache_misses(&self) -> u64 {
        if self.metrics.is_empty() {
            self.count_events("cache: miss")
        } else {
            self.metrics.counter("midq_cache_misses_total")
        }
    }

    /// Bytes of intermediate results this job read from the cache
    /// instead of recomputing (0 without a metrics snapshot — the
    /// event log does not carry byte counts).
    pub fn cache_bytes_saved(&self) -> u64 {
        self.metrics.counter("midq_cache_bytes_saved_total")
    }

    /// Plan-cache hits: runs of this job served by a rebound plan
    /// template (join enumeration skipped) — from the metrics snapshot
    /// when one was collected, else from the controller event log.
    pub fn plan_cache_hits(&self) -> u64 {
        if self.metrics.is_empty() {
            self.count_events("plancache: hit")
        } else {
            self.metrics.counter("midq_plancache_hits_total")
        }
    }

    /// Plan-cache probes that fell through to full optimization
    /// (misses plus stale re-optimizations).
    pub fn plan_cache_misses(&self) -> u64 {
        if self.metrics.is_empty() {
            self.count_events("plancache: miss") + self.count_events("plancache: stale")
        } else {
            self.metrics.counter("midq_plancache_misses_total")
                + self.metrics.counter("midq_plancache_reopts_total")
        }
    }

    fn count_events(&self, prefix: &str) -> u64 {
        self.outcome
            .as_ref()
            .map(|o| o.events.iter().filter(|e| e.starts_with(prefix)).count() as u64)
            .unwrap_or(0)
    }
}

/// Aggregate report for a concurrent workload run.
#[derive(Debug)]
pub struct WorkloadReport {
    /// Per-query results, in submission order.
    pub results: Vec<JobResult>,
    /// Worker threads used.
    pub workers: usize,
    /// The broker's global budget in bytes.
    pub global_budget_bytes: usize,
    /// Peak bytes the broker ever had outstanding — never exceeds the
    /// global budget (asserted in tests).
    pub broker_high_water: usize,
    /// Peak number of queries simultaneously admitted (in flight).
    pub max_in_flight: usize,
    /// Simulated makespan: the largest per-worker sum of job times —
    /// the workload's end-to-end simulated duration with workers
    /// running in parallel.
    pub makespan_sim_ms: f64,
    /// Sum of all job times (what a single worker would have taken).
    pub serial_sim_ms: f64,
    /// Real (host) milliseconds the run took.
    pub wall_ms: f64,
}

impl WorkloadReport {
    /// Queries that completed.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Queries that failed (cancelled, deadline, error).
    pub fn failed(&self) -> usize {
        self.results.len() - self.succeeded()
    }

    /// Total crash-recovery attempts across the workload.
    pub fn recoveries(&self) -> u32 {
        self.results.iter().map(|r| r.recoveries).sum()
    }

    /// Total checkpointed segments salvaged across the workload.
    pub fn segments_salvaged(&self) -> u32 {
        self.results.iter().map(|r| r.segments_salvaged).sum()
    }

    /// Total cross-query cache hits across the workload.
    pub fn cache_hits(&self) -> u64 {
        self.results.iter().map(JobResult::cache_hits).sum()
    }

    /// Total cache probes that found no usable entry.
    pub fn cache_misses(&self) -> u64 {
        self.results.iter().map(JobResult::cache_misses).sum()
    }

    /// Total bytes read from the cache instead of recomputed.
    pub fn cache_bytes_saved(&self) -> u64 {
        self.results.iter().map(JobResult::cache_bytes_saved).sum()
    }

    /// Total plan-cache hits across the workload.
    pub fn plan_cache_hits(&self) -> u64 {
        self.results.iter().map(JobResult::plan_cache_hits).sum()
    }

    /// Total plan-cache fall-throughs (misses + stale) across the
    /// workload.
    pub fn plan_cache_misses(&self) -> u64 {
        self.results.iter().map(JobResult::plan_cache_misses).sum()
    }

    /// Queries per simulated second, against the parallel makespan.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_sim_ms <= 0.0 {
            return 0.0;
        }
        self.results.len() as f64 / (self.makespan_sim_ms / 1000.0)
    }

    /// Simulated speedup over serial execution of the same jobs.
    pub fn speedup(&self) -> f64 {
        if self.makespan_sim_ms <= 0.0 {
            return 1.0;
        }
        self.serial_sim_ms / self.makespan_sim_ms
    }

    /// Human-readable multi-line summary (CLI, experiments).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== workload: {} queries on {} workers ==",
            self.results.len(),
            self.workers
        );
        for r in &self.results {
            let _ = write!(
                out,
                "{:>3}. {:<16} worker {} {:>10.1} ms  {:<9} {:>7} rows  retries={}  reopts={}",
                r.index + 1,
                r.label,
                r.worker,
                r.sim_ms,
                r.outcome_str(),
                r.rows(),
                r.segment_retries(),
                r.reopt_decisions()
            );
            if r.recoveries > 0 {
                let _ = write!(
                    out,
                    "  recoveries={} salvaged={}",
                    r.recoveries, r.segments_salvaged
                );
            }
            if r.cache_hits() + r.cache_misses() > 0 {
                let _ = write!(out, "  cache={}h/{}m", r.cache_hits(), r.cache_misses());
            }
            if r.plan_cache_hits() + r.plan_cache_misses() > 0 {
                let _ = write!(
                    out,
                    "  plancache={}h/{}m",
                    r.plan_cache_hits(),
                    r.plan_cache_misses()
                );
            }
            match &r.outcome {
                Ok(o) => {
                    let _ = writeln!(
                        out,
                        "  {} switches  {} reallocs",
                        o.plan_switches, o.memory_reallocs
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "  ({e})");
                }
            }
        }
        let _ = writeln!(
            out,
            "ok {}/{}   makespan {:.1} sim-ms (serial {:.1}, speedup {:.2}x)   {:.2} q/sim-s",
            self.succeeded(),
            self.results.len(),
            self.makespan_sim_ms,
            self.serial_sim_ms,
            self.speedup(),
            self.throughput_qps()
        );
        if self.recoveries() > 0 {
            let _ = writeln!(
                out,
                "crash recovery: {} attempt(s), {} segment(s) salvaged",
                self.recoveries(),
                self.segments_salvaged()
            );
        }
        if self.cache_hits() + self.cache_misses() > 0 {
            let _ = writeln!(
                out,
                "cache: {} hit(s), {} miss(es), {} KiB saved",
                self.cache_hits(),
                self.cache_misses(),
                self.cache_bytes_saved() / 1024
            );
        }
        if self.plan_cache_hits() + self.plan_cache_misses() > 0 {
            let _ = writeln!(
                out,
                "plan cache: {} hit(s), {} fall-through(s) to full optimization",
                self.plan_cache_hits(),
                self.plan_cache_misses()
            );
        }
        let _ = writeln!(
            out,
            "memory: budget {} KiB, high water {} KiB   max in flight {}   wall {:.0} ms",
            self.global_budget_bytes / 1024,
            self.broker_high_water / 1024,
            self.max_in_flight,
            self.wall_ms
        );
        out
    }
}
