//! Query-graph decomposition and System-R dynamic-programming join
//! enumeration (left-deep, as in Selinger et al. \[22\], which the
//! Paradise optimizer follows).

use std::collections::HashMap;

use mq_catalog::{Catalog, TableEntry};
use mq_common::{EngineConfig, MqError, Result, Value};
use mq_expr::{estimate_selectivity, CmpOp, Expr};
use mq_plan::{subplan_fingerprint, LogicalPlan, PhysOp, PhysPlan, ScanSpec};
use mq_storage::Storage;

use crate::cost::recost;
use crate::feedback::{CardFeedback, GraphFeedbackHit};
use crate::props::RelProps;

/// One base relation of the join region, with its pushed-down local
/// predicate and post-predicate statistics.
#[derive(Debug, Clone)]
pub struct BaseRel {
    /// Catalog entry snapshot.
    pub entry: TableEntry,
    /// Conjunction of local predicates (unbound).
    pub local: Option<Expr>,
    /// Statistics after local predicates.
    pub props: RelProps,
    /// Statistics before local predicates.
    pub raw_props: RelProps,
    /// Live row count from storage metadata.
    pub live_rows: u64,
    /// Live page count from storage metadata.
    pub live_pages: u64,
}

/// An equi-join edge between two relations (qualified column names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Index of the relation owning `left_col`.
    pub left_rel: usize,
    /// Column on the left relation.
    pub left_col: String,
    /// Index of the relation owning `right_col`.
    pub right_rel: usize,
    /// Column on the right relation.
    pub right_col: String,
}

/// The flattened join region of a query plus everything above it.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    /// Base relations.
    pub relations: Vec<BaseRel>,
    /// Equi-join edges.
    pub edges: Vec<JoinEdge>,
    /// Conjuncts not pushable anywhere (applied after the last join).
    pub residual: Vec<Expr>,
}

/// Decompose the join region of `logical` (scans, filters, joins) into
/// a [`QueryGraph`]. `post` receives the operators above the join
/// region, outermost first.
pub fn decompose(
    logical: &LogicalPlan,
    catalog: &Catalog,
    storage: &Storage,
    cfg: &EngineConfig,
    post: &mut Vec<LogicalPlan>,
) -> Result<QueryGraph> {
    // Peel post-join operators.
    let mut cur = logical;
    while let LogicalPlan::Project { input, .. }
    | LogicalPlan::Aggregate { input, .. }
    | LogicalPlan::Sort { input, .. }
    | LogicalPlan::Limit { input, .. } = cur
    {
        post.push(shallow(cur));
        cur = input;
    }

    // Collect scans and predicates from the join region.
    let mut rels: Vec<(String, Vec<Expr>)> = Vec::new();
    let mut preds: Vec<Expr> = Vec::new();
    collect_region(cur, &mut rels, &mut preds)?;
    if rels.is_empty() {
        return Err(MqError::Plan("query has no base relations".into()));
    }

    // Build entries first so predicates can be attributed.
    let mut entries = Vec::with_capacity(rels.len());
    for (name, _) in &rels {
        entries.push(catalog.table(name)?);
    }

    // Classify the floating predicates.
    let mut local_extra: Vec<Vec<Expr>> = vec![Vec::new(); rels.len()];
    let mut edges = Vec::new();
    let mut residual = Vec::new();
    for p in preds {
        match classify(&p, &entries) {
            Class::Local(i) => local_extra[i].push(p),
            Class::Join(e) => edges.push(e),
            Class::Residual => residual.push(p),
        }
    }

    // Implied-predicate derivation from disjunctions: for a residual
    // like `(n1.name='FRANCE' AND n2.name='GERMANY') OR (n1.name=
    // 'GERMANY' AND n2.name='FRANCE')` (TPC-D Q7), every disjunct
    // constrains n1, so `n1.name='FRANCE' OR n1.name='GERMANY'` is
    // implied and can be pushed to n1's scan (and likewise n2). The
    // original residual stays for exactness.
    for r in &residual {
        let Expr::Or(disjuncts) = r else { continue };
        if disjuncts.is_empty() {
            continue;
        }
        for (i, _) in entries.iter().enumerate() {
            let mut per_disjunct: Vec<Expr> = Vec::with_capacity(disjuncts.len());
            let mut all_covered = true;
            for d in disjuncts {
                let parts: Vec<Expr> = d
                    .conjuncts()
                    .into_iter()
                    .filter(|c| matches!(classify(c, &entries), Class::Local(j) if j == i))
                    .collect();
                if parts.is_empty() {
                    all_covered = false;
                    break;
                }
                per_disjunct.push(mq_expr::and(parts));
            }
            if all_covered {
                local_extra[i].push(Expr::Or(per_disjunct));
            }
        }
    }

    let mut relations = Vec::with_capacity(rels.len());
    for (i, ((_, mut local), entry)) in rels.into_iter().zip(entries).enumerate() {
        local.append(&mut local_extra[i]);
        let local = if local.is_empty() {
            None
        } else {
            Some(mq_expr::and(local))
        };
        let live_rows = storage.file_rows(entry.file)?;
        let live_pages = storage.file_pages(entry.file)? as u64;
        let raw_props = RelProps::from_table(&entry, live_rows, live_pages, cfg);
        let props = match &local {
            Some(p) => raw_props.filtered(p, cfg).0,
            None => raw_props.clone(),
        };
        relations.push(BaseRel {
            entry,
            local,
            props,
            raw_props,
            live_rows,
            live_pages,
        });
    }
    Ok(QueryGraph {
        relations,
        edges,
        residual,
    })
}

fn shallow(p: &LogicalPlan) -> LogicalPlan {
    // Clone the node but truncate its input (placeholder scan); only the
    // node's own payload is used when re-assembling.
    p.clone()
}

fn collect_region(
    plan: &LogicalPlan,
    rels: &mut Vec<(String, Vec<Expr>)>,
    preds: &mut Vec<Expr>,
) -> Result<()> {
    match plan {
        LogicalPlan::Scan { table, filter } => {
            let fs = filter.as_ref().map(|f| f.conjuncts()).unwrap_or_default();
            rels.push((table.clone(), fs));
            Ok(())
        }
        LogicalPlan::Filter { input, predicate } => {
            preds.extend(predicate.conjuncts());
            collect_region(input, rels, preds)
        }
        LogicalPlan::Join { left, right, on } => {
            collect_region(left, rels, preds)?;
            collect_region(right, rels, preds)?;
            for (l, r) in on {
                preds.push(mq_expr::eq(mq_expr::col(l), mq_expr::col(r)));
            }
            Ok(())
        }
        other => Err(MqError::Plan(format!(
            "operator {:?} not supported inside a join region",
            std::mem::discriminant(other)
        ))),
    }
}

enum Class {
    Local(usize),
    Join(JoinEdge),
    Residual,
}

fn owner(entries: &[TableEntry], colname: &str) -> Option<usize> {
    let mut found = None;
    for (i, e) in entries.iter().enumerate() {
        if e.schema.index_of(colname).is_ok() {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some(i);
        }
    }
    found
}

fn classify(p: &Expr, entries: &[TableEntry]) -> Class {
    let cols = p.referenced_columns();
    let mut owners: Vec<usize> = Vec::new();
    for c in &cols {
        match owner(entries, c) {
            Some(i) => owners.push(i),
            None => return Class::Residual,
        }
    }
    owners.sort_unstable();
    owners.dedup();
    match owners.len() {
        0 => Class::Residual, // constant predicate
        1 => Class::Local(owners[0]),
        2 => {
            // A two-table equality between bare columns is a join edge.
            if let Expr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } = p
            {
                if let (Expr::Column(l), Expr::Column(r)) = (left.as_ref(), right.as_ref()) {
                    let lo = owner(entries, l);
                    let ro = owner(entries, r);
                    if let (Some(lo), Some(ro)) = (lo, ro) {
                        if lo != ro {
                            return Class::Join(JoinEdge {
                                left_rel: lo,
                                left_col: l.to_string(),
                                right_rel: ro,
                                right_col: r.to_string(),
                            });
                        }
                    }
                }
            }
            Class::Residual
        }
        _ => Class::Residual,
    }
}

/// One DP table entry.
#[derive(Debug, Clone)]
struct Candidate {
    plan: PhysPlan,
    props: RelProps,
    cost_ms: f64,
}

/// Result of enumeration: cheapest join tree plus its properties and
/// the number of candidate plans costed (the optimizer "work units"
/// used to calibrate `T_opt`).
#[derive(Debug, Clone)]
pub struct Enumerated {
    /// Cheapest physical join tree (annotated, un-idented).
    pub plan: PhysPlan,
    /// Statistics of its output.
    pub props: RelProps,
    /// Candidate plans costed during the search.
    pub work_units: u64,
    /// Estimate overrides taken from the cardinality feedback store
    /// during the search, deduplicated by fingerprint (empty without
    /// feedback).
    pub feedback_hits: Vec<GraphFeedbackHit>,
}

/// Override a DP candidate's output-row estimate when the feedback
/// store has observed this exact sub-plan's true cardinality. The
/// correction lands on `props.rows` *before* the candidate competes and
/// before anything joins on top of it, so one observed sub-plan steers
/// the operator choice and join order of the whole tree above it.
///
/// Fingerprints are physical-operator-sensitive (`hj(…)` ≠ `inlj(…)`),
/// so an observation made under one join operator does not transfer to
/// an alternative operator for the same logical join — the alternative
/// keeps its catalog estimate. That bias is harmless in practice: the
/// corrected candidate carries the truth upward once it wins, and it
/// wins exactly when the truth makes it cheapest.
fn consult_feedback(
    plan: &mut PhysPlan,
    props: &mut RelProps,
    feedback: Option<&dyn CardFeedback>,
    cfg: &EngineConfig,
    hits: &mut Vec<GraphFeedbackHit>,
) {
    let Some(fb) = feedback else { return };
    let fp = subplan_fingerprint(plan);
    let Some(observed) = fb.observed_rows(fp) else {
        return;
    };
    if !observed.is_finite() || observed < 0.0 || observed == plan.annot.est_rows {
        return;
    }
    if !hits.iter().any(|h| h.fingerprint == fp) {
        hits.push(GraphFeedbackHit {
            table: mq_plan::base_tables(plan).join(","),
            fingerprint: fp,
            estimated_rows: plan.annot.est_rows,
            observed_rows: observed,
            // Join-level hits are never attributable to one base-table
            // column; only graph-level (single-relation) hits drive the
            // adaptive histogram refresh.
            columns: Vec::new(),
        });
    }
    plan.annot.est_rows = observed;
    props.rows = observed;
    recost(plan, cfg);
}

/// Enumerate left-deep join orders over the query graph and return the
/// cheapest plan under the cost model (optimistic full-budget memory).
/// With `feedback`, every candidate sub-plan's cardinality is checked
/// against previously observed truths (see [`consult_feedback`]).
pub fn enumerate(
    graph: &QueryGraph,
    storage: &Storage,
    cfg: &EngineConfig,
    feedback: Option<&dyn CardFeedback>,
) -> Result<Enumerated> {
    let n = graph.relations.len();
    if n > 12 {
        return Err(MqError::Plan(format!(
            "too many relations to enumerate: {n}"
        )));
    }
    let mut work: u64 = 0;
    let mut best: HashMap<u64, Candidate> = HashMap::new();
    let mut feedback_hits: Vec<GraphFeedbackHit> = Vec::new();

    // Singletons: best access path per relation.
    for (i, rel) in graph.relations.iter().enumerate() {
        let (plan, extra_work) = best_access_path(rel, storage, cfg)?;
        work += extra_work;
        let mut plan = plan;
        recost(&mut plan, cfg);
        let mut props = rel.props.clone();
        consult_feedback(&mut plan, &mut props, feedback, cfg, &mut feedback_hits);
        best.insert(
            1 << i,
            Candidate {
                cost_ms: plan.annot.est_total_time_ms,
                props,
                plan,
            },
        );
    }

    for size in 2..=n {
        let mut masks: Vec<u64> = best
            .keys()
            .copied()
            .filter(|m| m.count_ones() as usize == size - 1)
            .collect();
        masks.sort_unstable(); // determinism: HashMap order is arbitrary
        let mut found_connected = vec![false; 0];
        let _ = &mut found_connected;
        for mask in masks {
            let left = best.get(&mask).cloned().expect("present");
            // Prefer connected extensions; fall back to cross products
            // only when nothing connects (star queries stay connected).
            let mut connected_any = false;
            for rel_idx in 0..n {
                if mask & (1 << rel_idx) != 0 {
                    continue;
                }
                let pairs = connecting_pairs(graph, mask, rel_idx);
                if !pairs.is_empty() {
                    connected_any = true;
                }
            }
            for rel_idx in 0..n {
                if mask & (1 << rel_idx) != 0 {
                    continue;
                }
                let pairs = connecting_pairs(graph, mask, rel_idx);
                if pairs.is_empty() && connected_any {
                    continue;
                }
                let new_mask = mask | (1 << rel_idx);
                for mut cand in
                    join_candidates(&left, &graph.relations[rel_idx], &pairs, storage, cfg)?
                {
                    work += 1;
                    consult_feedback(
                        &mut cand.plan,
                        &mut cand.props,
                        feedback,
                        cfg,
                        &mut feedback_hits,
                    );
                    cand.cost_ms = cand.plan.annot.est_total_time_ms;
                    let entry = best.get(&new_mask);
                    if entry.is_none_or(|e| cand.cost_ms < e.cost_ms) {
                        best.insert(new_mask, cand);
                    }
                }
            }
        }
    }

    let full = (1u64 << n) - 1;
    let winner = best
        .remove(&full)
        .ok_or_else(|| MqError::Plan("join enumeration found no complete plan".into()))?;
    Ok(Enumerated {
        plan: winner.plan,
        props: winner.props,
        work_units: work,
        feedback_hits,
    })
}

/// Join-column pairs (left qualified col, right qualified col) between
/// the subset `mask` and relation `rel_idx`.
fn connecting_pairs(graph: &QueryGraph, mask: u64, rel_idx: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for e in &graph.edges {
        if e.left_rel == rel_idx && mask & (1 << e.right_rel) != 0 {
            out.push((e.right_col.clone(), e.left_col.clone()));
        } else if e.right_rel == rel_idx && mask & (1 << e.left_rel) != 0 {
            out.push((e.left_col.clone(), e.right_col.clone()));
        }
    }
    out
}

/// Best access path for one base relation: sequential scan versus index
/// scan on any indexed, range/eq-constrained column.
fn best_access_path(
    rel: &BaseRel,
    storage: &Storage,
    cfg: &EngineConfig,
) -> Result<(PhysPlan, u64)> {
    let spec = ScanSpec {
        table: rel.entry.name.clone(),
        file: rel.entry.file,
        pages: rel.live_pages.max(1),
        rows: rel.live_rows,
    };
    let mut work = 1u64;

    let bound_local = match &rel.local {
        Some(p) => Some(p.bind(&rel.entry.schema)?),
        None => None,
    };
    let mut seq = PhysPlan::new(
        PhysOp::SeqScan {
            spec: spec.clone(),
            filter: bound_local.clone(),
        },
        vec![],
        rel.entry.schema.clone(),
    );
    seq.annot.est_rows = rel.props.rows;
    seq.annot.est_row_bytes = rel.props.row_bytes;
    recost(&mut seq, cfg);
    let mut best_plan = seq;

    // Try each index whose column has a sargable conjunct.
    if let Some(local) = &rel.local {
        let conjs = local.conjuncts();
        for (colname, index) in &rel.entry.indexes {
            let mut lo: Option<Value> = None;
            let mut hi: Option<Value> = None;
            let mut residual: Vec<Expr> = Vec::new();
            let mut index_sel_pred: Vec<Expr> = Vec::new();
            for c in &conjs {
                match sargable(c, colname) {
                    Some((op, v)) => {
                        match op {
                            CmpOp::Eq => {
                                lo = Some(v.clone());
                                hi = Some(v.clone());
                            }
                            CmpOp::Ge | CmpOp::Gt => {
                                lo = Some(bound_max(lo.take(), v.clone(), true))
                            }
                            CmpOp::Le | CmpOp::Lt => {
                                hi = Some(bound_max(hi.take(), v.clone(), false))
                            }
                            _ => {
                                residual.push(c.clone());
                                continue;
                            }
                        }
                        index_sel_pred.push(c.clone());
                    }
                    None => residual.push(c.clone()),
                }
            }
            if lo.is_none() && hi.is_none() {
                continue;
            }
            work += 1;
            // Rows matched by the index predicate alone (drives I/O).
            let idx_pred = mq_expr::and(index_sel_pred.clone());
            let idx_sel = estimate_selectivity(&idx_pred, &rel.raw_props, cfg).selectivity;
            let match_rows = rel.raw_props.rows * idx_sel;
            let residual_expr = if residual.is_empty() {
                None
            } else {
                Some(mq_expr::and(residual.clone()).bind(&rel.entry.schema)?)
            };
            let clustering = column_clustering(&rel.entry, colname);
            let mut plan = PhysPlan::new(
                PhysOp::IndexScan {
                    spec: spec.clone(),
                    index: *index,
                    column: colname.clone(),
                    lo,
                    hi,
                    residual: residual_expr,
                    index_height: storage.index_height(*index)?,
                    clustering,
                },
                vec![],
                rel.entry.schema.clone(),
            );
            plan.annot.est_rows = rel.props.rows;
            plan.annot.est_row_bytes = rel.props.row_bytes;
            // Cost from the index-matched row count, not the final rows.
            plan.annot.est_rows = plan.annot.est_rows.max(0.0);
            recost(&mut plan, cfg);
            // recost uses est_rows for match volume; adjust: the I/O is
            // driven by match_rows, so re-derive with that and keep the
            // larger of the two estimates for safety.
            let adjusted = crate::cost::index_scan_cost(
                match_rows.max(1.0),
                plan_index_height(&plan) as f64,
                column_clustering(&rel.entry, colname),
                1.0,
            );
            plan.annot.est_cost = adjusted;
            plan.annot.est_time_ms = adjusted.time_ms(cfg);
            plan.annot.est_total_time_ms = plan.annot.est_time_ms;
            if plan.annot.est_total_time_ms < best_plan.annot.est_total_time_ms {
                best_plan = plan;
            }
        }
    }
    Ok((best_plan, work))
}

fn plan_index_height(p: &PhysPlan) -> usize {
    match &p.op {
        PhysOp::IndexScan { index_height, .. } => *index_height,
        _ => 1,
    }
}

fn sargable<'a>(conj: &'a Expr, colname: &str) -> Option<(CmpOp, &'a Value)> {
    if let Expr::Cmp { op, left, right } = conj {
        match (left.as_ref(), right.as_ref()) {
            (Expr::Column(n), Expr::Literal(v)) if bare(n) == colname => Some((*op, v)),
            (Expr::Literal(v), Expr::Column(n)) if bare(n) == colname => Some((op.flip(), v)),
            _ => None,
        }
    } else {
        None
    }
}

/// Stored physical clustering of a column (0 when unanalyzed).
fn column_clustering(entry: &TableEntry, column: &str) -> f64 {
    entry
        .stats
        .as_ref()
        .and_then(|s| s.columns.get(bare(column)))
        .map(|c| c.clustering)
        .unwrap_or(0.0)
}

fn bare(name: &str) -> &str {
    name.rsplit_once('.').map(|(_, b)| b).unwrap_or(name)
}

fn bound_max(cur: Option<Value>, new: Value, lower: bool) -> Value {
    match cur {
        None => new,
        Some(c) => {
            if lower {
                if new > c {
                    new
                } else {
                    c
                }
            } else if new < c {
                new
            } else {
                c
            }
        }
    }
}

/// All physical join alternatives for `left ⋈ rel` and their costs.
fn join_candidates(
    left: &Candidate,
    rel: &BaseRel,
    pairs: &[(String, String)],
    storage: &Storage,
    cfg: &EngineConfig,
) -> Result<Vec<Candidate>> {
    let mut out = Vec::new();
    let (right_plan, _) = best_access_path(rel, storage, cfg)?;
    let on: Vec<(String, String)> = pairs.to_vec();
    let (props, _sel) = left.props.joined(&rel.props, &on, cfg);

    // Hash join, build = left (the accumulated side). Paradise-style:
    // the intermediate result feeds the *build* of the next join, so
    // execution proceeds in segments with a decision point after every
    // build (the paper's Figures 1–7 all assume this shape, and the
    // memory-demand arithmetic of Figure 3 — "size of left input plus
    // overhead" — only works this way). Join *order* remains fully
    // cost-driven.
    {
        let build_keys = key_positions(&left.plan.schema, pairs.iter().map(|(l, _)| l.as_str()))?;
        let probe_keys = key_positions(&rel.entry.schema, pairs.iter().map(|(_, r)| r.as_str()))?;
        let schema = left.plan.schema.join(&right_plan.schema);
        let mut plan = PhysPlan::new(
            PhysOp::HashJoin {
                build_keys,
                probe_keys,
            },
            vec![left.plan.clone(), right_plan.clone()],
            schema,
        );
        plan.annot.est_rows = props.rows;
        plan.annot.est_row_bytes = props.row_bytes;
        recost(&mut plan, cfg);
        out.push(Candidate {
            cost_ms: plan.annot.est_total_time_ms,
            props: reorder_props(&props, &plan.schema),
            plan,
        });
    }

    // Indexed nested-loops: outer = left, inner = rel via index on its
    // join column (single-pair joins only).
    if pairs.len() == 1 {
        let (lcol, rcol) = &pairs[0];
        let rbare = bare(rcol);
        if let Some(index) = rel.entry.indexes.get(rbare) {
            let outer_key = left.plan.schema.index_of(lcol)?;
            let residual = match &rel.local {
                Some(p) => {
                    let joined_schema = left.plan.schema.join(&rel.entry.schema);
                    Some(p.bind(&joined_schema)?)
                }
                None => None,
            };
            let schema = left.plan.schema.join(&rel.entry.schema);
            let mut plan = PhysPlan::new(
                PhysOp::IndexNLJoin {
                    outer_key,
                    inner: ScanSpec {
                        table: rel.entry.name.clone(),
                        file: rel.entry.file,
                        pages: rel.live_pages.max(1),
                        rows: rel.live_rows,
                    },
                    index: *index,
                    inner_column: rbare.to_string(),
                    index_height: storage.index_height(*index)?,
                    clustering: column_clustering(&rel.entry, rbare),
                    residual,
                },
                vec![left.plan.clone()],
                schema,
            );
            plan.annot.est_rows = props.rows;
            plan.annot.est_row_bytes = props.row_bytes;
            recost(&mut plan, cfg);
            out.push(Candidate {
                cost_ms: plan.annot.est_total_time_ms,
                props: reorder_props(&props, &plan.schema),
                plan,
            });
        }
    }
    Ok(out)
}

fn key_positions<'a>(
    schema: &mq_common::Schema,
    names: impl Iterator<Item = &'a str>,
) -> Result<Vec<usize>> {
    names.map(|n| schema.index_of(n)).collect()
}

/// Re-align a props' schema to the actual plan output schema (column
/// stats are name-keyed, so only the schema field needs replacing).
fn reorder_props(props: &RelProps, schema: &mq_common::Schema) -> RelProps {
    let mut p = props.clone();
    p.schema = schema.clone();
    p
}

#[cfg(test)]
mod implied_tests {
    use super::*;
    use mq_common::{DataType, Row, SimClock, Value};
    use mq_expr::{col, eq, lit};

    #[test]
    fn disjunction_pushes_implied_per_table_predicates() {
        let cfg = EngineConfig::default();
        let storage = Storage::new(&cfg, SimClock::new());
        let catalog = Catalog::new();
        catalog
            .create_table(
                &storage,
                "n1",
                vec![("name", DataType::Str), ("k", DataType::Int)],
            )
            .unwrap();
        catalog
            .create_table(
                &storage,
                "n2",
                vec![("name", DataType::Str), ("k", DataType::Int)],
            )
            .unwrap();
        for t in ["n1", "n2"] {
            for i in 0..10i64 {
                catalog
                    .insert_row(
                        &storage,
                        t,
                        Row::new(vec![Value::str(format!("c{i}")), Value::Int(i)]),
                    )
                    .unwrap();
            }
        }
        let q = LogicalPlan::scan("n1")
            .join(LogicalPlan::scan("n2"), vec![("n1.k", "n2.k")])
            .filter(Expr::Or(vec![
                mq_expr::and(vec![
                    eq(col("n1.name"), lit("c1")),
                    eq(col("n2.name"), lit("c2")),
                ]),
                mq_expr::and(vec![
                    eq(col("n1.name"), lit("c2")),
                    eq(col("n2.name"), lit("c1")),
                ]),
            ]));
        let mut post = Vec::new();
        let graph = decompose(&q, &catalog, &storage, &cfg, &mut post).unwrap();
        // Both relations get an implied OR on their own name column…
        for rel in &graph.relations {
            let local = rel.local.as_ref().expect("implied predicate").to_string();
            assert!(local.contains("OR"), "{local}");
            assert!(local.contains("name"), "{local}");
        }
        // …and the exact residual survives.
        assert_eq!(graph.residual.len(), 1);
    }
}
