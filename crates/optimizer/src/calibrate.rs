//! Optimizer calibration for `T_opt,estimated`.
//!
//! §2.4: "Assuming the worst case, a query containing n joins requires
//! the most time for optimization if it is a star-join query. The time
//! taken to optimize a star-join query containing n joins is usually
//! rather stable for a given optimizer and database system. Hence, an
//! optimizer for a particular database system can be calibrated to
//! obtain these estimates."
//!
//! We do exactly that: build star-join queries of 1..=`max_joins`
//! joins over synthetic tables, optimize each, and record the DP work
//! units. `estimate_ms` then prices a prospective re-optimization of a
//! query with a given join count.

use mq_catalog::Catalog;
use mq_common::{DataType, EngineConfig, Result, Row, SimClock, Value};
use mq_plan::LogicalPlan;
use mq_storage::Storage;

use crate::Optimizer;

/// Calibrated optimizer-work table.
#[derive(Debug, Clone)]
pub struct OptCalibration {
    /// work_units[n] = DP candidates costed for an n-join star
    /// (index 0 = single-table query).
    work_by_joins: Vec<u64>,
}

impl OptCalibration {
    /// Calibrate by optimizing synthetic star joins up to `max_joins`.
    pub fn run(cfg: &EngineConfig, max_joins: usize) -> Result<OptCalibration> {
        let storage = Storage::new(cfg, SimClock::new());
        let catalog = Catalog::new();
        // Center table with one fk per satellite.
        let mut center_cols: Vec<(String, DataType)> = vec![("id".to_string(), DataType::Int)];
        for i in 0..max_joins {
            center_cols.push((format!("fk{i}"), DataType::Int));
        }
        catalog.create_table(
            &storage,
            "center",
            center_cols.iter().map(|(n, t)| (n.as_str(), *t)).collect(),
        )?;
        for r in 0..64i64 {
            let mut vals = vec![Value::Int(r)];
            for _ in 0..max_joins {
                vals.push(Value::Int(r % 8));
            }
            catalog.insert_row(&storage, "center", Row::new(vals))?;
        }
        for i in 0..max_joins {
            let name = format!("sat{i}");
            catalog.create_table(
                &storage,
                &name,
                vec![("pk", DataType::Int), ("payload", DataType::Int)],
            )?;
            for r in 0..8i64 {
                catalog.insert_row(
                    &storage,
                    &name,
                    Row::new(vec![Value::Int(r), Value::Int(r)]),
                )?;
            }
        }

        let optimizer = Optimizer::new(cfg.clone());
        let mut work_by_joins = vec![0u64];
        for n in 1..=max_joins {
            let mut q = LogicalPlan::scan("center");
            for i in 0..n {
                let fk = format!("center.fk{i}");
                let pk = format!("sat{i}.pk");
                q = q.join(
                    LogicalPlan::scan(&format!("sat{i}")),
                    vec![(fk.as_str(), pk.as_str())],
                );
            }
            let result = optimizer.optimize(&q, &catalog, &storage)?;
            work_by_joins.push(result.work_units);
        }
        // Single-table "query": one access-path costing.
        work_by_joins[0] = 1;
        Ok(OptCalibration { work_by_joins })
    }

    /// Calibrated work units for a query with `joins` joins
    /// (extrapolating geometrically beyond the measured range).
    pub fn work_units(&self, joins: usize) -> u64 {
        let max = self.work_by_joins.len() - 1;
        if joins <= max {
            return self.work_by_joins[joins];
        }
        // Extrapolate: multiply by the last observed growth ratio.
        let last = self.work_by_joins[max] as f64;
        let prev = self.work_by_joins[max.saturating_sub(1)].max(1) as f64;
        let ratio = (last / prev).max(1.5);
        (last * ratio.powi((joins - max) as i32)) as u64
    }

    /// `T_opt,estimated` in simulated milliseconds for a query with the
    /// given join count.
    pub fn estimate_ms(&self, joins: usize, cfg: &EngineConfig) -> f64 {
        self.work_units(joins) as f64 * cfg.opt_work_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_grows_with_joins() {
        let cfg = EngineConfig::default();
        let cal = OptCalibration::run(&cfg, 5).unwrap();
        let w: Vec<u64> = (0..=5).map(|n| cal.work_units(n)).collect();
        for i in 1..w.len() {
            assert!(w[i] > w[i - 1], "work not increasing: {w:?}");
        }
    }

    #[test]
    fn extrapolation_beyond_measurement() {
        let cfg = EngineConfig::default();
        let cal = OptCalibration::run(&cfg, 3).unwrap();
        assert!(cal.work_units(6) > cal.work_units(3));
    }

    #[test]
    fn estimate_prices_work() {
        let cfg = EngineConfig::default();
        let cal = OptCalibration::run(&cfg, 3).unwrap();
        let ms = cal.estimate_ms(2, &cfg);
        assert!((ms - cal.work_units(2) as f64 * cfg.opt_work_ms).abs() < 1e-9);
    }
}
