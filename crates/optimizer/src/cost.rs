//! The cost model.
//!
//! Costs are expressed as ([`CostEst`]) page I/Os plus tuple-level CPU
//! operations, convertible to simulated milliseconds. Memory-dependent
//! operators (hash join, sort, hash aggregate) model *passes*: a hash
//! join whose build side exceeds its memory grant partitions both
//! inputs to disk and pays `2 × (build + probe)` pages per extra pass —
//! the exact mechanism behind Figure 3's "executes in two passes".
//!
//! [`recost`] re-derives every node's cost from its current
//! annotations and memory grants; the optimizer costs candidate plans
//! with an optimistic full-budget assumption, then the final plan is
//! re-costed after the memory manager assigns real grants (and again
//! at run time when the re-optimizer improves the estimates).

use mq_common::EngineConfig;
use mq_memory::{GROUP_OVERHEAD, HASH_OVERHEAD};
use mq_plan::{CostEst, PhysOp, PhysPlan};

/// Number of extra partitioning passes a hash join needs: 0 when the
/// build side (plus hash-table overhead) fits in memory.
pub fn hash_join_passes(build_bytes: f64, mem_bytes: f64, page: f64) -> u32 {
    let need = build_bytes * HASH_OVERHEAD;
    if need <= mem_bytes {
        return 0;
    }
    // Fan-out per pass: one output buffer page per partition.
    let fanout = (mem_bytes / page - 1.0).max(2.0);
    let mut passes = 0u32;
    let mut size = need;
    while size > mem_bytes && passes < 8 {
        size /= fanout;
        passes += 1;
    }
    passes.max(1)
}

/// Hash join cost for given input sizes and memory grant.
pub fn hash_join_cost(
    build_rows: f64,
    build_bytes: f64,
    probe_rows: f64,
    probe_bytes: f64,
    out_rows: f64,
    mem_bytes: f64,
    cfg: &EngineConfig,
) -> CostEst {
    let page = cfg.page_size as f64;
    let passes = hash_join_passes(build_bytes, mem_bytes, page) as f64;
    let build_pages = (build_bytes / page).ceil().max(1.0);
    let probe_pages = (probe_bytes / page).ceil().max(1.0);
    // Building (insert + bucket chain) is pricier per row than probing,
    // so the model strictly prefers the smaller input as build side.
    CostEst {
        io_pages: 2.0 * (build_pages + probe_pages) * passes,
        cpu_ops: build_rows * 3.0
            + probe_rows * 1.5
            + (build_rows + probe_rows) * passes
            + out_rows,
    }
}

/// External merge-sort cost.
pub fn sort_cost(rows: f64, bytes: f64, mem_bytes: f64, cfg: &EngineConfig) -> CostEst {
    let page = cfg.page_size as f64;
    let pages = (bytes / page).ceil().max(1.0);
    let runs = (bytes / mem_bytes.max(page)).ceil();
    // Run generation is pipelined; each merge level re-writes and
    // re-reads the whole input once.
    let fanin = (mem_bytes / page - 1.0).max(2.0);
    let merge_passes = if runs <= 1.0 {
        0.0
    } else {
        (runs.ln() / fanin.ln()).ceil().max(1.0)
    };
    CostEst {
        io_pages: 2.0 * pages * merge_passes,
        cpu_ops: rows * (rows.max(2.0).log2()),
    }
}

/// Hash-aggregate cost: free when the group table fits, one
/// write+read spill pass otherwise.
pub fn hash_agg_cost(
    in_rows: f64,
    in_bytes: f64,
    groups: f64,
    group_row_bytes: f64,
    mem_bytes: f64,
    cfg: &EngineConfig,
) -> CostEst {
    let page = cfg.page_size as f64;
    let need = groups * (group_row_bytes + GROUP_OVERHEAD);
    if need <= mem_bytes {
        CostEst {
            io_pages: 0.0,
            cpu_ops: in_rows * 2.0 + groups,
        }
    } else {
        let in_pages = (in_bytes / page).ceil().max(1.0);
        CostEst {
            io_pages: 2.0 * in_pages,
            cpu_ops: in_rows * 3.0 + groups,
        }
    }
}

/// Indexed nested-loops join cost: per-probe B+-tree descent plus heap
/// fetches; capped by "inner becomes resident" when it fits in half the
/// buffer pool.
pub fn index_nl_cost(
    outer_rows: f64,
    matches_per_probe: f64,
    inner_pages: f64,
    inner_rows: f64,
    index_height: f64,
    clustering: f64,
    cfg: &EngineConfig,
) -> CostEst {
    let leaf_pages = (inner_rows / 100.0).ceil().max(1.0);
    let pool_pages = cfg.buffer_pool_pages as f64;
    // Random probing: one leaf + one heap page per match, per probe.
    let cold = outer_rows * (1.0 + matches_per_probe);
    // Small inners become pool-resident after the first touches.
    let resident_cap = inner_pages + leaf_pages + index_height;
    // Probing a column the table is physically clustered on walks the
    // leaf level and heap nearly sequentially — bounded by the sweep.
    let sequential = index_height + leaf_pages + inner_pages;
    let c = clustering.clamp(0.0, 1.0);
    let blended = cold * (1.0 - c) + cold.min(sequential) * c;
    let io = if resident_cap <= pool_pages * 0.5 {
        resident_cap.min(blended)
    } else {
        blended
    };
    CostEst {
        io_pages: io,
        cpu_ops: outer_rows * (index_height * 8.0 + matches_per_probe + 1.0),
    }
}

/// Sequential scan cost.
pub fn seq_scan_cost(pages: f64, rows: f64, filter_ops: f64) -> CostEst {
    CostEst {
        io_pages: pages,
        cpu_ops: rows * (1.0 + filter_ops),
    }
}

/// Index range-scan cost: descent + leaf walk + unclustered fetches.
pub fn index_scan_cost(
    match_rows: f64,
    index_height: f64,
    clustering: f64,
    residual_ops: f64,
) -> CostEst {
    let leaf_pages = (match_rows / 100.0).ceil().max(1.0);
    let c = clustering.clamp(0.0, 1.0);
    // Unclustered fetches pay a page per row; clustered ranges touch
    // each heap page once (~100 rows/page).
    let heap = match_rows * (1.0 - c) + (match_rows / 100.0).ceil().max(1.0) * c;
    CostEst {
        io_pages: index_height + leaf_pages + heap,
        cpu_ops: match_rows * (2.0 + residual_ops),
    }
}

/// Cost of materializing `bytes` to a temp file and reading it back —
/// the `T_materialize` of the paper's Equation for plan switching.
pub fn materialize_cost(bytes: f64, cfg: &EngineConfig) -> CostEst {
    let pages = (bytes / cfg.page_size as f64).ceil().max(1.0);
    CostEst {
        io_pages: 2.0 * pages,
        cpu_ops: 0.0,
    }
}

/// Re-derive every node's per-operator cost from its current
/// annotations (rows, widths, memory grants), then roll up cumulative
/// times. A grant of zero is treated as the full budget (pre-allocation
/// optimistic costing).
pub fn recost(plan: &mut PhysPlan, cfg: &EngineConfig) {
    for c in &mut plan.children {
        recost(c, cfg);
    }
    let mem = if plan.annot.mem_grant_bytes == 0 {
        cfg.query_memory_bytes as f64
    } else {
        plan.annot.mem_grant_bytes as f64
    };
    let out_rows = plan.annot.est_rows;
    let cost = match &plan.op {
        PhysOp::SeqScan { spec, filter } => seq_scan_cost(
            spec.pages as f64,
            spec.rows as f64,
            filter
                .as_ref()
                .map(|f| f.eval_cost_ops() as f64)
                .unwrap_or(0.0),
        ),
        // Reading a cached materialization back is an unfiltered
        // sequential scan of its (exactly-sized) heap file.
        PhysOp::CachedScan { spec, .. } => seq_scan_cost(spec.pages as f64, spec.rows as f64, 0.0),
        PhysOp::IndexScan {
            index_height,
            clustering,
            residual,
            ..
        } => index_scan_cost(
            out_rows.max(1.0),
            *index_height as f64,
            *clustering,
            residual
                .as_ref()
                .map(|f| f.eval_cost_ops() as f64)
                .unwrap_or(0.0),
        ),
        PhysOp::Filter { predicate } => CostEst {
            io_pages: 0.0,
            cpu_ops: plan.children[0].annot.est_rows * predicate.eval_cost_ops() as f64,
        },
        PhysOp::Project { exprs } => CostEst {
            io_pages: 0.0,
            cpu_ops: plan.children[0].annot.est_rows * (exprs.len() as f64).max(1.0),
        },
        PhysOp::HashJoin { .. } => {
            let b = &plan.children[0].annot;
            let p = &plan.children[1].annot;
            hash_join_cost(
                b.est_rows,
                b.est_bytes(),
                p.est_rows,
                p.est_bytes(),
                out_rows,
                mem,
                cfg,
            )
        }
        PhysOp::IndexNLJoin {
            inner,
            index_height,
            clustering,
            ..
        } => {
            let o = &plan.children[0].annot;
            let matches = if o.est_rows > 0.0 {
                (out_rows / o.est_rows).max(0.0)
            } else {
                0.0
            };
            index_nl_cost(
                o.est_rows,
                matches,
                inner.pages as f64,
                inner.rows as f64,
                *index_height as f64,
                *clustering,
                cfg,
            )
        }
        PhysOp::Sort { .. } => {
            let c = &plan.children[0].annot;
            sort_cost(c.est_rows, c.est_bytes(), mem, cfg)
        }
        PhysOp::HashAggregate { .. } => {
            let c = &plan.children[0].annot;
            hash_agg_cost(
                c.est_rows,
                c.est_bytes(),
                out_rows,
                plan.annot.est_row_bytes,
                mem,
                cfg,
            )
        }
        PhysOp::Limit { .. } => CostEst {
            io_pages: 0.0,
            cpu_ops: out_rows,
        },
        PhysOp::Exchange { .. } => CostEst {
            // Routing is pure CPU: one hash-and-enqueue per input row.
            io_pages: 0.0,
            cpu_ops: plan.children[0].annot.est_rows,
        },
        PhysOp::StatsCollector { specs, .. } => {
            let per_row: f64 = specs
                .iter()
                .map(|s| 1.0 + s.histogram as u64 as f64 * 2.0 + s.distinct as u64 as f64 * 2.0)
                .sum::<f64>()
                .max(1.0);
            CostEst {
                io_pages: 0.0,
                cpu_ops: plan.children[0].annot.est_rows * per_row,
            }
        }
    };
    plan.annot.est_cost = cost;
    plan.annot.est_time_ms = cost.time_ms(cfg);
    plan.annot.est_total_time_ms = plan.annot.est_time_ms
        + plan
            .children
            .iter()
            .map(|c| c.annot.est_total_time_ms)
            .sum::<f64>();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    #[test]
    fn hash_join_fits_no_extra_io() {
        let c = cfg();
        let cost = hash_join_cost(
            1000.0,
            100_000.0,
            5000.0,
            500_000.0,
            5000.0,
            1_000_000.0,
            &c,
        );
        assert_eq!(cost.io_pages, 0.0);
        assert!(cost.cpu_ops > 0.0);
    }

    #[test]
    fn hash_join_spill_pays_two_passes_of_io() {
        let c = cfg();
        let build = 1_000_000.0; // 1 MB build, 0.5 MB memory
        let probe = 4_000_000.0;
        let cost = hash_join_cost(
            10_000.0,
            build,
            40_000.0,
            probe,
            40_000.0,
            512.0 * 1024.0,
            &c,
        );
        let pages = (build + probe) / c.page_size as f64;
        assert!(
            (cost.io_pages - 2.0 * pages).abs() < 4.0,
            "io {}",
            cost.io_pages
        );
    }

    #[test]
    fn passes_monotone_in_memory() {
        let c = cfg();
        let page = c.page_size as f64;
        let p_small = hash_join_passes(10_000_000.0, 64.0 * 1024.0, page);
        let p_big = hash_join_passes(10_000_000.0, 16.0 * 1024.0 * 1024.0, page);
        assert!(p_small >= 1);
        assert_eq!(p_big, 0);
    }

    #[test]
    fn sort_in_memory_is_io_free() {
        let c = cfg();
        let cost = sort_cost(1000.0, 50_000.0, 512.0 * 1024.0, &c);
        assert_eq!(cost.io_pages, 0.0);
        let cost = sort_cost(100_000.0, 5_000_000.0, 256.0 * 1024.0, &c);
        assert!(cost.io_pages > 0.0);
    }

    #[test]
    fn agg_spills_when_groups_overflow() {
        let c = cfg();
        let fits = hash_agg_cost(10_000.0, 500_000.0, 100.0, 32.0, 512.0 * 1024.0, &c);
        assert_eq!(fits.io_pages, 0.0);
        let spills = hash_agg_cost(10_000.0, 500_000.0, 50_000.0, 32.0, 64.0 * 1024.0, &c);
        assert!(spills.io_pages > 0.0);
    }

    #[test]
    fn index_nl_cheap_for_resident_inner() {
        let c = cfg();
        // Tiny inner: resident after first touch.
        let small = index_nl_cost(100_000.0, 1.0, 10.0, 1000.0, 2.0, 0.0, &c);
        assert!(small.io_pages < 100.0, "io {}", small.io_pages);
        // Huge inner: pays per probe.
        let big = index_nl_cost(100_000.0, 1.0, 100_000.0, 10_000_000.0, 4.0, 0.0, &c);
        assert!(big.io_pages > 100_000.0);
    }

    #[test]
    fn materialize_counts_write_and_read() {
        let c = cfg();
        let m = materialize_cost(40_960.0, &c);
        assert_eq!(m.io_pages, 20.0);
    }
}
