//! Statistical properties of (intermediate) relations.
//!
//! [`RelProps`] is what the dynamic-programming enumerator carries for
//! every sub-plan: estimated cardinality, row width and per-column
//! statistics *derived* from the catalog through filters and joins.
//! Deriving (rather than re-reading) statistics is where estimation
//! error compounds — the paper's citation \[9\] ("errors multiply and
//! grow exponentially" with join count) is reproduced by construction.

use std::collections::HashMap;

use mq_catalog::{ColumnStats, TableEntry};
#[cfg(test)]
use mq_common::Value;
use mq_common::{EngineConfig, Schema};
use mq_expr::{estimate_selectivity, Basis, Expr, SelEstimate, StatsView};

/// Statistics of a (possibly intermediate) relation.
#[derive(Debug, Clone)]
pub struct RelProps {
    /// Estimated row count.
    pub rows: f64,
    /// Estimated encoded row width in bytes.
    pub row_bytes: f64,
    /// Output schema.
    pub schema: Schema,
    /// Per-column statistics, keyed by *qualified* name.
    pub columns: HashMap<String, ColumnStats>,
    /// Weakest estimation basis that produced `rows` (provenance for
    /// the SCIA's inaccuracy-potential rules).
    pub basis: Basis,
}

impl StatsView for RelProps {
    fn column(&self, name: &str) -> Option<&ColumnStats> {
        if let Some(c) = self.columns.get(name) {
            return Some(c);
        }
        // Bare-name lookup: accept when unambiguous.
        let mut found = None;
        for (k, v) in &self.columns {
            let bare = k.rsplit_once('.').map(|(_, b)| b).unwrap_or(k);
            if bare == name {
                if found.is_some() {
                    return None;
                }
                found = Some(v);
            }
        }
        found
    }

    fn rows(&self) -> f64 {
        self.rows
    }
}

impl RelProps {
    /// Base-table properties from a catalog entry. Falls back to the
    /// physical file metadata when the table was never analyzed.
    pub fn from_table(
        entry: &TableEntry,
        live_rows: u64,
        live_pages: u64,
        cfg: &EngineConfig,
    ) -> RelProps {
        let mut columns = HashMap::new();
        let (rows, row_bytes, basis) = match &entry.stats {
            Some(s) => {
                // Key by the *schema's* qualified names: base tables
                // qualify with the table name, materialized temp tables
                // keep the original qualifiers of the columns they hold
                // (so remainder-query predicates still resolve).
                for field in entry.schema.fields() {
                    if let Some(cs) = s.columns.get(field.name.as_ref()) {
                        columns.insert(field.qualified_name(), cs.clone());
                    }
                }
                // Live page counts come from the storage layer for
                // free; scaling the analyzed row count by the growth
                // since ANALYZE (System-R read relation sizes the same
                // way) removes the gross staleness error while the
                // *distribution* statistics stay stale.
                let growth = if s.pages > 0 && live_pages > 0 {
                    (live_pages as f64 / s.pages as f64).max(1.0)
                } else {
                    1.0
                };
                (
                    s.rows as f64 * growth,
                    s.avg_row_bytes.max(1.0),
                    Basis::BucketHistogram,
                )
            }
            None => {
                // Unanalyzed: the engine still knows the file's physical
                // size; column distributions are unknown.
                let rows = live_rows as f64;
                let bytes = live_pages as f64 * cfg.page_size as f64;
                let row_bytes = if rows > 0.0 {
                    (bytes / rows).max(1.0)
                } else {
                    32.0
                };
                (rows, row_bytes, Basis::DefaultGuess)
            }
        };
        RelProps {
            rows,
            row_bytes,
            schema: entry.schema.clone(),
            columns,
            basis,
        }
    }

    /// Apply a filter predicate: scales cardinality, caps distinct
    /// counts, weakens the basis.
    pub fn filtered(&self, predicate: &Expr, cfg: &EngineConfig) -> (RelProps, SelEstimate) {
        let est = estimate_selectivity(predicate, self, cfg);
        // Never estimate zero from a non-empty input: downstream cost
        // ratios and the re-optimization decision divide by estimates.
        let floor = if self.rows >= 1.0 { 1.0 } else { 0.0 };
        let rows = (self.rows * est.selectivity).max(floor);
        let mut columns = self.columns.clone();
        for cs in columns.values_mut() {
            if cs.distinct > rows {
                cs.distinct = rows.max(1.0);
            }
        }
        // Equality conjuncts pin their column to one value.
        for conj in predicate.conjuncts() {
            if let Expr::Cmp {
                op: mq_expr::CmpOp::Eq,
                left,
                right,
            } = &conj
            {
                let name = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(n), Expr::Literal(_)) => Some(n.to_string()),
                    (Expr::Literal(_), Expr::Column(n)) => Some(n.to_string()),
                    _ => None,
                };
                if let Some(n) = name {
                    if let Some(cs) = lookup_mut(&mut columns, &n) {
                        cs.distinct = 1.0;
                    }
                }
            }
        }
        let props = RelProps {
            rows,
            row_bytes: self.row_bytes,
            schema: self.schema.clone(),
            columns,
            basis: self.basis.max(est.basis),
        };
        (props, est)
    }

    /// Join with another relation on equi-pairs of qualified columns.
    /// Returns the joined properties and the estimated join selectivity.
    pub fn joined(
        &self,
        other: &RelProps,
        on: &[(String, String)],
        cfg: &EngineConfig,
    ) -> (RelProps, f64) {
        let mut sel = 1.0;
        let mut basis = self.basis.max(other.basis);
        for (lc, rc) in on {
            let (l, r) = (self.column(lc), other.column(rc));
            let pair_sel = match (l, r) {
                (Some(a), Some(b)) => match (&a.histogram, &b.histogram) {
                    (Some(ha), Some(hb)) => {
                        basis = basis.max(Basis::BucketHistogram);
                        ha.sel_join(hb)
                    }
                    _ => {
                        let d = a.distinct.max(b.distinct);
                        if d > 1.0 {
                            basis = basis.max(Basis::DistinctOnly);
                            1.0 / d
                        } else {
                            basis = basis.max(Basis::DefaultGuess);
                            cfg.default_eq_selectivity
                        }
                    }
                },
                _ => {
                    basis = basis.max(Basis::DefaultGuess);
                    cfg.default_eq_selectivity
                }
            };
            sel *= pair_sel;
        }
        let floor = if self.rows >= 1.0 && other.rows >= 1.0 {
            1.0
        } else {
            0.0
        };
        let rows = (self.rows * other.rows * sel).max(floor);
        let mut columns = self.columns.clone();
        for (k, v) in &other.columns {
            columns.insert(k.clone(), v.clone());
        }
        // Join keys end up with the smaller distinct count.
        for (lc, rc) in on {
            let dl = self.column(lc).map(|c| c.distinct).unwrap_or(0.0);
            let dr = other.column(rc).map(|c| c.distinct).unwrap_or(0.0);
            let d = if dl > 0.0 && dr > 0.0 {
                dl.min(dr)
            } else {
                dl.max(dr)
            };
            for name in [lc, rc] {
                if let Some(cs) = lookup_mut(&mut columns, name) {
                    cs.distinct = d.max(1.0).min(rows.max(1.0));
                }
            }
        }
        for cs in columns.values_mut() {
            if cs.distinct > rows {
                cs.distinct = rows.max(1.0);
            }
        }
        let props = RelProps {
            rows,
            row_bytes: self.row_bytes + other.row_bytes,
            schema: self.schema.join(&other.schema),
            columns,
            basis,
        };
        (props, sel)
    }

    /// Estimated group count for a GROUP BY over `group_cols`
    /// (product of distinct counts, capped by input cardinality).
    pub fn group_count(&self, group_cols: &[String]) -> f64 {
        if group_cols.is_empty() {
            return 1.0;
        }
        let mut groups = 1.0f64;
        for g in group_cols {
            let d = self.column(g).map(|c| c.distinct).unwrap_or(0.0);
            groups *= if d > 0.0 {
                d
            } else {
                (self.rows / 10.0).max(1.0)
            };
        }
        groups.min(self.rows.max(1.0))
    }

    /// Estimated size in bytes.
    pub fn bytes(&self) -> f64 {
        self.rows * self.row_bytes
    }

    /// Estimated size in pages.
    pub fn pages(&self, cfg: &EngineConfig) -> f64 {
        (self.bytes() / cfg.page_size as f64).max(1.0)
    }
}

fn lookup_mut<'a>(
    columns: &'a mut HashMap<String, ColumnStats>,
    name: &str,
) -> Option<&'a mut ColumnStats> {
    if columns.contains_key(name) {
        return columns.get_mut(name);
    }
    let key = columns
        .keys()
        .find(|k| {
            let bare = k.rsplit_once('.').map(|(_, b)| b).unwrap_or(k);
            bare == name
        })?
        .clone();
    columns.get_mut(&key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_expr::{cmp, col, lit, CmpOp};
    use mq_stats::{Histogram, HistogramKind};

    fn props_with(name: &str, rows: f64, distinct: f64) -> RelProps {
        let sample: Vec<f64> = (0..1000).map(|i| (i % distinct as i64) as f64).collect();
        let h = Histogram::build(HistogramKind::MaxDiff, &sample, 16, 0.0, distinct);
        let mut columns = HashMap::new();
        columns.insert(
            format!("{name}.k"),
            ColumnStats {
                min: Some(Value::Int(0)),
                max: Some(Value::Int(distinct as i64 - 1)),
                distinct,
                null_frac: 0.0,
                histogram: Some(h),
                histogram_kind: Some(HistogramKind::MaxDiff),
                clustering: 0.0,
            },
        );
        RelProps {
            rows,
            row_bytes: 50.0,
            schema: Schema::new(vec![mq_common::Field::qualified(
                name,
                "k",
                mq_common::DataType::Int,
            )])
            .unwrap(),
            columns,
            basis: Basis::BucketHistogram,
        }
    }

    #[test]
    fn filter_scales_rows() {
        let cfg = EngineConfig::default();
        let p = props_with("r", 10_000.0, 100.0);
        let (f, est) = p.filtered(&cmp(CmpOp::Lt, col("r.k"), lit(25i64)), &cfg);
        assert!((est.selectivity - 0.25).abs() < 0.1);
        assert!((f.rows - 2500.0).abs() < 1000.0, "rows {}", f.rows);
    }

    #[test]
    fn eq_filter_pins_distinct() {
        let cfg = EngineConfig::default();
        let p = props_with("r", 10_000.0, 100.0);
        let (f, _) = p.filtered(&mq_expr::eq(col("r.k"), lit(5i64)), &cfg);
        assert_eq!(f.columns["r.k"].distinct, 1.0);
    }

    #[test]
    fn join_key_fk_cardinality() {
        let cfg = EngineConfig::default();
        // r: 100 rows pk 0..99; s: 10000 rows fk 0..99.
        let r = props_with("r", 1000.0, 100.0);
        let s = props_with("s", 10_000.0, 100.0);
        let on = vec![("r.k".to_string(), "s.k".to_string())];
        let (j, sel) = r.joined(&s, &on, &cfg);
        assert!((sel - 0.01).abs() < 0.005, "sel {sel}");
        // ≈ 1000 × 10000 / 100 = 100k rows.
        assert!(
            (j.rows - 100_000.0).abs() / 100_000.0 < 0.5,
            "rows {}",
            j.rows
        );
        assert_eq!(j.schema.len(), 2);
        assert!((j.row_bytes - 100.0).abs() < 1e-9);
    }

    #[test]
    fn group_count_capped_by_rows() {
        let p = props_with("r", 50.0, 100.0);
        let g = p.group_count(&["r.k".to_string()]);
        assert!(g <= 50.0);
        assert_eq!(p.group_count(&[]), 1.0);
    }

    #[test]
    fn bare_name_lookup() {
        let p = props_with("r", 10.0, 5.0);
        assert!(p.column("k").is_some());
        assert!(p.column("r.k").is_some());
        assert!(p.column("zzz").is_none());
    }
}
