//! Cardinality feedback: observed sub-plan row counts override the
//! optimizer's catalog-derived estimates.
//!
//! §2.2 notes that collected statistics "can also be used to update the
//! statistics stored in the database catalogs"; the cross-query cache
//! subsystem goes one step further and remembers the *exact* observed
//! cardinality of every checkpointed sub-plan, keyed by its canonical
//! fingerprint. This module is the optimizer-side consumer: a post-pass
//! over an annotated physical plan that re-stamps `est_rows` wherever
//! the feedback store has seen that exact sub-plan before, then recosts.
//!
//! The pass deliberately does **not** re-enumerate join orders — the
//! plan shape is whatever the DP enumeration picked from catalog
//! statistics. What it fixes is the *baseline* the runtime controller
//! compares observations against: with truthful annotations, the
//! divergence `max(obs/est, est/obs)` of a repeated query family stays
//! under θ2 and the controller stops proposing mid-query switches the
//! first run already paid for.

use mq_common::EngineConfig;
use mq_plan::{subplan_fingerprint, NodeId, PhysOp, PhysPlan, ScanSpec};

use crate::cost;
use crate::enumerate::QueryGraph;

/// Source of observed sub-plan cardinalities. Implemented by the
/// engine over its feedback store; a trait so the optimizer stays
/// independent of the cache crate (and tests can use a closure-like
/// stub).
pub trait CardFeedback {
    /// Observed (still-valid) row count for a canonical sub-plan
    /// fingerprint, or `None`.
    fn observed_rows(&self, fingerprint: u64) -> Option<f64>;
}

/// One estimate override performed by [`apply_feedback`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackHit {
    /// Plan node whose estimate was overridden.
    pub node: NodeId,
    /// Canonical fingerprint of the sub-plan rooted there.
    pub fingerprint: u64,
    /// The catalog-derived estimate that was replaced.
    pub estimated_rows: f64,
    /// The observed row count stamped in.
    pub observed_rows: f64,
}

/// One base-relation override performed by [`apply_to_graph`] before
/// join enumeration.
#[derive(Debug, Clone)]
pub struct GraphFeedbackHit {
    /// Base table whose filtered-scan estimate was overridden.
    pub table: String,
    /// Canonical fingerprint of the filtered sequential scan.
    pub fingerprint: u64,
    /// The catalog-derived post-predicate estimate that was replaced.
    pub estimated_rows: f64,
    /// The observed row count stamped in.
    pub observed_rows: f64,
    /// Bare column names the relation's local predicate references —
    /// the candidates for adaptive histogram refresh when this hit's
    /// error keeps recurring.
    pub columns: Vec<String>,
}

/// Steer the *join enumeration* with observed cardinalities: override
/// each base relation's post-predicate row estimate when the feedback
/// store has seen that exact filtered scan before (keyed by the
/// canonical fingerprint of the relation's filtered sequential scan —
/// the form a promoted plan-switch cut records). Corrections applied
/// here propagate through the DP's join-selectivity arithmetic, so a
/// repeated query family gets the join order and operators the first
/// run had to discover mid-query — not just truthful annotations on
/// the same mis-chosen shape.
pub fn apply_to_graph(
    graph: &mut QueryGraph,
    feedback: &dyn CardFeedback,
) -> Vec<GraphFeedbackHit> {
    let mut hits = Vec::new();
    for rel in &mut graph.relations {
        // Mirror the seq-scan alternative `best_access_path` builds;
        // only the table name and (canonically sorted) conjuncts feed
        // the fingerprint, so pages/rows placeholders are irrelevant.
        let filter = match &rel.local {
            Some(p) => match p.bind(&rel.entry.schema) {
                Ok(b) => Some(b),
                Err(_) => continue,
            },
            None => None,
        };
        let probe = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: rel.entry.name.clone(),
                    file: rel.entry.file,
                    pages: 1,
                    rows: 0,
                },
                filter,
            },
            vec![],
            rel.entry.schema.clone(),
        );
        let fp = subplan_fingerprint(&probe);
        if let Some(observed) = feedback.observed_rows(fp) {
            if observed.is_finite() && observed >= 0.0 && observed != rel.props.rows {
                // Bare (unqualified, deduped) predicate columns: the
                // refresh machinery attributes the error to a column
                // only when exactly one is involved.
                let mut columns: Vec<String> = rel
                    .local
                    .as_ref()
                    .map(|p| {
                        p.referenced_columns()
                            .iter()
                            .map(|c| c.rsplit('.').next().unwrap_or(c).to_string())
                            .collect()
                    })
                    .unwrap_or_default();
                columns.sort();
                columns.dedup();
                hits.push(GraphFeedbackHit {
                    table: rel.entry.name.clone(),
                    fingerprint: fp,
                    estimated_rows: rel.props.rows,
                    observed_rows: observed,
                    columns,
                });
                rel.props.rows = observed;
            }
        }
    }
    hits
}

/// Override `est_rows` on every sub-tree the feedback store has an
/// observation for, then recost the whole plan. Returns the overrides
/// performed (root-last, matching the bottom-up walk) so the caller
/// can emit `feedback_applied` events.
pub fn apply_feedback(
    plan: &mut PhysPlan,
    feedback: &dyn CardFeedback,
    cfg: &EngineConfig,
) -> Vec<FeedbackHit> {
    let mut hits = Vec::new();
    apply_rec(plan, feedback, &mut hits);
    if !hits.is_empty() {
        cost::recost(plan, cfg);
    }
    hits
}

fn apply_rec(plan: &mut PhysPlan, feedback: &dyn CardFeedback, hits: &mut Vec<FeedbackHit>) {
    for c in &mut plan.children {
        apply_rec(c, feedback, hits);
    }
    // Collectors and exchanges share their child's fingerprint (they
    // are canonically transparent); stamping them too would double-
    // count the hit, so only structural nodes are probed — their
    // annotation is copied onto any transparent parent afterwards.
    if matches!(
        plan.op,
        PhysOp::StatsCollector { .. } | PhysOp::Exchange { .. }
    ) {
        plan.annot.est_rows = plan.children[0].annot.est_rows;
        return;
    }
    let fp = subplan_fingerprint(plan);
    if let Some(observed) = feedback.observed_rows(fp) {
        if observed.is_finite() && observed >= 0.0 && observed != plan.annot.est_rows {
            hits.push(FeedbackHit {
                node: plan.id,
                fingerprint: fp,
                estimated_rows: plan.annot.est_rows,
                observed_rows: observed,
            });
            plan.annot.est_rows = observed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field, FileId, Schema};
    use mq_plan::ScanSpec;
    use std::collections::HashMap;

    struct MapFeedback(HashMap<u64, f64>);

    impl CardFeedback for MapFeedback {
        fn observed_rows(&self, fingerprint: u64) -> Option<f64> {
            self.0.get(&fingerprint).copied()
        }
    }

    fn scan(table: &str, est: f64) -> PhysPlan {
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: table.into(),
                    file: FileId(0),
                    pages: 10,
                    rows: 100,
                },
                filter: None,
            },
            vec![],
            Schema::new(vec![Field::qualified(table, "k", DataType::Int)]).unwrap(),
        );
        p.annot.est_rows = est;
        p.annot.est_row_bytes = 16.0;
        p
    }

    #[test]
    fn observation_overrides_estimate_and_recosts() {
        let mut plan = scan("t", 100.0);
        plan.assign_ids();
        let fp = subplan_fingerprint(&plan);
        let fb = MapFeedback(HashMap::from([(fp, 5000.0)]));
        let cfg = EngineConfig::default();
        let hits = apply_feedback(&mut plan, &fb, &cfg);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].fingerprint, fp);
        assert_eq!(hits[0].estimated_rows, 100.0);
        assert_eq!(plan.annot.est_rows, 5000.0);
        assert!(plan.annot.est_total_time_ms > 0.0);
    }

    #[test]
    fn unknown_fingerprints_leave_plan_untouched() {
        let mut plan = scan("t", 100.0);
        plan.assign_ids();
        let fb = MapFeedback(HashMap::new());
        let hits = apply_feedback(&mut plan, &fb, &EngineConfig::default());
        assert!(hits.is_empty());
        assert_eq!(plan.annot.est_rows, 100.0);
    }

    #[test]
    fn transparent_nodes_inherit_without_double_count() {
        let base = scan("t", 100.0);
        let schema = base.schema.clone();
        let mut plan = PhysPlan::new(
            PhysOp::StatsCollector {
                specs: vec![],
                site: "s".into(),
            },
            vec![base],
            schema,
        );
        plan.annot.est_rows = 100.0;
        plan.assign_ids();
        let fp = subplan_fingerprint(&plan); // = the scan's fingerprint
        let fb = MapFeedback(HashMap::from([(fp, 7.0)]));
        let hits = apply_feedback(&mut plan, &fb, &EngineConfig::default());
        assert_eq!(hits.len(), 1, "one hit, not one per transparent layer");
        assert_eq!(plan.children[0].annot.est_rows, 7.0);
        assert_eq!(plan.annot.est_rows, 7.0, "collector inherits the child");
    }
}
