//! # mq-optimizer — a System-R style query optimizer
//!
//! The conventional optimizer the paper assumes (§2.1): dynamic-
//! programming join enumeration over left-deep trees with hash-join /
//! indexed-nested-loops alternatives and access-path selection, costed
//! by a memory-aware model, producing an **annotated** physical plan
//! whose every node records the optimizer's cardinality and time
//! estimates.
//!
//! Two paper-specific entry points matter beyond ordinary planning:
//!
//! * re-optimizing the **remainder** of a query is just a fresh
//!   [`Optimizer::optimize`] call over a logical plan in which the
//!   finished part has been replaced by a scan of the materialized
//!   temp table (whose statistics are *observed*, hence exact) — §2.4;
//! * [`calibrate::OptCalibration`] measures optimizer work on star
//!   joins of increasing size, providing the `T_opt,estimated` used in
//!   the re-optimization heuristic of Equation 1 (§2.4: "an optimizer
//!   for a particular database system can be calibrated to obtain
//!   these estimates").

pub mod calibrate;
pub mod cost;
pub mod enumerate;
pub mod feedback;
pub mod props;

use mq_catalog::Catalog;
use mq_common::{DataType, EngineConfig, Field, MqError, Result, Schema};
use mq_expr::Expr;
use mq_plan::{AggFunc, LogicalPlan, PhysOp, PhysPlan};
use mq_storage::Storage;

pub use calibrate::OptCalibration;
pub use cost::{materialize_cost, recost};
pub use enumerate::{decompose, enumerate, QueryGraph};
pub use feedback::{apply_feedback, CardFeedback, FeedbackHit, GraphFeedbackHit};
pub use props::RelProps;

/// Result of optimization.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The annotated physical plan (ids assigned, costs rolled up with
    /// optimistic memory; run the memory manager and [`recost`] for
    /// grant-aware times).
    pub plan: PhysPlan,
    /// Candidate plans costed — the optimizer work charged as `T_opt`
    /// when re-optimizing mid-query.
    pub work_units: u64,
    /// Output statistics of the plan root.
    pub props: RelProps,
    /// Base-relation estimate overrides taken from a cardinality
    /// feedback store before enumeration (empty without feedback).
    pub feedback_hits: Vec<GraphFeedbackHit>,
}

/// The query optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    cfg: EngineConfig,
}

impl Optimizer {
    /// Optimizer with the given engine configuration.
    pub fn new(cfg: EngineConfig) -> Optimizer {
        Optimizer { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Produce the cheapest annotated physical plan for `logical`.
    pub fn optimize(
        &self,
        logical: &LogicalPlan,
        catalog: &Catalog,
        storage: &Storage,
    ) -> Result<Optimized> {
        self.optimize_with_feedback(logical, catalog, storage, None)
    }

    /// [`Optimizer::optimize`] with an optional cardinality feedback
    /// source: observed row counts for previously-executed sub-plans
    /// override the catalog-derived base-relation estimates *before*
    /// join enumeration, steering join order and operator choice (see
    /// [`feedback::apply_to_graph`]).
    pub fn optimize_with_feedback(
        &self,
        logical: &LogicalPlan,
        catalog: &Catalog,
        storage: &Storage,
        card_feedback: Option<&dyn CardFeedback>,
    ) -> Result<Optimized> {
        let cfg = &self.cfg;
        let mut post = Vec::new();
        let mut graph = decompose(logical, catalog, storage, cfg, &mut post)?;
        let mut feedback_hits = match card_feedback {
            Some(fb) => feedback::apply_to_graph(&mut graph, fb),
            None => Vec::new(),
        };
        let enumerated = enumerate(&graph, storage, cfg, card_feedback)?;
        for h in enumerated.feedback_hits {
            if !feedback_hits.iter().any(|e| e.fingerprint == h.fingerprint) {
                feedback_hits.push(h);
            }
        }
        let mut plan = enumerated.plan;
        let mut props = enumerated.props;
        let mut work = enumerated.work_units;

        // Residual predicates (correlated / multi-table non-equi).
        if !graph.residual.is_empty() {
            let pred = mq_expr::and(graph.residual.clone());
            let bound = pred.bind(&plan.schema)?;
            let (new_props, _est) = props.filtered(&pred, cfg);
            let schema = plan.schema.clone();
            let mut node = PhysPlan::new(PhysOp::Filter { predicate: bound }, vec![plan], schema);
            node.annot.est_rows = new_props.rows;
            node.annot.est_row_bytes = new_props.row_bytes;
            props = new_props;
            plan = node;
            work += 1;
        }

        // Re-apply the peeled post-join operators, innermost first.
        for op in post.iter().rev() {
            plan = self.apply_post(op, plan, &mut props)?;
            work += 1;
        }

        plan.assign_ids();
        cost::recost(&mut plan, cfg);
        Ok(Optimized {
            plan,
            work_units: work,
            props,
            feedback_hits,
        })
    }

    fn apply_post(
        &self,
        op: &LogicalPlan,
        input: PhysPlan,
        props: &mut RelProps,
    ) -> Result<PhysPlan> {
        let _ = &self.cfg;
        match op {
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let group: Vec<usize> = group_by
                    .iter()
                    .map(|g| input.schema.index_of(g))
                    .collect::<Result<_>>()?;
                let bound_aggs: Vec<mq_plan::AggExpr> = aggs
                    .iter()
                    .map(|a| {
                        Ok(mq_plan::AggExpr {
                            func: a.func,
                            arg: match &a.arg {
                                Some(e) => Some(e.bind(&input.schema)?),
                                None => None,
                            },
                            name: a.name.clone(),
                        })
                    })
                    .collect::<Result<_>>()?;
                let mut fields: Vec<Field> = group
                    .iter()
                    .map(|&i| input.schema.field(i).clone())
                    .collect();
                for a in aggs {
                    let dtype = match (a.func, &a.arg) {
                        (AggFunc::Count, _) => DataType::Int,
                        (AggFunc::Avg, _) => DataType::Float,
                        (_, Some(e)) => infer_type(e, &input.schema)?,
                        (f, None) => {
                            return Err(MqError::Plan(format!("{f} requires an argument")))
                        }
                    };
                    fields.push(Field::new(a.name.as_str(), dtype));
                }
                let schema = Schema::new(fields)?;
                let groups = props.group_count(group_by);
                let row_bytes = width_guess(&schema);
                let mut node = PhysPlan::new(
                    PhysOp::HashAggregate {
                        group,
                        aggs: bound_aggs,
                    },
                    vec![input],
                    schema.clone(),
                );
                node.annot.est_rows = groups;
                node.annot.est_row_bytes = row_bytes;
                props.rows = groups;
                props.row_bytes = row_bytes;
                props.schema = schema;
                props.columns.retain(|k, _| {
                    group_by.iter().any(|g| {
                        k == g
                            || k.ends_with(&format!(".{g}"))
                            || g.ends_with(&format!(".{}", k.rsplit('.').next().unwrap_or(k)))
                    })
                });
                Ok(node)
            }
            LogicalPlan::Sort { keys, .. } => {
                let positions: Vec<(usize, bool)> = keys
                    .iter()
                    .map(|(k, asc)| Ok((input.schema.index_of(k)?, *asc)))
                    .collect::<Result<_>>()?;
                let schema = input.schema.clone();
                let mut node = PhysPlan::new(PhysOp::Sort { keys: positions }, vec![input], schema);
                node.annot.est_rows = props.rows;
                node.annot.est_row_bytes = props.row_bytes;
                Ok(node)
            }
            LogicalPlan::Limit { n, .. } => {
                let schema = input.schema.clone();
                let mut node = PhysPlan::new(PhysOp::Limit { n: *n }, vec![input], schema);
                node.annot.est_rows = props.rows.min(*n as f64);
                node.annot.est_row_bytes = props.row_bytes;
                props.rows = node.annot.est_rows;
                Ok(node)
            }
            LogicalPlan::Project { exprs, .. } => {
                let mut bound = Vec::with_capacity(exprs.len());
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    bound.push((e.bind(&input.schema)?, name.clone()));
                    fields.push(Field::new(name.as_str(), infer_type(e, &input.schema)?));
                }
                let schema = Schema::new(fields)?;
                let mut node = PhysPlan::new(
                    PhysOp::Project { exprs: bound },
                    vec![input],
                    schema.clone(),
                );
                node.annot.est_rows = props.rows;
                node.annot.est_row_bytes = width_guess(&schema);
                props.row_bytes = node.annot.est_row_bytes;
                props.schema = schema;
                Ok(node)
            }
            other => Err(MqError::Plan(format!(
                "unsupported post-join operator {:?}",
                std::mem::discriminant(other)
            ))),
        }
    }
}

/// Re-derive every annotation of an existing physical plan from
/// *current* catalog statistics (bottom-up cardinality derivation via
/// [`RelProps`], then costs/times). This prices a fixed plan shape on
/// the same statistical basis a fresh [`Optimizer::optimize`] call
/// uses — the symmetric comparison the mid-query re-optimization
/// decision needs (pricing "continue" with inflated runtime-scaled
/// numbers while "switch" gets fresh optimistic ones would bias every
/// decision toward switching).
pub fn annotate_physical(
    plan: &mut PhysPlan,
    catalog: &Catalog,
    storage: &Storage,
    cfg: &EngineConfig,
) -> Result<()> {
    derive_props(plan, catalog, storage, cfg)?;
    cost::recost(plan, cfg);
    Ok(())
}

fn derive_props(
    plan: &mut PhysPlan,
    catalog: &Catalog,
    storage: &Storage,
    cfg: &EngineConfig,
) -> Result<RelProps> {
    use mq_plan::ScanSpec;
    fn scan_props(
        spec: &ScanSpec,
        filter: Option<&Expr>,
        catalog: &Catalog,
        storage: &Storage,
        cfg: &EngineConfig,
    ) -> Result<RelProps> {
        let entry = catalog.table(&spec.table)?;
        let live_rows = storage.file_rows(entry.file).unwrap_or(spec.rows);
        let live_pages = storage
            .file_pages(entry.file)
            .unwrap_or(spec.pages as usize) as u64;
        let raw = RelProps::from_table(&entry, live_rows, live_pages, cfg);
        Ok(match filter {
            Some(f) => raw.filtered(f, cfg).0,
            None => raw,
        })
    }

    let nchildren = plan.children.len();
    let mut child_props = Vec::with_capacity(nchildren);
    for c in &mut plan.children {
        child_props.push(derive_props(c, catalog, storage, cfg)?);
    }

    let props = match &plan.op {
        PhysOp::SeqScan { spec, filter } => {
            scan_props(spec, filter.as_ref(), catalog, storage, cfg)?
        }
        // A cached materialization is catalog-registered with exact
        // statistics, so it derives like an unfiltered base-table scan.
        PhysOp::CachedScan { spec, .. } => scan_props(spec, None, catalog, storage, cfg)?,
        PhysOp::IndexScan {
            spec,
            column,
            lo,
            hi,
            residual,
            ..
        } => {
            // Reconstruct the absorbed sargable predicate.
            let colref = mq_expr::col(&format!("{}.{}", spec.table, column));
            let mut conjs: Vec<Expr> = Vec::new();
            if let Some(lo) = lo {
                conjs.push(mq_expr::cmp(
                    mq_expr::CmpOp::Ge,
                    colref.clone(),
                    Expr::Literal(lo.clone()),
                ));
            }
            if let Some(hi) = hi {
                conjs.push(mq_expr::cmp(
                    mq_expr::CmpOp::Le,
                    colref,
                    Expr::Literal(hi.clone()),
                ));
            }
            if let Some(r) = residual {
                conjs.push(r.clone());
            }
            let pred = if conjs.is_empty() {
                None
            } else {
                Some(mq_expr::and(conjs))
            };
            scan_props(spec, pred.as_ref(), catalog, storage, cfg)?
        }
        PhysOp::Filter { predicate } => child_props[0].filtered(predicate, cfg).0,
        PhysOp::Project { .. } => {
            let mut p = child_props[0].clone();
            p.schema = plan.schema.clone();
            p.row_bytes = width_guess(&plan.schema);
            p
        }
        PhysOp::HashJoin {
            build_keys,
            probe_keys,
        } => {
            let on: Vec<(String, String)> = build_keys
                .iter()
                .zip(probe_keys)
                .map(|(&b, &p)| {
                    (
                        plan.children[0].schema.field(b).qualified_name(),
                        plan.children[1].schema.field(p).qualified_name(),
                    )
                })
                .collect();
            child_props[0].joined(&child_props[1], &on, cfg).0
        }
        PhysOp::IndexNLJoin {
            outer_key,
            inner,
            inner_column,
            ..
        } => {
            let inner_props = scan_props(inner, None, catalog, storage, cfg)?;
            let on = vec![(
                plan.children[0].schema.field(*outer_key).qualified_name(),
                format!("{}.{}", inner.table, inner_column),
            )];
            child_props[0].joined(&inner_props, &on, cfg).0
        }
        PhysOp::Sort { .. } | PhysOp::StatsCollector { .. } | PhysOp::Exchange { .. } => {
            child_props[0].clone()
        }
        PhysOp::Limit { n } => {
            let mut p = child_props[0].clone();
            p.rows = p.rows.min(*n as f64);
            p
        }
        PhysOp::HashAggregate { group, .. } => {
            let group_names: Vec<String> = group
                .iter()
                .map(|&g| plan.children[0].schema.field(g).qualified_name())
                .collect();
            let mut p = child_props[0].clone();
            p.rows = child_props[0].group_count(&group_names);
            p.schema = plan.schema.clone();
            p.row_bytes = width_guess(&plan.schema);
            p
        }
    };
    plan.annot.est_rows = props.rows;
    plan.annot.est_row_bytes = props.row_bytes;
    Ok(props)
}

/// Encoded-width guess for a derived schema (no per-column width
/// statistics exist for computed outputs): numeric family 9 bytes,
/// strings a typical 24.
fn width_guess(schema: &Schema) -> f64 {
    2.0 + schema
        .fields()
        .iter()
        .map(|f| match f.dtype {
            DataType::Bool => 2.0,
            DataType::Str => 24.0,
            _ => 9.0,
        })
        .sum::<f64>()
}

fn infer_type(e: &Expr, schema: &Schema) -> Result<DataType> {
    Ok(match e {
        Expr::Column(name) => schema.field(schema.index_of(name)?).dtype,
        Expr::BoundColumn { index, .. } => schema.field(*index).dtype,
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
        Expr::Cmp { .. } | Expr::And(_) | Expr::Or(_) | Expr::Not(_) | Expr::UdfPred { .. } => {
            DataType::Bool
        }
        Expr::Arith { left, right, .. } => {
            let l = infer_type(left, schema)?;
            let r = infer_type(right, schema)?;
            if l == DataType::Int && r == DataType::Int {
                DataType::Int
            } else {
                DataType::Float
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{Row, SimClock, Value};
    use mq_expr::{cmp, col, lit, CmpOp};
    use mq_stats::HistogramKind;

    /// Build a small star schema: fact(fk1, fk2, v), dim1(pk, a), dim2(pk, b).
    fn setup() -> (Catalog, Storage, EngineConfig) {
        let cfg = EngineConfig::default();
        let storage = Storage::new(&cfg, SimClock::new());
        let cat = Catalog::new();
        cat.create_table(
            &storage,
            "fact",
            vec![
                ("fk1", DataType::Int),
                ("fk2", DataType::Int),
                ("v", DataType::Int),
            ],
        )
        .unwrap();
        cat.create_table(
            &storage,
            "dim1",
            vec![("pk", DataType::Int), ("a", DataType::Int)],
        )
        .unwrap();
        cat.create_table(
            &storage,
            "dim2",
            vec![("pk", DataType::Int), ("b", DataType::Int)],
        )
        .unwrap();
        for i in 0..4000i64 {
            cat.insert_row(
                &storage,
                "fact",
                Row::new(vec![
                    Value::Int(i % 50),
                    Value::Int(i % 20),
                    Value::Int(i % 7),
                ]),
            )
            .unwrap();
        }
        for i in 0..50i64 {
            cat.insert_row(
                &storage,
                "dim1",
                Row::new(vec![Value::Int(i), Value::Int(i * 2)]),
            )
            .unwrap();
        }
        for i in 0..20i64 {
            cat.insert_row(
                &storage,
                "dim2",
                Row::new(vec![Value::Int(i), Value::Int(i * 3)]),
            )
            .unwrap();
        }
        for t in ["fact", "dim1", "dim2"] {
            cat.analyze(&storage, t, HistogramKind::MaxDiff, 16, 512, 7)
                .unwrap();
        }
        (cat, storage, cfg)
    }

    fn star_query() -> LogicalPlan {
        LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim1"), vec![("fact.fk1", "dim1.pk")])
            .join(LogicalPlan::scan("dim2"), vec![("fact.fk2", "dim2.pk")])
    }

    #[test]
    fn optimizes_two_join_star() {
        let (cat, st, cfg) = setup();
        let opt = Optimizer::new(cfg);
        let result = opt.optimize(&star_query(), &cat, &st).unwrap();
        assert_eq!(result.plan.join_count(), 2);
        assert!(result.work_units > 3);
        // Cardinality estimate should be near 4000 (every fact row
        // matches one dim row on each key).
        assert!(
            (result.props.rows - 4000.0).abs() / 4000.0 < 0.6,
            "est rows {}",
            result.props.rows
        );
        // All seven columns present.
        assert_eq!(result.plan.schema.len(), 7);
        // Annotations populated.
        assert!(result.plan.annot.est_total_time_ms > 0.0);
    }

    #[test]
    fn builds_on_accumulated_side() {
        let (cat, st, cfg) = setup();
        let opt = Optimizer::new(cfg);
        let result = opt.optimize(&star_query(), &cat, &st).unwrap();
        // Paradise-style plans: the root hash join's build child is the
        // accumulated subtree (it contains the other join), so each
        // intermediate result feeds a build phase — the segmented
        // execution shape the paper's machinery relies on.
        match &result.plan.op {
            PhysOp::HashJoin { .. } => {
                assert!(
                    result.plan.children[0].join_count() >= 1,
                    "build side should be the accumulated subtree:\n{}",
                    result.plan
                );
            }
            PhysOp::IndexNLJoin { .. } => {}
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn selection_reduces_estimates() {
        let (cat, st, cfg) = setup();
        let opt = Optimizer::new(cfg);
        let q = LogicalPlan::scan_filtered("fact", cmp(CmpOp::Lt, col("fact.v"), lit(1i64)))
            .join(LogicalPlan::scan("dim1"), vec![("fact.fk1", "dim1.pk")]);
        let result = opt.optimize(&q, &cat, &st).unwrap();
        assert!(
            result.props.rows < 1500.0,
            "filtered est {}",
            result.props.rows
        );
    }

    #[test]
    fn aggregate_on_top() {
        let (cat, st, cfg) = setup();
        let opt = Optimizer::new(cfg);
        let q = star_query().aggregate(
            vec!["dim1.a"],
            vec![mq_plan::AggExpr {
                func: AggFunc::Avg,
                arg: Some(col("fact.v")),
                name: "avg_v".into(),
            }],
        );
        let result = opt.optimize(&q, &cat, &st).unwrap();
        assert!(matches!(result.plan.op, PhysOp::HashAggregate { .. }));
        assert_eq!(result.plan.schema.len(), 2);
        // ≈ 50 groups.
        assert!(
            result.plan.annot.est_rows <= 60.0 && result.plan.annot.est_rows >= 10.0,
            "groups {}",
            result.plan.annot.est_rows
        );
    }

    #[test]
    fn index_nl_join_chosen_for_selective_outer() {
        let (cat, st, cfg) = setup();
        // A big indexed dimension: scanning it for a hash join costs
        // hundreds of pages, while a tiny outer probes it a few dozen
        // times through the index.
        cat.create_table(
            &st,
            "bigdim",
            vec![("pk", DataType::Int), ("payload", DataType::Int)],
        )
        .unwrap();
        for i in 0..30_000i64 {
            cat.insert_row(
                &st,
                "bigdim",
                Row::new(vec![Value::Int(i), Value::Int(i % 100)]),
            )
            .unwrap();
        }
        cat.analyze(&st, "bigdim", HistogramKind::MaxDiff, 16, 512, 9)
            .unwrap();
        cat.create_index(&st, "bigdim", "pk").unwrap();
        let opt = Optimizer::new(cfg);
        // Highly selective filter on fact → tiny outer.
        let q = LogicalPlan::scan_filtered(
            "fact",
            mq_expr::and(vec![
                mq_expr::eq(col("fact.v"), lit(3i64)),
                mq_expr::eq(col("fact.fk2"), lit(5i64)),
            ]),
        )
        .join(LogicalPlan::scan("bigdim"), vec![("fact.fk1", "bigdim.pk")]);
        let result = opt.optimize(&q, &cat, &st).unwrap();
        let mut has_inl = false;
        result.plan.walk(&mut |n| {
            if matches!(n.op, PhysOp::IndexNLJoin { .. }) {
                has_inl = true;
            }
        });
        assert!(has_inl, "expected IndexNLJoin:\n{}", result.plan);
    }

    #[test]
    fn index_scan_chosen_for_narrow_range() {
        let (cat, st, cfg) = setup();
        cat.create_index(&st, "fact", "v").unwrap();
        let opt = Optimizer::new(cfg);
        let q = LogicalPlan::scan_filtered("fact", mq_expr::eq(col("fact.v"), lit(3i64)));
        let result = opt.optimize(&q, &cat, &st).unwrap();
        // v=3 matches 1/7 of rows — a seq scan of 4000 rows vs ~570
        // random fetches; with our cost constants the index may or may
        // not win, but the plan must at least be valid and costed.
        assert!(result.plan.annot.est_total_time_ms > 0.0);
    }

    #[test]
    fn cross_product_fallback() {
        let (cat, st, cfg) = setup();
        let opt = Optimizer::new(cfg);
        let q = LogicalPlan::scan("dim1").join(LogicalPlan::scan("dim2"), vec![]);
        let result = opt.optimize(&q, &cat, &st).unwrap();
        assert_eq!(result.plan.join_count(), 1);
        assert!(
            (result.props.rows - 1000.0).abs() < 400.0,
            "cross product rows {}",
            result.props.rows
        );
    }

    #[test]
    fn residual_predicate_applied_after_joins() {
        let (cat, st, cfg) = setup();
        let opt = Optimizer::new(cfg);
        // Non-equi cross-table predicate → residual filter node.
        let q = star_query().filter(cmp(CmpOp::Lt, col("dim1.a"), col("dim2.b")));
        let result = opt.optimize(&q, &cat, &st).unwrap();
        let mut filters = 0;
        result.plan.walk(&mut |n| {
            if matches!(n.op, PhysOp::Filter { .. }) {
                filters += 1;
            }
        });
        assert!(filters >= 1, "plan:\n{}", result.plan);
    }
}
